//! Indexed triangle meshes.

use std::collections::HashMap;
use std::fmt;

use am_geom::{Aabb3, Point3, Tolerance, Transform3, Triangle3};

/// An indexed triangle mesh: shared vertices plus index triples.
///
/// Triangles follow the STL convention — counter-clockwise winding seen from
/// outside the solid, so the right-hand-rule normal points outward.
///
/// # Examples
///
/// ```
/// use am_mesh::MeshBuilder;
/// use am_geom::{Point3, Triangle3};
///
/// let mut b = MeshBuilder::new();
/// b.push(Triangle3::new(
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(1.0, 0.0, 0.0),
///     Point3::new(0.0, 1.0, 0.0),
/// ));
/// let mesh = b.build();
/// assert_eq!(mesh.triangle_count(), 1);
/// assert_eq!(mesh.vertex_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TriMesh {
    vertices: Vec<Point3>,
    triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// An empty mesh.
    pub fn new() -> Self {
        TriMesh::default()
    }

    /// Creates a mesh from raw vertex and index arrays.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_raw(vertices: Vec<Point3>, triangles: Vec<[u32; 3]>) -> Self {
        let n = vertices.len() as u32;
        for t in &triangles {
            assert!(t.iter().all(|&i| i < n), "triangle index out of bounds");
        }
        TriMesh { vertices, triangles }
    }

    /// The shared vertices.
    pub fn vertices(&self) -> &[Point3] {
        &self.vertices
    }

    /// The triangle index triples.
    pub fn indices(&self) -> &[[u32; 3]] {
        &self.triangles
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// `true` if the mesh has no triangles.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// The `i`-th triangle as geometry.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn triangle(&self, i: usize) -> Triangle3 {
        let [a, b, c] = self.triangles[i];
        Triangle3::new(
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        )
    }

    /// Iterates over triangles as geometry.
    pub fn triangles(&self) -> impl Iterator<Item = Triangle3> + '_ {
        (0..self.triangle_count()).map(|i| self.triangle(i))
    }

    /// Bounding box, or `None` for an empty mesh.
    pub fn aabb(&self) -> Option<Aabb3> {
        Aabb3::from_points(self.vertices.iter().copied())
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        self.triangles().map(|t| t.area()).sum()
    }

    /// Signed enclosed volume (meaningful for closed, consistently oriented
    /// meshes; positive when normals point outward).
    pub fn signed_volume(&self) -> f64 {
        self.triangles().map(|t| t.signed_volume()).sum()
    }

    /// The mesh with every triangle's winding reversed (normals flipped).
    pub fn flipped(&self) -> TriMesh {
        TriMesh {
            vertices: self.vertices.clone(),
            triangles: self.triangles.iter().map(|&[a, b, c]| [a, c, b]).collect(),
        }
    }

    /// The mesh transformed by a rigid transform.
    pub fn transformed(&self, t: &Transform3) -> TriMesh {
        TriMesh {
            vertices: self.vertices.iter().map(|&v| t.apply(v)).collect(),
            triangles: self.triangles.clone(),
        }
    }

    /// Appends all triangles of `other` (vertices are copied, not welded;
    /// use [`crate::weld_vertices`] afterwards if welding is wanted).
    pub fn merge(&mut self, other: &TriMesh) {
        let offset = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.triangles.extend(
            other.triangles.iter().map(|&[a, b, c]| [a + offset, b + offset, c + offset]),
        );
    }

    /// Number of degenerate (zero-area) triangles under `tol`.
    pub fn degenerate_count(&self, tol: Tolerance) -> usize {
        self.triangles().filter(|t| t.is_degenerate(tol)).count()
    }

    /// Splits the mesh into edge-connected components (shells).
    ///
    /// Connectivity is by **shared edges**, not shared vertices: two closed
    /// bodies that merely touch at isolated points (e.g. the two halves of
    /// a spline-split part, which share the seam's endpoints after STL
    /// vertex welding) remain separate components. This is how a slicer
    /// recovers the bodies of a multi-body STL file.
    ///
    /// # Examples
    ///
    /// ```
    /// use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
    /// use am_mesh::{tessellate_part, Resolution};
    ///
    /// let part = tensile_bar_with_spline(&TensileBarDims::default())?.resolve()?;
    /// let merged = tessellate_part(&part, &Resolution::Coarse.params());
    /// assert_eq!(merged.connected_components().len(), 2); // the two split bodies
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn connected_components(&self) -> Vec<TriMesh> {
        use std::collections::HashMap;
        let n = self.triangles.len();
        if n == 0 {
            return Vec::new();
        }
        // Union-find over triangles, joined through shared undirected edges.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                parent[i as usize] = parent[parent[i as usize] as usize];
                i = parent[i as usize];
            }
            i
        }
        // Collect triangle incidences per undirected edge, then union only
        // through *manifold* edges (exactly two incident triangles): where
        // two bodies touch along a coincident wall edge — e.g. the welded
        // seam endpoints of a split part — the edge has four incidences and
        // must not join the bodies.
        let mut edge_tris: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for (t, &[a, b, c]) in self.triangles.iter().enumerate() {
            for (u, v) in [(a, b), (b, c), (c, a)] {
                let key = if u < v { (u, v) } else { (v, u) };
                edge_tris.entry(key).or_default().push(t as u32);
            }
        }
        for tris in edge_tris.values() {
            if tris.len() == 2 {
                let (ra, rb) = (find(&mut parent, tris[0]), find(&mut parent, tris[1]));
                if ra != rb {
                    parent[ra as usize] = rb;
                }
            }
        }
        // Group triangles by root and rebuild per-component meshes.
        let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
        for t in 0..n {
            groups.entry(find(&mut parent, t as u32)).or_default().push(t);
        }
        let mut components: Vec<TriMesh> = groups
            .into_values()
            .map(|tris| {
                let mut b = MeshBuilder::new();
                for t in tris {
                    b.push(self.triangle(t));
                }
                b.build()
            })
            .collect();
        // Deterministic order: largest first, then by bounding box corner.
        components.sort_by(|a, b| {
            b.triangle_count()
                .cmp(&a.triangle_count())
                .then_with(|| {
                    let (ba, bb) = (a.aabb(), b.aabb());
                    match (ba, bb) {
                        (Some(x), Some(y)) => x
                            .min
                            .x
                            .partial_cmp(&y.min.x)
                            .unwrap_or(std::cmp::Ordering::Equal),
                        _ => std::cmp::Ordering::Equal,
                    }
                })
        });
        components
    }
}

impl fmt::Display for TriMesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mesh[{} verts, {} tris]", self.vertex_count(), self.triangle_count())
    }
}

/// Incrementally builds a [`TriMesh`], welding coincident vertices on the
/// fly by quantized coordinates.
#[derive(Debug, Clone)]
pub struct MeshBuilder {
    quantum: f64,
    map: HashMap<(i64, i64, i64), u32>,
    vertices: Vec<Point3>,
    triangles: Vec<[u32; 3]>,
}

impl MeshBuilder {
    /// A builder with the default weld quantum (1e-7 mm).
    pub fn new() -> Self {
        MeshBuilder::with_quantum(1e-7)
    }

    /// A builder welding vertices that agree within `quantum` in each
    /// coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is not positive and finite.
    pub fn with_quantum(quantum: f64) -> Self {
        assert!(quantum.is_finite() && quantum > 0.0, "quantum must be positive");
        MeshBuilder { quantum, map: HashMap::new(), vertices: Vec::new(), triangles: Vec::new() }
    }

    fn key(&self, p: Point3) -> (i64, i64, i64) {
        let q = self.quantum;
        ((p.x / q).round() as i64, (p.y / q).round() as i64, (p.z / q).round() as i64)
    }

    /// Interns a vertex, returning its index.
    pub fn vertex(&mut self, p: Point3) -> u32 {
        let key = self.key(p);
        if let Some(&i) = self.map.get(&key) {
            return i;
        }
        let i = self.vertices.len() as u32;
        self.vertices.push(p);
        self.map.insert(key, i);
        i
    }

    /// Adds a triangle (skipping exact point-repeats).
    pub fn push(&mut self, t: Triangle3) {
        let a = self.vertex(t.a());
        let b = self.vertex(t.b());
        let c = self.vertex(t.c());
        if a != b && b != c && a != c {
            self.triangles.push([a, b, c]);
        }
    }

    /// Adds a triangle by vertex indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or the triangle is degenerate in
    /// indices.
    pub fn push_indices(&mut self, tri: [u32; 3]) {
        let n = self.vertices.len() as u32;
        assert!(tri.iter().all(|&i| i < n), "index out of bounds");
        assert!(tri[0] != tri[1] && tri[1] != tri[2] && tri[0] != tri[2], "degenerate triangle");
        self.triangles.push(tri);
    }

    /// Finishes the mesh.
    pub fn build(self) -> TriMesh {
        TriMesh { vertices: self.vertices, triangles: self.triangles }
    }
}

impl Default for MeshBuilder {
    fn default() -> Self {
        MeshBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::Vec3;

    fn quad_mesh() -> TriMesh {
        let mut b = MeshBuilder::new();
        let p = [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        ];
        b.push(Triangle3::new(p[0], p[1], p[2]));
        b.push(Triangle3::new(p[0], p[2], p[3]));
        b.build()
    }

    #[test]
    fn builder_welds_shared_vertices() {
        let m = quad_mesh();
        assert_eq!(m.vertex_count(), 4);
        assert_eq!(m.triangle_count(), 2);
        assert!((m.surface_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builder_skips_degenerate() {
        let mut b = MeshBuilder::new();
        b.push(Triangle3::new(Point3::ZERO, Point3::ZERO, Point3::X));
        assert_eq!(b.build().triangle_count(), 0);
    }

    #[test]
    fn flipped_negates_volume() {
        // A closed tetrahedron.
        let mut b = MeshBuilder::new();
        let (o, x, y, z) = (Point3::ZERO, Point3::X, Point3::Y, Point3::Z);
        b.push(Triangle3::new(o, y, x));
        b.push(Triangle3::new(o, x, z));
        b.push(Triangle3::new(o, z, y));
        b.push(Triangle3::new(x, y, z));
        let m = b.build();
        let v = m.signed_volume();
        assert!((v - 1.0 / 6.0).abs() < 1e-12);
        assert!((m.flipped().signed_volume() + v).abs() < 1e-12);
    }

    #[test]
    fn merge_offsets_indices() {
        let mut m = quad_mesh();
        let other = quad_mesh().transformed(&Transform3::translation(Vec3::new(5.0, 0.0, 0.0)));
        m.merge(&other);
        assert_eq!(m.triangle_count(), 4);
        assert_eq!(m.vertex_count(), 8);
        assert!((m.surface_area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn transform_preserves_topology_and_area() {
        let m = quad_mesh();
        let t = m.transformed(&Transform3::rotation_x(1.0));
        assert_eq!(t.triangle_count(), m.triangle_count());
        assert!((t.surface_area() - m.surface_area()).abs() < 1e-12);
    }

    #[test]
    fn aabb_of_empty_mesh_is_none() {
        assert!(TriMesh::new().aabb().is_none());
        assert!(TriMesh::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_raw_validates_indices() {
        let _ = TriMesh::from_raw(vec![Point3::ZERO], vec![[0, 1, 2]]);
    }

    #[test]
    fn components_of_disjoint_quads() {
        let mut m = quad_mesh();
        let far = quad_mesh().transformed(&Transform3::translation(Vec3::new(10.0, 0.0, 0.0)));
        m.merge(&far);
        let parts = m.connected_components();
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.triangle_count() == 2));
    }

    #[test]
    fn vertex_touching_bodies_stay_separate() {
        // Two triangles sharing a single vertex but no edge.
        let mut b = MeshBuilder::new();
        b.push(Triangle3::new(Point3::ZERO, Point3::X, Point3::Y));
        b.push(Triangle3::new(Point3::ZERO, -Point3::X, -Point3::Y));
        assert_eq!(b.build().connected_components().len(), 2);
    }

    #[test]
    fn single_component_round_trips() {
        let m = quad_mesh();
        let parts = m.connected_components();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].triangle_count(), 2);
        assert!((parts[0].surface_area() - m.surface_area()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_count() {
        let mut b = MeshBuilder::new();
        b.push(Triangle3::new(Point3::ZERO, Point3::X, Point3::new(2.0, 0.0, 0.0)));
        b.push(Triangle3::new(Point3::ZERO, Point3::X, Point3::Y));
        let m = b.build();
        assert_eq!(m.degenerate_count(Tolerance::new(1e-6)), 1);
    }
}
