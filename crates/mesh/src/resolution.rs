//! STL export resolution presets (Fig. 5 of the paper).

use std::fmt;

use am_geom::SubdivisionParams;

/// An STL export resolution: the *Coarse* and *Fine* presets plus the
/// *Custom* setting the paper obtains by "manually adjusting the Angle and
/// Deviation permitted for a curve to the smallest possible values".
///
/// Each resolution maps to a pair of curve-subdivision tolerances
/// ([`SubdivisionParams`]): maximum facet angle and maximum chordal
/// deviation.
///
/// # Examples
///
/// ```
/// use am_mesh::Resolution;
///
/// let coarse = Resolution::Coarse.params();
/// let fine = Resolution::Fine.params();
/// assert!(fine.max_deviation() < coarse.max_deviation());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// The preset "Coarse" export setting: 30° angle, 0.25 mm deviation.
    Coarse,
    /// The preset "Fine" export setting: 10° angle, 0.05 mm deviation.
    Fine,
    /// The manually-maximized "Custom" setting: 2° angle, 0.002 mm
    /// deviation.
    Custom,
}

impl Resolution {
    /// All three resolutions in paper order.
    pub const ALL: [Resolution; 3] = [Resolution::Coarse, Resolution::Fine, Resolution::Custom];

    /// The subdivision tolerances for this resolution.
    pub fn params(self) -> SubdivisionParams {
        match self {
            Resolution::Coarse => SubdivisionParams::new(30f64.to_radians(), 0.25),
            Resolution::Fine => SubdivisionParams::new(10f64.to_radians(), 0.05),
            Resolution::Custom => SubdivisionParams::new(2f64.to_radians(), 0.002),
        }
    }

    /// Angle tolerance in degrees (for reports).
    pub fn angle_degrees(self) -> f64 {
        self.params().max_angle().to_degrees()
    }

    /// Deviation tolerance in millimetres (for reports).
    pub fn deviation_mm(self) -> f64 {
        self.params().max_deviation()
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resolution::Coarse => write!(f, "Coarse"),
            Resolution::Fine => write!(f, "Fine"),
            Resolution::Custom => write!(f, "Custom"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_strictly_ordered() {
        let [c, f, x] = Resolution::ALL.map(Resolution::params);
        assert!(c.max_angle() > f.max_angle() && f.max_angle() > x.max_angle());
        assert!(c.max_deviation() > f.max_deviation() && f.max_deviation() > x.max_deviation());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Resolution::Coarse.to_string(), "Coarse");
        assert_eq!(Resolution::Fine.to_string(), "Fine");
        assert_eq!(Resolution::Custom.to_string(), "Custom");
    }

    #[test]
    fn report_units() {
        assert!((Resolution::Coarse.angle_degrees() - 30.0).abs() < 1e-9);
        assert_eq!(Resolution::Fine.deviation_mm(), 0.05);
    }
}
