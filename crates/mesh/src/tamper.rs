//! STL-stage attacks and their detection (Table 1, "STL file" row).
//!
//! The paper lists the attacks on a stolen or in-transit STL file —
//! "removal/addition of tetrahedrons (voids/protrusions), dimension & ratio
//! scaling, shape changes, end point changes" — and the mitigations:
//! reviewing geometry and "verification of digital signatures, file
//! sizes/hashes". This module implements both sides: the attacks as mesh
//! transformations, and the defender's [`Fingerprint`] verification.

use am_geom::{Point3, Triangle3, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{write_binary_stl, MeshBuilder, TriMesh};

/// A compact integrity record of an STL export, registered by the design
/// owner at release time and checked by every downstream party.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// Exact binary STL size in bytes.
    pub bytes: u64,
    /// Facet count.
    pub triangles: u32,
    /// FNV-1a hash of the binary STL payload.
    pub hash: u64,
    /// Enclosed volume, quantized to 0.01 mm³ (robust against float noise).
    pub volume_centi_mm3: i64,
}

/// Computes the [`Fingerprint`] of a mesh's binary STL export.
///
/// # Examples
///
/// ```
/// use am_cad::parts::{intact_prism, PrismDims};
/// use am_mesh::{fingerprint, tessellate_part, Resolution};
///
/// let part = intact_prism(&PrismDims::default()).resolve()?;
/// let mesh = tessellate_part(&part, &Resolution::Fine.params());
/// let fp = fingerprint(&mesh);
/// assert_eq!(fp, fingerprint(&mesh)); // deterministic
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fingerprint(mesh: &TriMesh) -> Fingerprint {
    let mut data = Vec::new();
    write_binary_stl(mesh, &mut data).expect("in-memory write cannot fail");
    // FNV-1a, 64-bit.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in &data {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Fingerprint {
        bytes: data.len() as u64,
        triangles: mesh.triangle_count() as u32,
        hash,
        volume_centi_mm3: (mesh.signed_volume() * 100.0).round() as i64,
    }
}

/// What a fingerprint check found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TamperEvidence {
    /// File size differs (facets added or removed).
    SizeChanged {
        /// Expected size in bytes.
        expected: u64,
        /// Observed size in bytes.
        observed: u64,
    },
    /// Content hash differs (any byte-level change, including pure
    /// vertex shifts that keep the size).
    HashChanged,
    /// Enclosed volume differs (scaling, voids, protrusions).
    VolumeChanged {
        /// Expected volume (centi-mm³).
        expected: i64,
        /// Observed volume (centi-mm³).
        observed: i64,
    },
}

/// Verifies a received mesh against the registered fingerprint.
///
/// Returns every class of evidence found (empty = file is intact).
pub fn verify_fingerprint(mesh: &TriMesh, expected: &Fingerprint) -> Vec<TamperEvidence> {
    let observed = fingerprint(mesh);
    let mut evidence = Vec::new();
    if observed.bytes != expected.bytes {
        evidence.push(TamperEvidence::SizeChanged {
            expected: expected.bytes,
            observed: observed.bytes,
        });
    }
    if observed.hash != expected.hash {
        evidence.push(TamperEvidence::HashChanged);
    }
    if observed.volume_centi_mm3 != expected.volume_centi_mm3 {
        evidence.push(TamperEvidence::VolumeChanged {
            expected: expected.volume_centi_mm3,
            observed: observed.volume_centi_mm3,
        });
    }
    evidence
}

/// The **scaling attack**: uniformly rescales the model ("dimension & ratio
/// scaling"). A 3 % shrink ruins press-fit parts while looking identical on
/// screen.
///
/// # Panics
///
/// Panics if `factor` is not positive and finite.
pub fn scale_attack(mesh: &TriMesh, factor: f64) -> TriMesh {
    assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
    let mut b = MeshBuilder::new();
    for tri in mesh.triangles() {
        b.push(Triangle3::new(
            tri.a() * factor,
            tri.b() * factor,
            tri.c() * factor,
        ));
    }
    b.build()
}

/// The **void-injection attack**: hides an inverted box shell inside the
/// model ("removal/addition of tetrahedrons"), which prints as an internal
/// void and weakens the part.
pub fn void_attack(mesh: &TriMesh, center: Point3, half_extent: f64) -> TriMesh {
    let mut out = mesh.clone();
    let h = half_extent;
    let corners = |sx: f64, sy: f64, sz: f64| center + Vec3::new(sx * h, sy * h, sz * h);
    let (p000, p100, p010, p110) = (
        corners(-1.0, -1.0, -1.0),
        corners(1.0, -1.0, -1.0),
        corners(-1.0, 1.0, -1.0),
        corners(1.0, 1.0, -1.0),
    );
    let (p001, p101, p011, p111) = (
        corners(-1.0, -1.0, 1.0),
        corners(1.0, -1.0, 1.0),
        corners(-1.0, 1.0, 1.0),
        corners(1.0, 1.0, 1.0),
    );
    // An inward-oriented box (normals toward the centre = cavity).
    let quads = [
        [p000, p010, p110, p100], // bottom, inward = +z
        [p001, p101, p111, p011], // top, inward = −z
        [p000, p100, p101, p001],
        [p100, p110, p111, p101],
        [p110, p010, p011, p111],
        [p010, p000, p001, p011],
    ];
    let mut b = MeshBuilder::new();
    for q in quads {
        b.push(Triangle3::new(q[0], q[2], q[1]));
        b.push(Triangle3::new(q[0], q[3], q[2]));
    }
    out.merge(&b.build());
    out
}

/// The **truncation attack**: drops the trailing `1 − keep_fraction` of the
/// facet list, simulating an STL cut off in transit on a facet boundary
/// (a mid-facet cut is rejected outright by [`crate::read_stl`]).
///
/// `keep_fraction` is clamped to `[0, 1]`; non-finite values keep nothing.
pub fn truncation_attack(mesh: &TriMesh, keep_fraction: f64) -> TriMesh {
    let keep_fraction = if keep_fraction.is_finite() { keep_fraction.clamp(0.0, 1.0) } else { 0.0 };
    let keep = (mesh.triangle_count() as f64 * keep_fraction).floor() as usize;
    let mut b = MeshBuilder::new();
    for tri in mesh.triangles().take(keep) {
        b.push(tri);
    }
    b.build()
}

/// The **degenerate-facet attack**: collapses `count` seeded facets to zero
/// area by snapping one vertex onto another — sliceable garbage that a
/// naive pipeline trips over and [`crate::weld_vertices`] repairs away.
pub fn degenerate_attack(mesh: &TriMesh, count: usize, seed: u64) -> TriMesh {
    if mesh.triangle_count() == 0 {
        return mesh.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices = mesh.indices().to_vec();
    for _ in 0..count {
        let t = rng.gen_range(0..indices.len());
        indices[t][1] = indices[t][0];
    }
    TriMesh::from_raw(mesh.vertices().to_vec(), indices)
}

/// The **flipped-facet attack**: reverses the winding of `count` seeded
/// facets. Flipped normals invert the material-side semantics the slicer
/// relies on (Table 3), corrupting contours without changing a single
/// vertex position or the file size.
pub fn flip_attack(mesh: &TriMesh, count: usize, seed: u64) -> TriMesh {
    if mesh.triangle_count() == 0 {
        return mesh.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices = mesh.indices().to_vec();
    for _ in 0..count {
        let t = rng.gen_range(0..indices.len());
        indices[t].swap(1, 2);
    }
    TriMesh::from_raw(mesh.vertices().to_vec(), indices)
}

/// The **end-point attack**: nudges a few random vertices by `magnitude`
/// ("end point changes") — enough to break a mating surface, small enough
/// to pass a visual review.
pub fn endpoint_attack(mesh: &TriMesh, magnitude: f64, count: usize, seed: u64) -> TriMesh {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vertices = mesh.vertices().to_vec();
    if vertices.is_empty() {
        return mesh.clone();
    }
    for _ in 0..count {
        let i = rng.gen_range(0..vertices.len());
        let dir = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        let dir = dir.normalized().unwrap_or(Vec3::X);
        vertices[i] += dir * magnitude;
    }
    TriMesh::from_raw(vertices, mesh.indices().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tessellate_part, Resolution};
    use am_cad::parts::{intact_prism, PrismDims};

    fn prism_mesh() -> TriMesh {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        tessellate_part(&part, &Resolution::Fine.params())
    }

    #[test]
    fn untampered_file_verifies_clean() {
        let mesh = prism_mesh();
        let fp = fingerprint(&mesh);
        assert!(verify_fingerprint(&mesh, &fp).is_empty());
    }

    #[test]
    fn scaling_attack_is_caught_by_hash_and_volume() {
        let mesh = prism_mesh();
        let fp = fingerprint(&mesh);
        let scaled = scale_attack(&mesh, 0.97);
        let evidence = verify_fingerprint(&scaled, &fp);
        assert!(evidence.contains(&TamperEvidence::HashChanged));
        assert!(evidence.iter().any(|e| matches!(e, TamperEvidence::VolumeChanged { .. })));
        // Size unchanged: same facet count — which is why hashes matter.
        assert!(!evidence.iter().any(|e| matches!(e, TamperEvidence::SizeChanged { .. })));
        // A 3 % linear shrink loses ~8.7 % volume.
        let ratio = scaled.signed_volume() / mesh.signed_volume();
        assert!((ratio - 0.97f64.powi(3)).abs() < 1e-6);
    }

    #[test]
    fn void_attack_is_caught_by_size_and_volume() {
        let mesh = prism_mesh();
        let fp = fingerprint(&mesh);
        let sabotaged = void_attack(&mesh, Point3::new(12.7, 6.35, 6.35), 2.0);
        let evidence = verify_fingerprint(&sabotaged, &fp);
        assert!(evidence.iter().any(|e| matches!(e, TamperEvidence::SizeChanged { .. })));
        assert!(evidence.iter().any(|e| matches!(e, TamperEvidence::VolumeChanged { .. })));
        // The injected cavity subtracts exactly its box volume.
        let expected = mesh.signed_volume() - 64.0;
        assert!((sabotaged.signed_volume() - expected).abs() < 1e-6);
    }

    #[test]
    fn endpoint_attack_is_caught_by_hash_even_when_volume_noise_is_tiny() {
        let mesh = prism_mesh();
        let fp = fingerprint(&mesh);
        let shifted = endpoint_attack(&mesh, 0.2, 3, 5);
        let evidence = verify_fingerprint(&shifted, &fp);
        assert!(evidence.contains(&TamperEvidence::HashChanged));
        assert_eq!(shifted.triangle_count(), mesh.triangle_count());
    }

    #[test]
    fn void_attack_adds_an_inward_component() {
        let mesh = prism_mesh();
        let sabotaged = void_attack(&mesh, Point3::new(12.7, 6.35, 6.35), 2.0);
        let shells = sabotaged.connected_components();
        assert_eq!(shells.len(), 2);
        // The injected shell is inward-oriented (negative enclosed volume).
        assert!(shells.iter().any(|s| s.signed_volume() < 0.0));
        assert!(shells.iter().all(crate::is_watertight));
    }

    #[test]
    fn fingerprints_differ_across_resolutions() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let coarse = fingerprint(&tessellate_part(&part, &Resolution::Coarse.params()));
        let fine = fingerprint(&tessellate_part(&part, &Resolution::Fine.params()));
        // A box is 12 facets at any resolution, but quantized volume and
        // hash still match here — so this asserts equality, documenting
        // that a *box* export is resolution-independent…
        assert_eq!(coarse.triangles, fine.triangles);
        assert_eq!(coarse.hash, fine.hash);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = scale_attack(&prism_mesh(), 0.0);
    }

    #[test]
    fn truncation_attack_is_caught_by_size() {
        let mesh = prism_mesh();
        let fp = fingerprint(&mesh);
        let cut = truncation_attack(&mesh, 0.5);
        assert!(cut.triangle_count() < mesh.triangle_count());
        let evidence = verify_fingerprint(&cut, &fp);
        assert!(evidence.iter().any(|e| matches!(e, TamperEvidence::SizeChanged { .. })));
        // Edge behaviours: keep-all is identity, keep-none is empty.
        assert_eq!(truncation_attack(&mesh, 1.0).triangle_count(), mesh.triangle_count());
        assert_eq!(truncation_attack(&mesh, 0.0).triangle_count(), 0);
        assert_eq!(truncation_attack(&mesh, f64::NAN).triangle_count(), 0);
    }

    #[test]
    fn degenerate_attack_is_caught_by_hash() {
        use am_geom::Tolerance;
        let mesh = prism_mesh();
        let fp = fingerprint(&mesh);
        let broken = degenerate_attack(&mesh, 2, 9);
        assert!(broken.degenerate_count(Tolerance::new(1e-12)) > 0);
        assert_eq!(broken.triangle_count(), mesh.triangle_count());
        let evidence = verify_fingerprint(&broken, &fp);
        assert!(evidence.contains(&TamperEvidence::HashChanged));
        // Deterministic: same seed, same damage.
        assert_eq!(
            fingerprint(&degenerate_attack(&mesh, 2, 9)),
            fingerprint(&broken)
        );
    }

    #[test]
    fn flip_attack_is_caught_by_hash_and_volume() {
        let mesh = prism_mesh();
        let fp = fingerprint(&mesh);
        let flipped = flip_attack(&mesh, 3, 11);
        assert_eq!(flipped.triangle_count(), mesh.triangle_count());
        let evidence = verify_fingerprint(&flipped, &fp);
        assert!(evidence.contains(&TamperEvidence::HashChanged));
        // The volume signature: flipping a facet negates its signed-volume
        // contribution. Facets of the origin-cornered prism can contribute
        // exactly zero, so shift the mesh off the origin first — then a
        // single flip is guaranteed to move the signed volume.
        let shifted = TriMesh::from_raw(
            mesh.vertices().iter().map(|v| *v + Vec3::new(3.0, 4.0, 5.0)).collect(),
            mesh.indices().to_vec(),
        );
        let one = flip_attack(&shifted, 1, 11);
        assert!((one.signed_volume() - shifted.signed_volume()).abs() > 1e-6);
    }
}
