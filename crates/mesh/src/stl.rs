//! STL reading and writing (binary and ASCII), with exact file sizes.
//!
//! STL is the interchange format at the heart of the paper's process chain
//! (Fig. 1): every facet carries a normal that tells the printer which side
//! of the surface is solid. File sizes are part of the §3.2 evidence, so
//! [`binary_stl_size`] is exact: `84 + 50 × triangles` bytes.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use am_geom::{Point3, Triangle3, Vec3};

use crate::{MeshBuilder, TriMesh};

/// Errors from STL parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum StlError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The data is not a valid STL file.
    Malformed {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The byte stream declares more facets than its payload contains —
    /// either an in-transit truncation or a facet-count bomb. The parser
    /// never allocates from the declared count, only from the bytes
    /// actually present.
    Truncated {
        /// The facet count declared in the 4-byte header field.
        declared_facets: u64,
        /// Bytes actually available in the stream.
        available_bytes: usize,
    },
    /// A facet carries NaN or infinite vertex coordinates, which would
    /// poison every downstream geometric predicate.
    NonFiniteVertex {
        /// Zero-based index of the offending facet.
        facet: usize,
    },
}

impl Clone for StlError {
    fn clone(&self) -> Self {
        match self {
            // `io::Error` is not `Clone`; a clone preserves the kind and the
            // rendered message, which is all the pipeline ever reports.
            StlError::Io(e) => StlError::Io(io::Error::new(e.kind(), e.to_string())),
            StlError::Malformed { reason } => StlError::Malformed { reason: reason.clone() },
            StlError::Truncated { declared_facets, available_bytes } => StlError::Truncated {
                declared_facets: *declared_facets,
                available_bytes: *available_bytes,
            },
            StlError::NonFiniteVertex { facet } => StlError::NonFiniteVertex { facet: *facet },
        }
    }
}

impl fmt::Display for StlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StlError::Io(e) => write!(f, "stl i/o error: {e}"),
            StlError::Malformed { reason } => write!(f, "malformed stl: {reason}"),
            StlError::Truncated { declared_facets, available_bytes } => write!(
                f,
                "truncated stl: {declared_facets} facets declared but only \
                 {available_bytes} bytes present"
            ),
            StlError::NonFiniteVertex { facet } => {
                write!(f, "stl facet {facet} has non-finite vertex coordinates")
            }
        }
    }
}

impl Error for StlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StlError {
    fn from(e: io::Error) -> Self {
        StlError::Io(e)
    }
}

/// Exact size in bytes of a binary STL with `triangles` facets.
///
/// # Examples
///
/// ```
/// assert_eq!(am_mesh::binary_stl_size(0), 84);
/// assert_eq!(am_mesh::binary_stl_size(12), 684);
/// ```
pub fn binary_stl_size(triangles: usize) -> u64 {
    84 + 50 * triangles as u64
}

/// Writes `mesh` as binary STL. Facet normals are recomputed from geometry;
/// degenerate facets get a zero normal.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_binary_stl<W: Write>(mesh: &TriMesh, mut writer: W) -> Result<(), StlError> {
    let mut header = [0u8; 80];
    let tag = b"obfuscade binary stl";
    header[..tag.len()].copy_from_slice(tag);
    writer.write_all(&header)?;
    writer.write_all(&(mesh.triangle_count() as u32).to_le_bytes())?;
    for tri in mesh.triangles() {
        let n = tri.normal().unwrap_or(Vec3::ZERO);
        write_vec_f32(&mut writer, n)?;
        for v in tri.vertices {
            write_vec_f32(&mut writer, v)?;
        }
        writer.write_all(&0u16.to_le_bytes())?;
    }
    Ok(())
}

/// Writes `mesh` as ASCII STL under the given solid `name`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_ascii_stl<W: Write>(mesh: &TriMesh, name: &str, mut writer: W) -> Result<(), StlError> {
    writeln!(writer, "solid {name}")?;
    for tri in mesh.triangles() {
        let n = tri.normal().unwrap_or(Vec3::ZERO);
        writeln!(writer, "  facet normal {:e} {:e} {:e}", n.x, n.y, n.z)?;
        writeln!(writer, "    outer loop")?;
        for v in tri.vertices {
            writeln!(writer, "      vertex {:e} {:e} {:e}", v.x, v.y, v.z)?;
        }
        writeln!(writer, "    endloop")?;
        writeln!(writer, "  endfacet")?;
    }
    writeln!(writer, "endsolid {name}")?;
    Ok(())
}

/// Reads an STL file, auto-detecting ASCII vs binary.
///
/// # Errors
///
/// Returns [`StlError::Malformed`] for structurally invalid data and
/// [`StlError::Io`] for read failures. Note that a `mut` reference to a
/// reader can be passed where `R: Read` is expected.
pub fn read_stl<R: Read>(mut reader: R) -> Result<TriMesh, StlError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    // ASCII files start with "solid" *and* contain "facet"; binary files may
    // also start with "solid" in the header, so require both.
    let looks_ascii = data.len() >= 5
        && &data[..5] == b"solid"
        && data
            .windows(5)
            .take(4096.min(data.len()))
            .any(|w| w == b"facet");
    if looks_ascii {
        parse_ascii(&data)
    } else {
        parse_binary(&data)
    }
}

fn write_vec_f32<W: Write>(writer: &mut W, v: Point3) -> io::Result<()> {
    writer.write_all(&(v.x as f32).to_le_bytes())?;
    writer.write_all(&(v.y as f32).to_le_bytes())?;
    writer.write_all(&(v.z as f32).to_le_bytes())
}

fn parse_binary(data: &[u8]) -> Result<TriMesh, StlError> {
    if data.len() < 84 {
        return Err(StlError::Malformed { reason: "binary stl shorter than 84-byte preamble".into() });
    }
    // The declared count is attacker-controlled: a 4-byte field can claim
    // up to ~4.3 G facets (~215 GB). All sizing below is derived from the
    // bytes actually present, so a count bomb fails fast without
    // allocating, and u64 arithmetic cannot overflow on any platform.
    let declared = u64::from(u32::from_le_bytes([data[80], data[81], data[82], data[83]]));
    let payload_facets = (data.len() as u64 - 84) / 50;
    if declared > payload_facets {
        return Err(StlError::Truncated {
            declared_facets: declared,
            available_bytes: data.len(),
        });
    }
    let count = declared as usize;
    let mut b = MeshBuilder::new();
    for i in 0..count {
        let off = 84 + 50 * i;
        let f = |k: usize| -> f64 {
            let o = off + 4 * k;
            f32::from_le_bytes([data[o], data[o + 1], data[o + 2], data[o + 3]]) as f64
        };
        // Fields 0..2 are the stored normal (ignored: recomputed), 3..11 the
        // vertices.
        let coords = [f(3), f(4), f(5), f(6), f(7), f(8), f(9), f(10), f(11)];
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(StlError::NonFiniteVertex { facet: i });
        }
        let tri = Triangle3::new(
            Point3::new(coords[0], coords[1], coords[2]),
            Point3::new(coords[3], coords[4], coords[5]),
            Point3::new(coords[6], coords[7], coords[8]),
        );
        b.push(tri);
    }
    Ok(b.build())
}

fn parse_ascii(data: &[u8]) -> Result<TriMesh, StlError> {
    let text = std::str::from_utf8(data)
        .map_err(|_| StlError::Malformed { reason: "ascii stl is not valid utf-8".into() })?;
    let mut b = MeshBuilder::new();
    let mut verts: Vec<Point3> = Vec::with_capacity(3);
    for (lineno, line) in text.lines().enumerate() {
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("vertex") => {
                let mut coord = |name: &str| -> Result<f64, StlError> {
                    tokens
                        .next()
                        .and_then(|t| t.parse::<f64>().ok())
                        .filter(|v| v.is_finite())
                        .ok_or_else(|| StlError::Malformed {
                            reason: format!("line {}: bad {name} coordinate", lineno + 1),
                        })
                };
                let x = coord("x")?;
                let y = coord("y")?;
                let z = coord("z")?;
                verts.push(Point3::new(x, y, z));
            }
            Some("endloop") => {
                if verts.len() != 3 {
                    return Err(StlError::Malformed {
                        reason: format!("line {}: loop with {} vertices", lineno + 1, verts.len()),
                    });
                }
                b.push(Triangle3::new(verts[0], verts[1], verts[2]));
                verts.clear();
            }
            _ => {}
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tessellate_part, Resolution};
    use am_cad::parts::{intact_prism, tensile_bar_with_spline, PrismDims, TensileBarDims};
    use am_geom::Tolerance;

    fn sample_mesh() -> TriMesh {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        tessellate_part(&part, &Resolution::Fine.params())
    }

    #[test]
    fn binary_round_trip_preserves_geometry() {
        let mesh = sample_mesh();
        let mut buf = Vec::new();
        write_binary_stl(&mesh, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, binary_stl_size(mesh.triangle_count()));
        let back = read_stl(&buf[..]).unwrap();
        assert_eq!(back.triangle_count(), mesh.triangle_count());
        assert!((back.signed_volume() - mesh.signed_volume()).abs() < 1e-3);
    }

    #[test]
    fn ascii_round_trip_preserves_geometry() {
        let mesh = sample_mesh();
        let mut buf = Vec::new();
        write_ascii_stl(&mesh, "prism", &mut buf).unwrap();
        assert!(buf.starts_with(b"solid prism"));
        let back = read_stl(&buf[..]).unwrap();
        assert_eq!(back.triangle_count(), mesh.triangle_count());
        assert!((back.signed_volume() - mesh.signed_volume()).abs() < 1e-6);
    }

    #[test]
    fn truncated_binary_rejected() {
        let mesh = sample_mesh();
        let mut buf = Vec::new();
        write_binary_stl(&mesh, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(read_stl(&buf[..]), Err(StlError::Truncated { .. })));
    }

    #[test]
    fn garbage_rejected() {
        assert!(read_stl(&b"not an stl"[..]).is_err());
    }

    #[test]
    fn facet_count_bomb_fails_without_allocating() {
        // Header declares u32::MAX facets (~215 GB) with a 1-facet payload.
        let mesh = sample_mesh();
        let mut buf = Vec::new();
        write_binary_stl(&mesh, &mut buf).unwrap();
        buf[80..84].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_stl(&buf[..]) {
            Err(StlError::Truncated { declared_facets, .. }) => {
                assert_eq!(declared_facets, u64::from(u32::MAX));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn nan_vertex_rejected_binary() {
        let mesh = sample_mesh();
        let mut buf = Vec::new();
        write_binary_stl(&mesh, &mut buf).unwrap();
        // Facet 0's first vertex x lives after the 12-byte normal.
        let off = 84 + 12;
        buf[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(matches!(read_stl(&buf[..]), Err(StlError::NonFiniteVertex { facet: 0 })));
    }

    #[test]
    fn nan_vertex_rejected_ascii() {
        let text = b"solid x\nfacet normal 0 0 1\nouter loop\nvertex 0 0 NaN\nvertex 1 0 0\nvertex 0 1 0\nendloop\nendfacet\nendsolid x\n";
        assert!(matches!(read_stl(&text[..]), Err(StlError::Malformed { .. })));
    }

    #[test]
    fn ascii_with_bad_vertex_rejected() {
        let text = b"solid x\nfacet normal 0 0 1\nouter loop\nvertex 0 0 zero\nendloop\nendfacet\nendsolid x\n";
        assert!(matches!(read_stl(&text[..]), Err(StlError::Malformed { .. })));
    }

    #[test]
    fn binary_size_formula_exact() {
        for n in [0usize, 1, 12, 1000] {
            let mut b = MeshBuilder::new();
            for i in 0..n {
                let x = i as f64;
                b.push(Triangle3::new(
                    Point3::new(x, 0.0, 0.0),
                    Point3::new(x + 0.5, 1.0, 0.0),
                    Point3::new(x, 0.0, 1.0),
                ));
            }
            let mesh = b.build();
            let mut buf = Vec::new();
            write_binary_stl(&mesh, &mut buf).unwrap();
            assert_eq!(buf.len() as u64, binary_stl_size(n));
        }
    }

    #[test]
    fn split_tensile_bar_round_trips_losslessly_enough() {
        // f32 quantization must not destroy the seam geometry.
        let part = tensile_bar_with_spline(&TensileBarDims::default())
            .unwrap()
            .resolve()
            .unwrap();
        let mesh = tessellate_part(&part, &Resolution::Coarse.params());
        let mut buf = Vec::new();
        write_binary_stl(&mesh, &mut buf).unwrap();
        let back = read_stl(&buf[..]).unwrap();
        assert_eq!(back.triangle_count(), mesh.triangle_count());
        assert_eq!(back.degenerate_count(Tolerance::new(1e-9)), 0);
    }
}
