//! Triangle meshes, resolution-controlled tessellation, STL I/O and mesh
//! diagnostics for the ObfusCADe toolchain.
//!
//! This crate is the STL-export stage of the paper's process chain (Fig. 1):
//!
//! * [`TriMesh`]/[`MeshBuilder`] — indexed triangle meshes with on-the-fly
//!   vertex welding.
//! * [`Resolution`] — the Coarse/Fine/Custom export presets of Fig. 5,
//!   mapping to angle + deviation subdivision tolerances.
//! * [`tessellate_part`]/[`tessellate_shell`] — per-body tessellation of
//!   resolved CAD parts; bodies sharing a spline boundary tessellate it
//!   independently, producing the mismatched seams of Fig. 4.
//! * [`write_binary_stl`]/[`write_ascii_stl`]/[`read_stl`] — STL I/O with
//!   [exact file sizes](binary_stl_size).
//! * [`analyze_topology`]/[`seam_report`]/[`t_junction_count`] — the
//!   defender's STL-stage review toolbox (Table 1) and the Fig. 4 gap
//!   metrics.
//! * [`weld_vertices`] — the attacker's repair tool, used by the ablation
//!   experiments.
//!
//! # Examples
//!
//! ```
//! use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
//! use am_mesh::{seam_report, tessellate_part, Resolution};
//!
//! let part = tensile_bar_with_spline(&TensileBarDims::default())?.resolve()?;
//! let mesh = tessellate_part(&part, &Resolution::Coarse.params());
//! assert!(mesh.triangle_count() > 0);
//!
//! // The planted seam never tessellates conformingly.
//! let seam = seam_report(&part, &Resolution::Coarse.params()).unwrap();
//! assert!(!seam.conforming);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnostics;
mod mesh;
mod repair;
mod resolution;
mod stl;
mod tamper;
mod tessellate;

pub use diagnostics::{
    analyze_topology, is_watertight, seam_report, t_junction_count, SeamReport, TopologyReport,
};
pub use mesh::{MeshBuilder, TriMesh};
pub use repair::{weld_vertices, WeldReport};
pub use resolution::Resolution;
pub use stl::{binary_stl_size, read_stl, write_ascii_stl, write_binary_stl, StlError};
pub use tamper::{
    degenerate_attack, endpoint_attack, fingerprint, flip_attack, scale_attack,
    truncation_attack, verify_fingerprint, void_attack, Fingerprint, TamperEvidence,
};
pub use tessellate::{tessellate_part, tessellate_shell, tessellate_shells};
