//! Mesh diagnostics: topology checks, T-junctions and seam-gap measurement.
//!
//! Table 1 of the paper lists "review 3D rendering / file contents /
//! manifold geometry errors" as the defender-side mitigation at the STL
//! stage. This module is that reviewer's toolbox — and it also quantifies
//! the tessellation-induced gaps of Fig. 4 that ObfusCADe plants on purpose.

use std::collections::HashMap;

use am_cad::{ProfileEdge, ResolvedPart, SolidShape};
use am_geom::spline::{chain_mismatch, chains_conforming, vertex_mismatch};
use am_geom::{Point2, Segment2, SubdivisionParams, Tolerance};

use crate::TriMesh;

/// Summary of a mesh's edge topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TopologyReport {
    /// Distinct undirected edges.
    pub edges: usize,
    /// Edges used by exactly one triangle (holes in the surface).
    pub boundary_edges: usize,
    /// Edges used by three or more triangles.
    pub non_manifold_edges: usize,
    /// Edges used twice but in the same direction (inconsistent winding).
    pub misoriented_edges: usize,
}

impl TopologyReport {
    /// `true` if the mesh is a closed, consistently oriented 2-manifold.
    pub fn is_watertight(&self) -> bool {
        self.boundary_edges == 0 && self.non_manifold_edges == 0 && self.misoriented_edges == 0
    }
}

/// Analyzes the edge topology of a mesh.
///
/// # Examples
///
/// ```
/// use am_cad::parts::{intact_prism, PrismDims};
/// use am_mesh::{analyze_topology, tessellate_part, Resolution};
///
/// let part = intact_prism(&PrismDims::default()).resolve()?;
/// let mesh = tessellate_part(&part, &Resolution::Fine.params());
/// assert!(analyze_topology(&mesh).is_watertight());
/// # Ok::<(), am_cad::CadError>(())
/// ```
pub fn analyze_topology(mesh: &TriMesh) -> TopologyReport {
    // For each undirected edge: (forward uses, backward uses).
    let mut edges: HashMap<(u32, u32), (u32, u32)> = HashMap::new();
    for &[a, b, c] in mesh.indices() {
        for (u, v) in [(a, b), (b, c), (c, a)] {
            let (key, forward) = if u < v { ((u, v), true) } else { ((v, u), false) };
            let entry = edges.entry(key).or_insert((0, 0));
            if forward {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }
    let mut report = TopologyReport { edges: edges.len(), ..TopologyReport::default() };
    for &(f, r) in edges.values() {
        let total = f + r;
        match total {
            1 => report.boundary_edges += 1,
            2 => {
                if f != 1 {
                    report.misoriented_edges += 1;
                }
            }
            _ => report.non_manifold_edges += 1,
        }
    }
    report
}

/// `true` if the mesh is a closed, consistently oriented 2-manifold.
pub fn is_watertight(mesh: &TriMesh) -> bool {
    analyze_topology(mesh).is_watertight()
}

/// Counts T-junctions: mesh vertices lying strictly inside another
/// triangle's edge (within `tol`), the signature defect of non-conforming
/// tessellations across a split boundary.
pub fn t_junction_count(mesh: &TriMesh, tol: Tolerance) -> usize {
    let verts = mesh.vertices();
    if verts.is_empty() {
        return 0;
    }
    // Spatial hash of vertices for near-edge lookup.
    let cell = 1.0f64;
    let key = |x: f64, y: f64, z: f64| {
        ((x / cell).floor() as i64, (y / cell).floor() as i64, (z / cell).floor() as i64)
    };
    let mut grid: HashMap<(i64, i64, i64), Vec<u32>> = HashMap::new();
    for (i, v) in verts.iter().enumerate() {
        grid.entry(key(v.x, v.y, v.z)).or_default().push(i as u32);
    }

    let mut hits: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut seen_edges: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for &[a, b, c] in mesh.indices() {
        for (u, v) in [(a, b), (b, c), (c, a)] {
            let ekey = if u < v { (u, v) } else { (v, u) };
            if !seen_edges.insert(ekey) {
                continue;
            }
            let p = verts[u as usize];
            let q = verts[v as usize];
            let lo = key(p.x.min(q.x) - tol.value(), p.y.min(q.y) - tol.value(), p.z.min(q.z) - tol.value());
            let hi = key(p.x.max(q.x) + tol.value(), p.y.max(q.y) + tol.value(), p.z.max(q.z) + tol.value());
            for gx in lo.0..=hi.0 {
                for gy in lo.1..=hi.1 {
                    for gz in lo.2..=hi.2 {
                        let Some(bucket) = grid.get(&(gx, gy, gz)) else { continue };
                        for &w in bucket {
                            if w == u || w == v {
                                continue;
                            }
                            let x = verts[w as usize];
                            if x.distance(p) <= tol.value() || x.distance(q) <= tol.value() {
                                continue;
                            }
                            // Distance from x to segment pq.
                            let d = q - p;
                            let len2 = d.length_squared();
                            if len2 == 0.0 {
                                continue;
                            }
                            let t = ((x - p).dot(d) / len2).clamp(0.0, 1.0);
                            if t <= 0.0 || t >= 1.0 {
                                continue;
                            }
                            if (p + d * t).distance(x) <= tol.value() {
                                hits.insert(w);
                            }
                        }
                    }
                }
            }
        }
    }
    hits.len()
}

/// Quantification of the tessellation mismatch along a planted split seam
/// (the gaps of Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct SeamReport {
    /// Worst distance between seam breakpoints of the two bodies (T-junction
    /// severity).
    pub vertex_mismatch: f64,
    /// Worst geometric distance between the two chord chains (open-gap
    /// width).
    pub chain_mismatch: f64,
    /// Breakpoints on the first body's side of the seam.
    pub chain_a_points: usize,
    /// Breakpoints on the second body's side of the seam.
    pub chain_b_points: usize,
    /// `true` if the two tessellations share every breakpoint (conforming —
    /// no gap).
    pub conforming: bool,
    /// Gap samples along the seam: (normalized arc position, local gap).
    pub profile: Vec<(f64, f64)>,
}

/// Measures the seam mismatch of a spline-split part at the given
/// resolution.
///
/// Returns `None` if the part has no split seam (e.g. an intact bar).
///
/// # Examples
///
/// ```
/// use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
/// use am_mesh::{seam_report, Resolution};
///
/// let part = tensile_bar_with_spline(&TensileBarDims::default())?.resolve()?;
/// let coarse = seam_report(&part, &Resolution::Coarse.params()).unwrap();
/// let fine = seam_report(&part, &Resolution::Fine.params()).unwrap();
/// assert!(fine.chain_mismatch < coarse.chain_mismatch);
/// # Ok::<(), am_cad::CadError>(())
/// ```
pub fn seam_report(part: &ResolvedPart, params: &SubdivisionParams) -> Option<SeamReport> {
    let seam = part.seams().first()?;
    // Collect the spline chains of the two split bodies. Each split body's
    // profile has exactly one spline edge (the seam).
    let mut chains: Vec<Vec<Point2>> = Vec::new();
    for shell in part.shells() {
        if let SolidShape::Extrusion { profile, .. } = &shell.shape {
            for edge in profile.edges() {
                if let ProfileEdge::Spline(c) = edge {
                    chains.push(c.subdivide(params));
                }
            }
        }
    }
    if chains.len() < 2 {
        return None;
    }
    let a = &chains[0];
    let mut b = chains[1].clone();
    // Align traversal directions before comparing (the two bodies walk the
    // seam in opposite directions).
    let a0 = a[0];
    if a0.distance(b[0]) > a0.distance(*b.last().expect("chains are non-empty")) {
        b.reverse();
    }

    // Local gap profile along the true seam curve.
    let samples = 64;
    let profile: Vec<(f64, f64)> = (0..=samples)
        .map(|i| {
            let t = i as f64 / samples as f64;
            let p = seam.point_at(t);
            let d_a = chain_distance(a, p);
            let d_b = chain_distance(&b, p);
            (t, d_a + d_b)
        })
        .collect();

    Some(SeamReport {
        vertex_mismatch: vertex_mismatch(a, &b),
        chain_mismatch: chain_mismatch(a, &b),
        chain_a_points: a.len(),
        chain_b_points: b.len(),
        conforming: chains_conforming(a, &b, Tolerance::new(1e-9)),
        profile,
    })
}

fn chain_distance(chain: &[Point2], p: Point2) -> f64 {
    chain
        .windows(2)
        .map(|w| Segment2::new(w[0], w[1]).distance_to_point(p))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tessellate_part, tessellate_shells, Resolution};
    use am_cad::parts::{
        intact_prism, prism_with_sphere, tensile_bar, tensile_bar_with_spline, PrismDims,
        TensileBarDims,
    };
    use am_cad::{BodyKind, MaterialRemoval};

    #[test]
    fn prism_mesh_is_watertight() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let mesh = tessellate_part(&part, &Resolution::Fine.params());
        let report = analyze_topology(&mesh);
        assert!(report.is_watertight(), "{report:?}");
        // Euler characteristic of a sphere-topology mesh: V − E + F = 2.
        let euler =
            mesh.vertex_count() as i64 - report.edges as i64 + mesh.triangle_count() as i64;
        assert_eq!(euler, 2);
    }

    #[test]
    fn every_shell_of_every_experiment_part_is_watertight() {
        let dims = PrismDims::default();
        for kind in [BodyKind::Solid, BodyKind::Surface] {
            for removal in [MaterialRemoval::With, MaterialRemoval::Without] {
                let part = prism_with_sphere(&dims, kind, removal).unwrap().resolve().unwrap();
                for (i, mesh) in
                    tessellate_shells(&part, &Resolution::Coarse.params()).iter().enumerate()
                {
                    assert!(is_watertight(mesh), "shell {i} of {}", part.name());
                }
            }
        }
        let bar = tensile_bar_with_spline(&TensileBarDims::default()).unwrap().resolve().unwrap();
        for (i, mesh) in tessellate_shells(&bar, &Resolution::Coarse.params()).iter().enumerate() {
            assert!(is_watertight(mesh), "bar shell {i}");
        }
    }

    #[test]
    fn merged_split_export_is_not_conforming() {
        // Each body is watertight alone, but the merged export keeps two
        // independent boundaries along the seam — no shared edges between
        // bodies, which is how the defect hides from naive volume checks.
        let part = tensile_bar_with_spline(&TensileBarDims::default()).unwrap().resolve().unwrap();
        let merged = tessellate_part(&part, &Resolution::Coarse.params());
        let report = analyze_topology(&merged);
        assert!(report.is_watertight(), "two disjoint watertight bodies: {report:?}");
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        assert!(shells.iter().all(is_watertight));
    }

    #[test]
    fn open_mesh_reports_boundary_edges() {
        use crate::MeshBuilder;
        use am_geom::{Point3, Triangle3};
        let mut b = MeshBuilder::new();
        b.push(Triangle3::new(Point3::ZERO, Point3::X, Point3::Y));
        let report = analyze_topology(&b.build());
        assert_eq!(report.boundary_edges, 3);
        assert!(!report.is_watertight());
    }

    #[test]
    fn misoriented_edge_detected() {
        use crate::MeshBuilder;
        use am_geom::{Point3, Triangle3};
        let mut b = MeshBuilder::new();
        // Two triangles sharing edge (0,0,0)-(1,0,0) traversed the same way.
        b.push(Triangle3::new(Point3::ZERO, Point3::X, Point3::Y));
        b.push(Triangle3::new(Point3::ZERO, Point3::X, Point3::new(0.0, 0.0, -1.0)));
        let report = analyze_topology(&b.build());
        assert_eq!(report.misoriented_edges, 1);
    }

    #[test]
    fn seam_mismatch_shrinks_with_resolution_but_never_conforms() {
        let part = tensile_bar_with_spline(&TensileBarDims::default()).unwrap().resolve().unwrap();
        let reports: Vec<SeamReport> = Resolution::ALL
            .iter()
            .map(|r| seam_report(&part, &r.params()).unwrap())
            .collect();
        // The open-gap width shrinks with finer resolution…
        assert!(reports[0].chain_mismatch > reports[1].chain_mismatch);
        assert!(reports[1].chain_mismatch > reports[2].chain_mismatch);
        // …and T-junction severity is worst at Coarse.
        assert!(reports[0].vertex_mismatch >= reports[2].vertex_mismatch);
        // …but the split itself survives every resolution (the zero-volume
        // separation is exact), and the chains never fully conform.
        for r in &reports {
            assert!(!r.conforming, "{r:?}");
            assert!(r.vertex_mismatch > 0.0);
        }
    }

    #[test]
    fn intact_bar_has_no_seam() {
        let part = tensile_bar(&TensileBarDims::default()).unwrap().resolve().unwrap();
        assert!(seam_report(&part, &Resolution::Coarse.params()).is_none());
    }

    #[test]
    fn seam_profile_covers_whole_seam() {
        let part = tensile_bar_with_spline(&TensileBarDims::default()).unwrap().resolve().unwrap();
        let report = seam_report(&part, &Resolution::Coarse.params()).unwrap();
        assert_eq!(report.profile.len(), 65);
        assert_eq!(report.profile[0].0, 0.0);
        assert_eq!(report.profile.last().unwrap().0, 1.0);
        // Endpoints are shared exactly (both chains start/end on the
        // boundary), so the gap vanishes there.
        assert!(report.profile[0].1 < 1e-9);
        assert!(report.profile.last().unwrap().1 < 1e-9);
        // Somewhere in the middle the gap is non-trivial at Coarse.
        let max_gap = report.profile.iter().map(|&(_, g)| g).fold(0.0, f64::max);
        assert!(max_gap > 0.01, "max gap {max_gap}");
    }

    #[test]
    fn t_junctions_absent_in_clean_mesh() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let mesh = tessellate_part(&part, &Resolution::Fine.params());
        assert_eq!(t_junction_count(&mesh, Tolerance::new(1e-6)), 0);
    }

    #[test]
    fn t_junction_detected_in_constructed_case() {
        use crate::MeshBuilder;
        use am_geom::{Point3, Triangle3};
        let mut b = MeshBuilder::new();
        // Edge from (0,0,0) to (2,0,0); a second triangle's vertex sits at
        // the midpoint (1,0,0) without splitting the edge.
        b.push(Triangle3::new(Point3::ZERO, Point3::new(2.0, 0.0, 0.0), Point3::Y));
        b.push(Triangle3::new(
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(3.0, 0.0, -1.0),
            Point3::new(1.0, 0.0, -1.0),
        ));
        assert_eq!(t_junction_count(&b.build(), Tolerance::new(1e-9)), 1);
    }
}
