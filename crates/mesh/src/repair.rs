//! Mesh repair: tolerance-based vertex welding.
//!
//! This is the *attacker's* tool in the ObfusCADe threat model: a
//! counterfeiter who suspects a planted split might try to weld the stolen
//! STL back into a single solid. The ablation experiments use this module to
//! show what welding can and cannot undo — welding closes the micro-gaps of
//! Fig. 4 only if the weld tolerance exceeds the tessellation mismatch, and
//! even then the interior separation wall remains unless the faces are also
//! removed.

use std::collections::HashMap;

use am_geom::Tolerance;

use crate::TriMesh;

/// Statistics from a welding pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeldReport {
    /// Vertices before welding.
    pub vertices_before: usize,
    /// Vertices after welding.
    pub vertices_after: usize,
    /// Triangles dropped because welding made them degenerate.
    pub triangles_dropped: usize,
}

/// Welds all vertices closer than `tol` together and drops triangles that
/// collapse in the process. Returns the repaired mesh and a report.
///
/// Welding uses a quantized grid of cell size `tol`, checking the 27
/// neighbouring cells, so vertices within `tol` of each other always merge
/// (and some up to `2·tol·√3` apart may merge — standard for weld filters).
///
/// # Examples
///
/// ```
/// use am_mesh::{weld_vertices, MeshBuilder};
/// use am_geom::{Point3, Tolerance, Triangle3};
///
/// let mut b = MeshBuilder::with_quantum(1e-12);
/// b.push(Triangle3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0), Point3::new(0.0, 1.0, 0.0)));
/// // A second triangle whose shared edge is off by 1 µm.
/// b.push(Triangle3::new(Point3::new(1e-6, 1e-6, 0.0), Point3::new(0.0, 1.0, 0.0), Point3::new(-1.0, 0.0, 0.0)));
/// let (welded, report) = weld_vertices(&b.build(), Tolerance::new(1e-3));
/// assert_eq!(report.vertices_after, 4);
/// assert_eq!(welded.triangle_count(), 2);
/// ```
pub fn weld_vertices(mesh: &TriMesh, tol: Tolerance) -> (TriMesh, WeldReport) {
    let eps = tol.value().max(1e-12);
    let key = |x: f64| (x / eps).round() as i64;

    let verts = mesh.vertices();
    let mut grid: HashMap<(i64, i64, i64), Vec<u32>> = HashMap::new();
    // representative[i] = canonical vertex index for original vertex i.
    let mut representative: Vec<u32> = Vec::with_capacity(verts.len());

    for (i, v) in verts.iter().enumerate() {
        let (kx, ky, kz) = (key(v.x), key(v.y), key(v.z));
        let mut rep: Option<u32> = None;
        'search: for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    let Some(bucket) = grid.get(&(kx + dx, ky + dy, kz + dz)) else { continue };
                    for &j in bucket {
                        if verts[j as usize].distance(*v) <= eps {
                            rep = Some(representative[j as usize]);
                            break 'search;
                        }
                    }
                }
            }
        }
        let canon = rep.unwrap_or(i as u32);
        representative.push(canon);
        grid.entry((kx, ky, kz)).or_default().push(i as u32);
    }

    // Compact: keep only canonical vertices.
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut new_verts = Vec::new();
    for (i, &rep) in representative.iter().enumerate() {
        if rep == i as u32 {
            remap.insert(rep, new_verts.len() as u32);
            new_verts.push(verts[i]);
        }
    }

    let mut dropped = 0usize;
    let mut new_tris = Vec::with_capacity(mesh.triangle_count());
    for &[a, b, c] in mesh.indices() {
        let (na, nb, nc) = (
            remap[&representative[a as usize]],
            remap[&representative[b as usize]],
            remap[&representative[c as usize]],
        );
        if na == nb || nb == nc || na == nc {
            dropped += 1;
        } else {
            new_tris.push([na, nb, nc]);
        }
    }

    let report = WeldReport {
        vertices_before: verts.len(),
        vertices_after: new_verts.len(),
        triangles_dropped: dropped,
    };
    (TriMesh::from_raw(new_verts, new_tris), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_topology, tessellate_part, Resolution};
    use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};

    #[test]
    fn welding_is_idempotent() {
        let part = tensile_bar_with_spline(&TensileBarDims::default()).unwrap().resolve().unwrap();
        let mesh = tessellate_part(&part, &Resolution::Coarse.params());
        let tol = Tolerance::new(1e-4);
        let (once, _) = weld_vertices(&mesh, tol);
        let (twice, report) = weld_vertices(&once, tol);
        assert_eq!(once.vertex_count(), twice.vertex_count());
        assert_eq!(report.triangles_dropped, 0);
    }

    #[test]
    fn tight_weld_does_not_merge_distinct_bodies() {
        let part = tensile_bar_with_spline(&TensileBarDims::default()).unwrap().resolve().unwrap();
        let mesh = tessellate_part(&part, &Resolution::Coarse.params());
        // The seam mismatch at Coarse is ≳0.01 mm, far above this weld tol,
        // so only exactly-coincident vertices (the shared seam endpoints and
        // duplicated boundary corners of the two bodies) merge — the same
        // set a zero-tolerance weld would merge.
        let (welded, report) = weld_vertices(&mesh, Tolerance::new(1e-7));
        let (_, exact) = weld_vertices(&mesh, Tolerance::new(1e-12));
        assert_eq!(report.vertices_after, exact.vertices_after);
        assert_eq!(report.triangles_dropped, 0);
        assert_eq!(welded.triangle_count(), mesh.triangle_count());
    }

    #[test]
    fn aggressive_weld_fuses_seam_vertices() {
        let part = tensile_bar_with_spline(&TensileBarDims::default()).unwrap().resolve().unwrap();
        let mesh = tessellate_part(&part, &Resolution::Coarse.params());
        // Weld at 0.5 mm — wider than the Coarse seam mismatch.
        let (welded, report) = weld_vertices(&mesh, Tolerance::new(0.5));
        assert!(report.vertices_after < report.vertices_before);
        // Fusing seam vertices creates shared (now non-manifold) interior
        // walls: the weld *changes the topology*, it does not restore the
        // intact part.
        let topo = analyze_topology(&welded);
        assert!(
            topo.non_manifold_edges > 0 || topo.misoriented_edges > 0 || topo.boundary_edges > 0,
            "weld should leave topological scars: {topo:?}"
        );
    }

    #[test]
    fn welding_preserves_volume_of_clean_mesh() {
        use am_cad::parts::{intact_prism, PrismDims};
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let mesh = tessellate_part(&part, &Resolution::Fine.params());
        let (welded, report) = weld_vertices(&mesh, Tolerance::new(1e-6));
        assert_eq!(report.triangles_dropped, 0);
        assert!((welded.signed_volume() - mesh.signed_volume()).abs() < 1e-9);
    }
}
