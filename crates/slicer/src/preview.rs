//! Text rendering of sliced layers — the CatalystEX "Preview function"
//! (§3.1: "allows visualization and navigation of the 2D tool paths
//! generated for each layer").

use crate::{CellMaterial, RasterLayer};

/// Renders a raster layer as ASCII art, downsampled to at most
/// `max_width` columns: `#` model, `.` support, space empty.
///
/// A spline-split bar sliced in x-z shows the planted seam as a blank
/// column wandering across consecutive layers — exactly the discontinuity
/// of the paper's Fig. 7a.
///
/// # Examples
///
/// ```
/// use am_geom::{Point2, Polygon2};
/// use am_slicer::{rasterize_polygon, render_layer_ascii};
///
/// let poly = Polygon2::rectangle(Point2::new(0.0, 0.0), Point2::new(10.0, 3.0));
/// let art = render_layer_ascii(&rasterize_polygon(&poly, 0.2), 40);
/// assert!(art.contains('#'));
/// ```
pub fn render_layer_ascii(raster: &RasterLayer, max_width: usize) -> String {
    let (nx, ny) = raster.dims();
    if nx == 0 || ny == 0 {
        return String::new();
    }
    let step = (nx / max_width.max(1)).max(1);
    let mut out = String::new();
    // Render top row first (y increases upward).
    for j in (0..ny).step_by(step).rev() {
        for i in (0..nx).step_by(step) {
            // Down-sample with priority: model > support > empty, so thin
            // features survive the down-sampling.
            let mut cell = CellMaterial::Empty;
            'block: for jj in j..(j + step).min(ny) {
                for ii in i..(i + step).min(nx) {
                    match raster.at(ii, jj) {
                        CellMaterial::Model => {
                            cell = CellMaterial::Model;
                            break 'block;
                        }
                        CellMaterial::Support => cell = CellMaterial::Support,
                        CellMaterial::Empty => {}
                    }
                }
            }
            out.push(match cell {
                CellMaterial::Model => '#',
                CellMaterial::Support => '.',
                CellMaterial::Empty => ' ',
            });
        }
        out.push('\n');
    }
    out
}

/// Renders a layer with the seam *highlighted*: narrow empty gaps between
/// model runs (≤ `seam_gap` mm, detected at full raster resolution, so
/// sub-column cracks survive the down-sampling) render as `!` — making the
/// Fig. 7a discontinuity jump out of the preview.
pub fn render_layer_with_seam(raster: &RasterLayer, max_width: usize, seam_gap: f64) -> String {
    let (nx, ny) = raster.dims();
    if nx == 0 || ny == 0 {
        return String::new();
    }
    // Full-resolution seam detection: empty runs between model cells whose
    // width is at most `seam_gap`.
    let gap_cells = (seam_gap / raster.cell_size()).ceil().max(1.0) as usize;
    let mut seam = vec![false; nx * ny];
    for j in 0..ny {
        let mut i = 0;
        let mut last_model_end: Option<usize> = None;
        while i < nx {
            match raster.at(i, j) {
                CellMaterial::Model => {
                    if let Some(end) = last_model_end {
                        let gap = i - end;
                        if gap > 0 && gap <= gap_cells {
                            for k in end..i {
                                seam[j * nx + k] = true;
                            }
                        }
                    }
                    while i < nx && raster.at(i, j) == CellMaterial::Model {
                        i += 1;
                    }
                    last_model_end = Some(i);
                }
                CellMaterial::Support => {
                    last_model_end = None;
                    i += 1;
                }
                CellMaterial::Empty => {
                    i += 1;
                }
            }
        }
    }

    let step = (nx / max_width.max(1)).max(1);
    let mut out = String::new();
    for j in (0..ny).step_by(step).rev() {
        for i in (0..nx).step_by(step) {
            let mut cell = ' ';
            'block: for jj in j..(j + step).min(ny) {
                for ii in i..(i + step).min(nx) {
                    if seam[jj * nx + ii] {
                        cell = '!';
                        break 'block;
                    }
                    match raster.at(ii, jj) {
                        CellMaterial::Model => {
                            if cell != '!' {
                                cell = '#';
                            }
                        }
                        CellMaterial::Support => {
                            if cell == ' ' {
                                cell = '.';
                            }
                        }
                        CellMaterial::Empty => {}
                    }
                }
            }
            out.push(cell);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rasterize_layer, rasterize_polygon, Contour, Layer};
    use am_geom::{Point2, Polygon2};

    #[test]
    fn solid_rectangle_renders_as_block() {
        let poly = Polygon2::rectangle(Point2::ZERO, Point2::new(10.0, 4.0));
        let art = render_layer_ascii(&rasterize_polygon(&poly, 0.2), 30);
        assert!(art.lines().count() >= 3);
        let hashes = art.chars().filter(|&c| c == '#').count();
        assert!(hashes > 50, "{art}");
        assert!(!art.contains('.'));
    }

    #[test]
    fn hole_renders_as_support_dots() {
        let outer = Polygon2::rectangle(Point2::ZERO, Point2::new(20.0, 20.0));
        let hole = Polygon2::circle(Point2::new(10.0, 10.0), 5.0, 32).reversed();
        let layer = Layer {
            z: 0.0,
            loops: vec![
                Contour { polygon: outer.clone(), body: 0 },
                Contour { polygon: hole, body: 1 },
            ],
            open_paths: Vec::new(),
        };
        let raster = rasterize_layer(&layer, outer.aabb().inflated(0.5), 0.2, true);
        let art = render_layer_ascii(&raster, 40);
        assert!(art.contains('.'), "{art}");
        assert!(art.contains('#'));
    }

    #[test]
    fn seam_highlight_marks_narrow_gaps_only() {
        // Two blocks, 0.4 mm apart (a seam) and then 8 mm apart (legit).
        let a = Polygon2::rectangle(Point2::ZERO, Point2::new(5.0, 3.0));
        let b = Polygon2::rectangle(Point2::new(5.4, 0.0), Point2::new(10.0, 3.0));
        let c = Polygon2::rectangle(Point2::new(18.0, 0.0), Point2::new(22.0, 3.0));
        let layer = Layer {
            z: 0.0,
            loops: [a, b, c]
                .into_iter()
                .enumerate()
                .map(|(i, polygon)| Contour { polygon, body: i })
                .collect(),
            open_paths: Vec::new(),
        };
        let bounds = am_geom::Aabb2::new(Point2::new(-1.0, -1.0), Point2::new(23.0, 4.0));
        let raster = rasterize_layer(&layer, bounds, 0.2, true);
        let art = render_layer_with_seam(&raster, 120, 1.0);
        assert!(art.contains('!'), "{art}");
        // The 8 mm gap must not be highlighted end to end: count ! columns.
        let marks = art.chars().filter(|&c| c == '!').count();
        let rows = art.lines().count();
        assert!(marks <= rows * 4, "too many seam marks:\n{art}");
    }

    #[test]
    fn empty_raster_renders_empty() {
        let poly = Polygon2::rectangle(Point2::ZERO, Point2::new(1.0, 1.0));
        let raster = rasterize_polygon(&poly, 0.5);
        let art = render_layer_ascii(&raster, 10);
        assert!(!art.is_empty());
    }
}
