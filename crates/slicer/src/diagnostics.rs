//! Slice-level defect diagnosis (the Fig. 7a observable).
//!
//! The paper inspects the CatalystEX preview: in x-z orientation the sliced
//! spline-split model shows a **discontinuity** around the spline at every
//! STL resolution, while in x-y it shows none. This module quantifies that
//! observation on the analysis raster:
//!
//! * a layer whose model region is **disconnected** (≥ 2 raster components)
//!   shows an outright discontinuity;
//! * **internal void** cells measure sub-road-width crack pockets (the
//!   tessellation gaps that surface as texture disruption in Fig. 8).

use am_geom::{Aabb2, Point2};

use crate::{rasterize_layer, SlicedModel};

/// Defect metrics for one sliced model.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceReport {
    /// Layers examined.
    pub layers: usize,
    /// Layers whose model region is disconnected by a near-zero gap.
    pub discontinuous_layers: usize,
    /// Largest component count seen in any layer.
    pub max_components: usize,
    /// Total internal-void cells across layers.
    pub internal_void_cells: usize,
    /// Total internal-void area (mm²) across layers.
    pub internal_void_area: f64,
    /// Cell size used for the analysis.
    pub cell: f64,
    /// Inter-body seam interface analysis (see [`SeamExposure`]).
    pub seam: Option<SeamExposure>,
}

impl SliceReport {
    /// `true` if the sliced model shows the split — the paper's Fig. 7a
    /// "discontinuity can be observed".
    ///
    /// Two mechanisms flag it:
    ///
    /// * layers whose cross-section is outright **disconnected** by a
    ///   near-zero gap (the lateral chord mismatch between the two bodies,
    ///   dominant at Coarse resolution in x-z);
    /// * an **exposed seam**: a narrow inter-body interface that shifts
    ///   laterally from layer to layer, so the abutting body walls form a
    ///   staircase traced on the part surface. This is resolution
    ///   independent — the diagonal spline moves the interface by
    ///   `|dx/dy| · layer height` every layer in x-z — whereas in x-y the
    ///   interface is a wide band in exact registry across layers, hidden
    ///   by the infill above and below.
    pub fn has_discontinuity(&self) -> bool {
        self.discontinuous_layers >= 2
            || self.seam.as_ref().is_some_and(SeamExposure::is_exposed)
    }
}

/// Geometry of the inter-body seam interface across layers.
///
/// An "interface" in a layer is the set of boundary vertices of one body's
/// contour lying within half a road width of a *different* body's contour —
/// the abutting cold-joint walls a planted split leaves behind.
#[derive(Debug, Clone, PartialEq)]
pub struct SeamExposure {
    /// Layers containing an inter-body interface.
    pub interface_layers: usize,
    /// Median in-plane width (max extent, mm) of the interface region per
    /// layer: narrow (≈ the part thickness) when layers cross the seam
    /// (x-z), wide (≈ the spline length) when the seam lies in-plane (x-y).
    pub median_span: f64,
    /// Mean lateral displacement (mm) of the interface centre between
    /// consecutive interface layers.
    pub mean_shift: f64,
}

impl SeamExposure {
    /// `true` if the seam is exposed as a surface staircase: a narrow
    /// interface that moves between layers.
    pub fn is_exposed(&self) -> bool {
        self.interface_layers >= 3 && self.median_span < 4.0 && self.mean_shift > 0.05
    }
}

/// Diagnoses a sliced model on a raster of the given cell size.
///
/// # Examples
///
/// ```no_run
/// use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
/// use am_mesh::{tessellate_shells, Resolution};
/// use am_slicer::{diagnose_slices, orient_shells, slice_shells, Orientation};
///
/// let part = tensile_bar_with_spline(&TensileBarDims::default())?.resolve()?;
/// let shells = tessellate_shells(&part, &Resolution::Coarse.params());
///
/// // x-z: layers cross the planted seam → discontinuity.
/// let standing = orient_shells(&shells, Orientation::Xz);
/// let report = diagnose_slices(&slice_shells(&standing, 0.1778), 0.05);
/// assert!(report.has_discontinuity());
///
/// // x-y: the seam lies in-plane and heals below road width → none.
/// let flat = orient_shells(&shells, Orientation::Xy);
/// let report = diagnose_slices(&slice_shells(&flat, 0.1778), 0.05);
/// assert!(!report.has_discontinuity());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn diagnose_slices(sliced: &SlicedModel, cell: f64) -> SliceReport {
    let bounds2 = Aabb2::new(
        Point2::new(sliced.bounds.min.x, sliced.bounds.min.y),
        Point2::new(sliced.bounds.max.x, sliced.bounds.max.y),
    )
    .inflated(cell * 1.5);

    let mut report = SliceReport {
        layers: sliced.layers.len(),
        discontinuous_layers: 0,
        max_components: 0,
        internal_void_cells: 0,
        internal_void_area: 0.0,
        cell,
        seam: seam_exposure(sliced, 0.3),
    };
    // A seam splits the cross-section into pieces that *almost touch*;
    // legitimately disjoint geometry (dogbone grips in x-z) is far apart.
    const SEAM_GAP_MM: f64 = 2.0;
    for layer in &sliced.layers {
        if layer.loops.is_empty() {
            continue;
        }
        let raster = rasterize_layer(layer, bounds2, cell, true);
        let components = raster.model_components();
        report.max_components = report.max_components.max(components);
        if components >= 2 && raster.min_model_gap().is_some_and(|g| g <= SEAM_GAP_MM) {
            report.discontinuous_layers += 1;
        }
        let voids = raster.internal_void_cells();
        report.internal_void_cells += voids;
        report.internal_void_area += voids as f64 * cell * cell;
    }
    report
}

/// Computes the [`SeamExposure`] of a sliced model: per layer, collect the
/// contour vertices of each body lying within `interface_tol` of another
/// body's contour, then track the interface region's in-plane span and its
/// layer-to-layer drift.
///
/// Returns `None` if no layer has an inter-body interface (e.g. an intact
/// part, or bodies that never touch).
pub fn seam_exposure(sliced: &SlicedModel, interface_tol: f64) -> Option<SeamExposure> {
    let mut spans: Vec<f64> = Vec::new();
    let mut centers: Vec<Point2> = Vec::new();
    for layer in &sliced.layers {
        let mut matched: Vec<Point2> = Vec::new();
        for a in &layer.loops {
            for b in &layer.loops {
                if a.body == b.body {
                    continue;
                }
                for &v in a.polygon.vertices() {
                    if b.polygon.distance_to_boundary(v) <= interface_tol {
                        matched.push(v);
                    }
                }
            }
        }
        if matched.len() < 2 {
            continue;
        }
        let bbox = am_geom::Aabb2::from_points(matched.iter().copied())
            .expect("matched is non-empty");
        let size = bbox.size();
        spans.push(size.x.max(size.y));
        centers.push(bbox.center());
    }
    if spans.is_empty() {
        return None;
    }
    let mut sorted = spans.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite spans"));
    let median_span = sorted[sorted.len() / 2];
    let shifts: Vec<f64> = centers.windows(2).map(|w| w[0].distance(w[1])).collect();
    let mean_shift = if shifts.is_empty() {
        0.0
    } else {
        shifts.iter().sum::<f64>() / shifts.len() as f64
    };
    Some(SeamExposure { interface_layers: spans.len(), median_span, mean_shift })
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{tensile_bar, tensile_bar_with_spline, TensileBarDims};
    use am_mesh::{tessellate_shells, Resolution};
    use crate::{orient_shells, slice_shells, Orientation};

    fn report(split: bool, orientation: Orientation, res: Resolution) -> SliceReport {
        let dims = TensileBarDims::default();
        let part = if split {
            tensile_bar_with_spline(&dims).unwrap().resolve().unwrap()
        } else {
            tensile_bar(&dims).unwrap().resolve().unwrap()
        };
        let shells = tessellate_shells(&part, &res.params());
        let oriented = orient_shells(&shells, orientation);
        diagnose_slices(&slice_shells(&oriented, 0.1778), 0.05)
    }

    #[test]
    fn intact_bar_clean_in_both_orientations() {
        for o in Orientation::ALL {
            let r = report(false, o, Resolution::Coarse);
            assert!(!r.has_discontinuity(), "{o}: {r:?}");
            assert!(r.seam.is_none(), "{o}: intact bar has no inter-body seam");
        }
    }

    #[test]
    fn split_bar_xz_discontinuous_at_all_resolutions() {
        // The paper's headline slicing result (Fig. 7a).
        for res in Resolution::ALL {
            let r = report(true, Orientation::Xz, res);
            assert!(r.has_discontinuity(), "{res}: {r:?}");
        }
    }

    #[test]
    fn split_bar_xy_not_discontinuous() {
        for res in Resolution::ALL {
            let r = report(true, Orientation::Xy, res);
            assert!(!r.has_discontinuity(), "{res}: {r:?}");
        }
    }

    #[test]
    fn split_bar_xy_coarse_leaves_crack_pockets() {
        // The Fig. 8a surface-disruption precursor: sub-road-width pockets
        // along the seam at Coarse, vanishing at higher resolutions.
        let coarse = report(true, Orientation::Xy, Resolution::Coarse);
        let custom = report(true, Orientation::Xy, Resolution::Custom);
        assert!(
            coarse.internal_void_cells > custom.internal_void_cells,
            "coarse {} vs custom {}",
            coarse.internal_void_cells,
            custom.internal_void_cells
        );
    }
}
