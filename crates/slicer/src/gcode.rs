//! G-code emission and parsing.
//!
//! The paper's process chain sends a G-code part program to cloud-aware
//! printer firmware (Fig. 1), and several attacks in Table 1 target this
//! stage (tool-path theft, malicious coordinate injection). This module
//! emits a minimal, self-contained dialect and can parse it back — the
//! round trip is what `am-sidechannel` and the firmware simulator consume.
//!
//! Dialect:
//!
//! ```text
//! ; comment
//! T0 | T1            select model / support extruder
//! G0 X.. Y.. Z..     travel (no extrusion)
//! G1 X.. Y.. E..     extruding move at the current Z
//! ```

use std::error::Error;
use std::fmt;

use am_geom::Point2;

use crate::{Road, RoadKind, ToolMaterial, ToolPath};

/// Errors from G-code parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GcodeError {
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for GcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcodeError::BadLine { line, reason } => write!(f, "g-code line {line}: {reason}"),
        }
    }
}

impl Error for GcodeError {}

/// Serializes a tool path into the G-code dialect.
///
/// Roads are emitted in order; travel moves (`G0`) reposition the head
/// between disconnected roads, extruding moves (`G1`) deposit material.
///
/// # Examples
///
/// ```
/// use am_slicer::{parse_gcode, to_gcode, ToolPath};
///
/// let empty = ToolPath::default();
/// let text = to_gcode(&empty);
/// assert!(text.starts_with("; obfuscade g-code"));
/// let back = parse_gcode(&text)?;
/// assert_eq!(back.roads.len(), 0);
/// # Ok::<(), am_slicer::GcodeError>(())
/// ```
pub fn to_gcode(toolpath: &ToolPath) -> String {
    let mut out = String::new();
    out.push_str("; obfuscade g-code\n");
    out.push_str(&format!(
        "; layer_height {:.6} road_width {:.6}\n",
        toolpath.layer_height, toolpath.road_width
    ));
    let mut pos: Option<(Point2, f64)> = None;
    let mut tool: Option<ToolMaterial> = None;
    for road in &toolpath.roads {
        if tool != Some(road.material) {
            out.push_str(match road.material {
                ToolMaterial::Model => "T0\n",
                ToolMaterial::Support => "T1\n",
            });
            tool = Some(road.material);
        }
        let here = (road.from, road.z);
        let needs_travel = match pos {
            Some((p, z)) => p.distance(here.0) > 1e-9 || (z - here.1).abs() > 1e-9,
            None => true,
        };
        if needs_travel {
            out.push_str(&format!(
                "G0 X{:.4} Y{:.4} Z{:.4}\n",
                road.from.x, road.from.y, road.z
            ));
        }
        let e = road.length(); // extrusion units: road millimetres
        let body = match road.body {
            Some(b) => format!(" B{b}"),
            None => String::new(),
        };
        let kind = match road.kind {
            RoadKind::Perimeter => " ; perimeter",
            RoadKind::Infill => "",
        };
        out.push_str(&format!(
            "G1 X{:.4} Y{:.4} E{:.4}{body}{kind}\n",
            road.to.x, road.to.y, e
        ));
        pos = Some((road.to, road.z));
    }
    out.push_str("; end\n");
    out
}

/// Parses the G-code dialect back into a tool path.
///
/// # Errors
///
/// Returns [`GcodeError::BadLine`] for unknown commands or malformed
/// coordinates. Header comments carry the layer/road geometry; if missing,
/// both default to zero (lengths still parse).
pub fn parse_gcode(text: &str) -> Result<ToolPath, GcodeError> {
    let mut toolpath = ToolPath::default();
    let mut pos = Point2::ZERO;
    let mut z = 0.0f64;
    let mut material = ToolMaterial::Model;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Header metadata.
        if let Some(rest) = raw.strip_prefix("; layer_height ") {
            let mut it = rest.split_whitespace();
            toolpath.layer_height = parse_num(it.next(), lineno, "layer height")?;
            if it.next() == Some("road_width") {
                toolpath.road_width = parse_num(it.next(), lineno, "road width")?;
            }
            continue;
        }
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let kind_comment = raw.contains("; perimeter");
        let mut words = line.split_whitespace();
        match words.next() {
            Some("T0") => material = ToolMaterial::Model,
            Some("T1") => material = ToolMaterial::Support,
            Some("G0") => {
                for w in words {
                    match w.split_at(1) {
                        ("X", v) => pos.x = parse_val(v, lineno)?,
                        ("Y", v) => pos.y = parse_val(v, lineno)?,
                        ("Z", v) => z = parse_val(v, lineno)?,
                        _ => {
                            return Err(GcodeError::BadLine {
                                line: lineno,
                                reason: format!("unknown G0 word {w}"),
                            })
                        }
                    }
                }
            }
            Some("G1") => {
                let mut to = pos;
                let mut body = None;
                for w in words {
                    match w.split_at(1) {
                        ("X", v) => to.x = parse_val(v, lineno)?,
                        ("Y", v) => to.y = parse_val(v, lineno)?,
                        ("E", _) => {}
                        ("B", v) => {
                            body = Some(v.parse::<u16>().map_err(|_| GcodeError::BadLine {
                                line: lineno,
                                reason: format!("bad body tag {v}"),
                            })?)
                        }
                        _ => {
                            return Err(GcodeError::BadLine {
                                line: lineno,
                                reason: format!("unknown G1 word {w}"),
                            })
                        }
                    }
                }
                toolpath.roads.push(Road {
                    from: pos,
                    to,
                    z,
                    material,
                    kind: if kind_comment { RoadKind::Perimeter } else { RoadKind::Infill },
                    body,
                });
                pos = to;
            }
            Some(cmd) => {
                return Err(GcodeError::BadLine {
                    line: lineno,
                    reason: format!("unknown command {cmd}"),
                })
            }
            None => {}
        }
    }
    Ok(toolpath)
}

fn parse_num(tok: Option<&str>, line: usize, what: &str) -> Result<f64, GcodeError> {
    tok.and_then(|t| t.parse().ok()).ok_or_else(|| GcodeError::BadLine {
        line,
        reason: format!("bad {what}"),
    })
}

fn parse_val(v: &str, line: usize) -> Result<f64, GcodeError> {
    v.parse().map_err(|_| GcodeError::BadLine { line, reason: format!("bad coordinate {v}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{prism_with_sphere, PrismDims};
    use am_cad::{BodyKind, MaterialRemoval};
    use am_mesh::{tessellate_shells, Resolution};
    use crate::{generate_toolpath, slice_shells, SlicerConfig};

    fn sample_toolpath() -> ToolPath {
        let part = prism_with_sphere(
            &PrismDims::default(),
            BodyKind::Solid,
            MaterialRemoval::Without,
        )
        .unwrap()
        .resolve()
        .unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let sliced = slice_shells(&shells, 0.3556); // double height: faster test
        generate_toolpath(&sliced, &SlicerConfig::default())
    }

    #[test]
    fn round_trip_preserves_roads_and_lengths() {
        let tp = sample_toolpath();
        let text = to_gcode(&tp);
        let back = parse_gcode(&text).unwrap();
        assert_eq!(back.roads.len(), tp.roads.len());
        assert!((back.layer_height - tp.layer_height).abs() < 1e-9);
        assert!((back.road_width - tp.road_width).abs() < 1e-9);
        for m in [ToolMaterial::Model, ToolMaterial::Support] {
            let a = tp.total_length(m);
            let b = back.total_length(m);
            assert!((a - b).abs() < 0.01 * a.max(1.0), "{m}: {a} vs {b}");
        }
    }

    #[test]
    fn round_trip_preserves_kinds() {
        let tp = sample_toolpath();
        let back = parse_gcode(&to_gcode(&tp)).unwrap();
        let count = |t: &ToolPath, k: RoadKind| t.roads.iter().filter(|r| r.kind == k).count();
        assert_eq!(count(&tp, RoadKind::Perimeter), count(&back, RoadKind::Perimeter));
        assert_eq!(count(&tp, RoadKind::Infill), count(&back, RoadKind::Infill));
    }

    #[test]
    fn unknown_command_rejected() {
        let err = parse_gcode("M999 panic\n").unwrap_err();
        assert!(matches!(err, GcodeError::BadLine { line: 1, .. }));
    }

    #[test]
    fn bad_coordinate_rejected() {
        let err = parse_gcode("G0 Xnope Y0 Z0\n").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let tp = parse_gcode("; hello\n\n; world\n").unwrap();
        assert!(tp.roads.is_empty());
    }

    #[test]
    fn tool_changes_tracked() {
        let text = "T1\nG0 X0 Y0 Z0.1\nG1 X5 Y0 E5\nT0\nG0 X0 Y1 Z0.1\nG1 X5 Y1 E5\n";
        let tp = parse_gcode(text).unwrap();
        assert_eq!(tp.roads.len(), 2);
        assert_eq!(tp.roads[0].material, ToolMaterial::Support);
        assert_eq!(tp.roads[1].material, ToolMaterial::Model);
    }
}
