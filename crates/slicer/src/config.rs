//! Slicer configuration.

use std::fmt;

/// Interior fill style.
///
/// The paper's CatalystEX runs used a **solid** model interior; sparse
/// fill is the common cost-saving alternative — and a counterfeiter's
/// temptation, since it is exactly what the Table 1 "measure weight /
/// density" inspection catches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InfillStyle {
    /// Fully dense interior (the paper's setting).
    Solid,
    /// Sparse raster: only every n-th infill road is deposited.
    /// `density` ∈ (0, 1]; perimeters stay dense.
    Sparse {
        /// Fraction of infill roads kept.
        density: f64,
    },
}

impl InfillStyle {
    /// The row step implied by the style (1 = every row).
    pub(crate) fn row_step(&self) -> usize {
        match self {
            InfillStyle::Solid => 1,
            InfillStyle::Sparse { density } => (1.0 / density.clamp(0.05, 1.0)).round() as usize,
        }
    }
}

impl fmt::Display for InfillStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfillStyle::Solid => write!(f, "solid"),
            InfillStyle::Sparse { density } => write!(f, "sparse {:.0}%", density * 100.0),
        }
    }
}

/// Slicing parameters.
///
/// Defaults follow the paper's CatalystEX settings for the Stratasys
/// Dimension Elite: 0.01778 cm (= 0.1778 mm) layer resolution and a solid
/// model interior, with support generation enabled ("smart support fill").
///
/// # Examples
///
/// ```
/// use am_slicer::SlicerConfig;
///
/// let cfg = SlicerConfig::default();
/// assert!((cfg.layer_height - 0.1778).abs() < 1e-12);
/// let fine = SlicerConfig { layer_height: 0.016, ..SlicerConfig::default() };
/// assert!(fine.layer_height < cfg.layer_height);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlicerConfig {
    /// Layer height (mm). FDM default: 0.1778.
    pub layer_height: f64,
    /// Deposited road (bead) width (mm); also the tool-path raster spacing.
    pub road_width: f64,
    /// Raster cell size (mm) for material classification and defect
    /// diagnosis. Should be well below `road_width`.
    pub analysis_cell: f64,
    /// Whether to generate soluble support material (enclosed voids and
    /// overhangs).
    pub support: bool,
    /// Interior fill style.
    pub infill: InfillStyle,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            layer_height: 0.1778,
            road_width: 0.5,
            analysis_cell: 0.05,
            support: true,
            infill: InfillStyle::Solid,
        }
    }
}

/// A [`SlicerConfig`] field rejected by [`SlicerConfig::validate`].
///
/// Carrying the field name and offending value lets callers (the pipeline,
/// the CLI) report *which* knob an attacker or a typo corrupted without
/// string-matching panic messages.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A length field is zero, negative, NaN, or infinite.
    NonPositive {
        /// Field name (`layer_height`, `road_width`, or `analysis_cell`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A length field is outside the supported physical range; the bounds
    /// exist so a corrupted config cannot request an unbounded number of
    /// layers or raster cells (memory-exhaustion hardening).
    OutOfRange {
        /// Field name.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Smallest accepted value (mm).
        min: f64,
        /// Largest accepted value (mm).
        max: f64,
    },
    /// `analysis_cell` exceeds `road_width`, which would make material
    /// classification coarser than the roads it classifies.
    CellExceedsRoad {
        /// The rejected analysis cell (mm).
        analysis_cell: f64,
        /// The road width it must not exceed (mm).
        road_width: f64,
    },
    /// Sparse infill density outside `(0, 1]`.
    BadInfillDensity {
        /// The rejected density.
        density: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { name, value } => {
                write!(f, "{name} must be positive, got {value}")
            }
            ConfigError::OutOfRange { name, value, min, max } => {
                write!(f, "{name} ({value}) outside supported range [{min}, {max}] mm")
            }
            ConfigError::CellExceedsRoad { analysis_cell, road_width } => write!(
                f,
                "analysis_cell ({analysis_cell}) must not exceed road_width ({road_width})"
            ),
            ConfigError::BadInfillDensity { density } => {
                write!(f, "sparse infill density must be in (0, 1], got {density}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl SlicerConfig {
    /// Smallest accepted length field (mm): 1 µm, far below any real nozzle.
    pub const MIN_LENGTH_MM: f64 = 1e-3;
    /// Largest accepted length field (mm): 1 m, far above any build volume.
    pub const MAX_LENGTH_MM: f64 = 1e3;

    /// Checks that all lengths are positive, within the supported physical
    /// range, and mutually consistent.
    ///
    /// This is the panic-free entry point used by `run_pipeline` and the
    /// CLI; a corrupted or adversarial config yields a typed [`ConfigError`]
    /// instead of aborting the process.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, v) in [
            ("layer_height", self.layer_height),
            ("road_width", self.road_width),
            ("analysis_cell", self.analysis_cell),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ConfigError::NonPositive { name, value: v });
            }
            if !(Self::MIN_LENGTH_MM..=Self::MAX_LENGTH_MM).contains(&v) {
                return Err(ConfigError::OutOfRange {
                    name,
                    value: v,
                    min: Self::MIN_LENGTH_MM,
                    max: Self::MAX_LENGTH_MM,
                });
            }
        }
        if self.analysis_cell > self.road_width {
            return Err(ConfigError::CellExceedsRoad {
                analysis_cell: self.analysis_cell,
                road_width: self.road_width,
            });
        }
        if let InfillStyle::Sparse { density } = self.infill {
            if !(density > 0.0 && density <= 1.0) {
                return Err(ConfigError::BadInfillDensity { density });
            }
        }
        Ok(())
    }

    /// Validates all lengths are positive and consistent.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on any invalid field. Prefer
    /// [`SlicerConfig::validate`] in library code.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

impl fmt::Display for SlicerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slicer[layer {} mm, road {} mm, support {}]",
            self.layer_height, self.road_width, self.support
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = SlicerConfig::default();
        assert!((c.layer_height - 0.1778).abs() < 1e-12);
        assert!(c.support);
        assert_eq!(c.infill, InfillStyle::Solid);
        c.assert_valid();
    }

    #[test]
    fn sparse_density_maps_to_row_step() {
        assert_eq!(InfillStyle::Solid.row_step(), 1);
        assert_eq!(InfillStyle::Sparse { density: 0.5 }.row_step(), 2);
        assert_eq!(InfillStyle::Sparse { density: 0.25 }.row_step(), 4);
    }

    #[test]
    #[should_panic(expected = "sparse infill density")]
    fn bad_sparse_density_rejected() {
        SlicerConfig { infill: InfillStyle::Sparse { density: 0.0 }, ..SlicerConfig::default() }
            .assert_valid();
    }

    #[test]
    #[should_panic(expected = "layer_height must be positive")]
    fn zero_layer_height_invalid() {
        SlicerConfig { layer_height: 0.0, ..SlicerConfig::default() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "analysis_cell")]
    fn oversized_analysis_cell_invalid() {
        SlicerConfig { analysis_cell: 2.0, ..SlicerConfig::default() }.assert_valid();
    }

    #[test]
    fn validate_returns_typed_errors() {
        let ok = SlicerConfig::default();
        assert_eq!(ok.validate(), Ok(()));

        let nan = SlicerConfig { layer_height: f64::NAN, ..ok };
        assert!(matches!(
            nan.validate(),
            Err(ConfigError::NonPositive { name: "layer_height", .. })
        ));

        let tiny = SlicerConfig { road_width: 1e-9, ..ok };
        assert!(matches!(
            tiny.validate(),
            Err(ConfigError::OutOfRange { name: "road_width", .. })
        ));

        let coarse = SlicerConfig { analysis_cell: 2.0, ..ok };
        assert!(matches!(coarse.validate(), Err(ConfigError::CellExceedsRoad { .. })));

        let sparse =
            SlicerConfig { infill: InfillStyle::Sparse { density: 1.5 }, ..ok };
        assert!(matches!(sparse.validate(), Err(ConfigError::BadInfillDensity { .. })));
    }
}
