//! Slicer configuration.

use std::fmt;

/// Interior fill style.
///
/// The paper's CatalystEX runs used a **solid** model interior; sparse
/// fill is the common cost-saving alternative — and a counterfeiter's
/// temptation, since it is exactly what the Table 1 "measure weight /
/// density" inspection catches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InfillStyle {
    /// Fully dense interior (the paper's setting).
    Solid,
    /// Sparse raster: only every n-th infill road is deposited.
    /// `density` ∈ (0, 1]; perimeters stay dense.
    Sparse {
        /// Fraction of infill roads kept.
        density: f64,
    },
}

impl InfillStyle {
    /// The row step implied by the style (1 = every row).
    pub(crate) fn row_step(&self) -> usize {
        match self {
            InfillStyle::Solid => 1,
            InfillStyle::Sparse { density } => (1.0 / density.clamp(0.05, 1.0)).round() as usize,
        }
    }
}

impl fmt::Display for InfillStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfillStyle::Solid => write!(f, "solid"),
            InfillStyle::Sparse { density } => write!(f, "sparse {:.0}%", density * 100.0),
        }
    }
}

/// Slicing parameters.
///
/// Defaults follow the paper's CatalystEX settings for the Stratasys
/// Dimension Elite: 0.01778 cm (= 0.1778 mm) layer resolution and a solid
/// model interior, with support generation enabled ("smart support fill").
///
/// # Examples
///
/// ```
/// use am_slicer::SlicerConfig;
///
/// let cfg = SlicerConfig::default();
/// assert!((cfg.layer_height - 0.1778).abs() < 1e-12);
/// let fine = SlicerConfig { layer_height: 0.016, ..SlicerConfig::default() };
/// assert!(fine.layer_height < cfg.layer_height);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlicerConfig {
    /// Layer height (mm). FDM default: 0.1778.
    pub layer_height: f64,
    /// Deposited road (bead) width (mm); also the tool-path raster spacing.
    pub road_width: f64,
    /// Raster cell size (mm) for material classification and defect
    /// diagnosis. Should be well below `road_width`.
    pub analysis_cell: f64,
    /// Whether to generate soluble support material (enclosed voids and
    /// overhangs).
    pub support: bool,
    /// Interior fill style.
    pub infill: InfillStyle,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            layer_height: 0.1778,
            road_width: 0.5,
            analysis_cell: 0.05,
            support: true,
            infill: InfillStyle::Solid,
        }
    }
}

impl SlicerConfig {
    /// Validates all lengths are positive and consistent.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite values, or if `analysis_cell`
    /// exceeds `road_width`.
    pub fn assert_valid(&self) {
        for (name, v) in [
            ("layer_height", self.layer_height),
            ("road_width", self.road_width),
            ("analysis_cell", self.analysis_cell),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
        }
        assert!(
            self.analysis_cell <= self.road_width,
            "analysis_cell ({}) must not exceed road_width ({})",
            self.analysis_cell,
            self.road_width
        );
        if let InfillStyle::Sparse { density } = self.infill {
            assert!(
                density > 0.0 && density <= 1.0,
                "sparse infill density must be in (0, 1], got {density}"
            );
        }
    }
}

impl fmt::Display for SlicerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slicer[layer {} mm, road {} mm, support {}]",
            self.layer_height, self.road_width, self.support
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = SlicerConfig::default();
        assert!((c.layer_height - 0.1778).abs() < 1e-12);
        assert!(c.support);
        assert_eq!(c.infill, InfillStyle::Solid);
        c.assert_valid();
    }

    #[test]
    fn sparse_density_maps_to_row_step() {
        assert_eq!(InfillStyle::Solid.row_step(), 1);
        assert_eq!(InfillStyle::Sparse { density: 0.5 }.row_step(), 2);
        assert_eq!(InfillStyle::Sparse { density: 0.25 }.row_step(), 4);
    }

    #[test]
    #[should_panic(expected = "sparse infill density")]
    fn bad_sparse_density_rejected() {
        SlicerConfig { infill: InfillStyle::Sparse { density: 0.0 }, ..SlicerConfig::default() }
            .assert_valid();
    }

    #[test]
    #[should_panic(expected = "layer_height must be positive")]
    fn zero_layer_height_invalid() {
        SlicerConfig { layer_height: 0.0, ..SlicerConfig::default() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "analysis_cell")]
    fn oversized_analysis_cell_invalid() {
        SlicerConfig { analysis_cell: 2.0, ..SlicerConfig::default() }.assert_valid();
    }
}
