//! Print orientations (Fig. 6 of the paper).

use std::fmt;

use am_geom::{Transform3, Vec3};
use am_mesh::TriMesh;

/// A build orientation for the part on the printer bed.
///
/// The paper defines two (Fig. 6):
///
/// * **x-y** — the specimen lies flat; build layers stack through the part's
///   *thickness*. The spline split surface lies **in** each layer.
/// * **x-z** — the specimen stands on its long edge; build layers stack
///   through the part's *width*. Each layer **crosses** the split surface.
///
/// Orientation is one coordinate of the ObfusCADe [process
/// key](https://dl.acm.org/doi/10.1145/3061639.3079847): printing a
/// spline-split model in x-z manifests the seam at every STL resolution.
///
/// # Examples
///
/// ```
/// use am_slicer::Orientation;
///
/// assert_eq!(Orientation::ALL.len(), 2);
/// assert_eq!(Orientation::Xy.to_string(), "x-y");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Flat on the bed: build z = model thickness (z).
    Xy,
    /// Standing on the long edge: build z = model width (y).
    Xz,
}

impl Orientation {
    /// Both paper orientations.
    pub const ALL: [Orientation; 2] = [Orientation::Xy, Orientation::Xz];

    /// The rigid rotation from model coordinates to build coordinates.
    pub fn rotation(self) -> Transform3 {
        match self {
            Orientation::Xy => Transform3::identity(),
            // Rotate +90° about x: model (x, y, z) → (x, −z, y), so the
            // model's width (y) becomes the build height.
            Orientation::Xz => Transform3::rotation_x(std::f64::consts::FRAC_PI_2),
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::Xy => write!(f, "x-y"),
            Orientation::Xz => write!(f, "x-z"),
        }
    }
}

/// Rotates `mesh` into the given orientation and translates it so its
/// bounding-box minimum sits at the origin (on the build plate).
///
/// Returns the mesh unchanged (but still re-homed) for [`Orientation::Xy`].
///
/// # Examples
///
/// ```
/// use am_cad::parts::{tensile_bar, TensileBarDims};
/// use am_mesh::{tessellate_part, Resolution};
/// use am_slicer::{orient_mesh, Orientation};
///
/// let dims = TensileBarDims::default();
/// let part = tensile_bar(&dims)?.resolve()?;
/// let mesh = tessellate_part(&part, &Resolution::Fine.params());
///
/// let flat = orient_mesh(&mesh, Orientation::Xy);
/// let standing = orient_mesh(&mesh, Orientation::Xz);
/// let (bf, bs) = (flat.aabb().unwrap(), standing.aabb().unwrap());
/// assert!((bf.size().z - dims.thickness).abs() < 1e-9);   // flat: thin
/// assert!((bs.size().z - dims.grip_width).abs() < 1e-9);  // standing: tall
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn orient_mesh(mesh: &TriMesh, orientation: Orientation) -> TriMesh {
    let rotated = mesh.transformed(&orientation.rotation());
    match rotated.aabb() {
        Some(b) => rotated.transformed(&Transform3::translation(Vec3::ZERO - b.min)),
        None => rotated,
    }
}

/// Orients a multi-shell model coherently: every shell gets the **same**
/// rotation and translation (computed from the union bounding box), so the
/// bodies keep their relative placement — essential for split parts, whose
/// two bodies must stay separated by exactly the planted seam.
pub fn orient_shells(shells: &[TriMesh], orientation: Orientation) -> Vec<TriMesh> {
    let t = build_transform(shells, orientation);
    shells.iter().map(|m| m.transformed(&t)).collect()
}

/// The full model→build transform [`orient_shells`] applies: the
/// orientation rotation followed by the translation that homes the union
/// bounding box onto the build plate.
///
/// Downstream consumers (the printer simulator, the virtual test bench)
/// keep this transform so printed voxels can be sampled back in **model**
/// coordinates.
pub fn build_transform(shells: &[TriMesh], orientation: Orientation) -> Transform3 {
    let rotation = orientation.rotation();
    let bounds = shells
        .iter()
        .map(|m| m.transformed(&rotation))
        .filter_map(|m| m.aabb())
        .reduce(|a, b| a.union(&b));
    match bounds {
        Some(b) => rotation.then(&Transform3::translation(Vec3::ZERO - b.min)),
        None => rotation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{tensile_bar, TensileBarDims};
    use am_mesh::{tessellate_part, Resolution};

    fn bar_mesh() -> TriMesh {
        let part = tensile_bar(&TensileBarDims::default()).unwrap().resolve().unwrap();
        tessellate_part(&part, &Resolution::Coarse.params())
    }

    #[test]
    fn xy_is_identity_rotation() {
        let m = bar_mesh();
        let o = orient_mesh(&m, Orientation::Xy);
        let (bm, bo) = (m.aabb().unwrap(), o.aabb().unwrap());
        assert!(bo.min.approx_eq(am_geom::Vec3::ZERO, am_geom::Tolerance::new(1e-9)));
        assert!(bo.size().approx_eq(bm.size(), am_geom::Tolerance::new(1e-9)));
    }

    #[test]
    fn xz_swaps_width_and_height() {
        let m = bar_mesh();
        let bm = m.aabb().unwrap().size();
        let bo = orient_mesh(&m, Orientation::Xz).aabb().unwrap().size();
        assert!((bo.x - bm.x).abs() < 1e-9);
        assert!((bo.y - bm.z).abs() < 1e-9);
        assert!((bo.z - bm.y).abs() < 1e-9);
    }

    #[test]
    fn orienting_preserves_volume() {
        let m = bar_mesh();
        for o in Orientation::ALL {
            let v = orient_mesh(&m, o).signed_volume();
            assert!((v - m.signed_volume()).abs() < 1e-6);
        }
    }

    #[test]
    fn mesh_sits_on_build_plate() {
        let m = bar_mesh();
        for o in Orientation::ALL {
            let b = orient_mesh(&m, o).aabb().unwrap();
            assert!(b.min.z.abs() < 1e-9);
            assert!(b.min.x.abs() < 1e-9 && b.min.y.abs() < 1e-9);
        }
    }
}
