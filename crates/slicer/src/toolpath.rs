//! Tool-path generation: raster layers → deposition roads.

use std::fmt;

use am_geom::{Point2, Polygon2};

use crate::{CellMaterial, RasterLayer, SlicedModel, SlicerConfig};

/// Which extruder a road uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolMaterial {
    /// Build material (e.g. ABS / VeroClear).
    Model,
    /// Dissolvable support material.
    Support,
}

impl fmt::Display for ToolMaterial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolMaterial::Model => write!(f, "model"),
            ToolMaterial::Support => write!(f, "support"),
        }
    }
}

/// The role of a road in the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadKind {
    /// Contour-following outline road.
    Perimeter,
    /// Interior raster fill road.
    Infill,
}

/// One deposited road: a straight extrusion move at a fixed height.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Road {
    /// Start of the road.
    pub from: Point2,
    /// End of the road.
    pub to: Point2,
    /// Layer height (z) of the road.
    pub z: f64,
    /// Extruder used.
    pub material: ToolMaterial,
    /// Role of the road.
    pub kind: RoadKind,
    /// Source body (shell) of the road, when it belongs to exactly one.
    /// Roads of different bodies never fuse into one — the cold-joint
    /// semantics a planted split exploits.
    pub body: Option<u16>,
}

impl Road {
    /// Road length (mm).
    pub fn length(&self) -> f64 {
        self.from.distance(self.to)
    }
}

/// A full part program: every road of every layer, in deposition order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ToolPath {
    /// Roads in deposition order (bottom layer first).
    pub roads: Vec<Road>,
    /// Layer height the roads were planned for.
    pub layer_height: f64,
    /// Road (bead) width.
    pub road_width: f64,
}

impl ToolPath {
    /// Total road length for one material (mm).
    pub fn total_length(&self, material: ToolMaterial) -> f64 {
        self.roads.iter().filter(|r| r.material == material).map(Road::length).sum()
    }

    /// Deposited volume estimate for one material (mm³): length × road
    /// cross-section.
    pub fn material_volume(&self, material: ToolMaterial) -> f64 {
        self.total_length(material) * self.road_width * self.layer_height
    }

    /// Estimated print time in seconds at the given head feed rate (mm/s),
    /// including a fixed per-layer overhead.
    ///
    /// # Panics
    ///
    /// Panics if the feed rate is not positive and finite. Prefer
    /// [`ToolPath::try_print_time_estimate`] in library code.
    pub fn print_time_estimate(&self, feed_mm_per_s: f64) -> f64 {
        match self.try_print_time_estimate(feed_mm_per_s) {
            Some(t) => t,
            None => panic!("feed rate must be positive, got {feed_mm_per_s}"),
        }
    }

    /// Estimated print time like [`ToolPath::print_time_estimate`], or
    /// `None` when the feed rate is not positive and finite.
    pub fn try_print_time_estimate(&self, feed_mm_per_s: f64) -> Option<f64> {
        if !(feed_mm_per_s.is_finite() && feed_mm_per_s > 0.0) {
            return None;
        }
        let travel: f64 = self.roads.iter().map(Road::length).sum();
        Some(travel / feed_mm_per_s + self.layer_count() as f64 * 2.0)
    }

    /// Number of distinct layers with at least one road. Roads of one layer
    /// share their `z` exactly, so distinctness is exact.
    pub fn layer_count(&self) -> usize {
        self.roads
            .iter()
            .map(|r| r.z.to_bits())
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

/// Generates the part program for a sliced model.
///
/// Per layer: one perimeter road loop per contour (inset by half a road
/// width), then raster infill over the model cells and support cells, with
/// the raster direction alternating x/y between layers (FDM-style
/// cross-hatching).
///
/// # Examples
///
/// ```
/// use am_cad::parts::{intact_prism, PrismDims};
/// use am_mesh::{tessellate_shells, Resolution};
/// use am_slicer::{generate_toolpath, slice_shells, SlicerConfig, ToolMaterial};
///
/// let part = intact_prism(&PrismDims::default()).resolve()?;
/// let shells = tessellate_shells(&part, &Resolution::Fine.params());
/// let sliced = slice_shells(&shells, 0.1778);
/// let tp = generate_toolpath(&sliced, &SlicerConfig::default());
/// assert!(tp.total_length(ToolMaterial::Model) > 0.0);
/// assert_eq!(tp.total_length(ToolMaterial::Support), 0.0); // solid prism
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate_toolpath(sliced: &SlicedModel, config: &SlicerConfig) -> ToolPath {
    match try_generate_toolpath(sliced, config) {
        Ok(tp) => tp,
        Err(e) => panic!("{e}"),
    }
}

/// Largest supported raster-cell count across all layers: a
/// resource-exhaustion guard against corrupted road widths demanding an
/// absurd grid.
pub const MAX_RASTER_CELLS: u64 = 1 << 28;

/// A tool-path request rejected by [`try_generate_toolpath`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ToolpathError {
    /// The slicer configuration failed validation.
    Config(crate::ConfigError),
    /// Rasterizing the layers at this road width would demand an absurd
    /// number of cells.
    RasterTooLarge {
        /// Estimated total cell count.
        estimated_cells: u64,
        /// The supported maximum.
        max: u64,
    },
}

impl fmt::Display for ToolpathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolpathError::Config(e) => write!(f, "invalid slicer configuration: {e}"),
            ToolpathError::RasterTooLarge { estimated_cells, max } => write!(
                f,
                "rasterization needs ~{estimated_cells} cells, exceeding the supported {max}"
            ),
        }
    }
}

impl std::error::Error for ToolpathError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ToolpathError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::ConfigError> for ToolpathError {
    fn from(e: crate::ConfigError) -> Self {
        ToolpathError::Config(e)
    }
}

/// Generates the part program like [`generate_toolpath`], returning a typed
/// error instead of panicking on a bad configuration.
///
/// # Errors
///
/// [`ToolpathError::Config`] when [`SlicerConfig::validate`] rejects the
/// configuration; [`ToolpathError::RasterTooLarge`] when the layer extents
/// divided by the road width would exceed [`MAX_RASTER_CELLS`] raster cells.
pub fn try_generate_toolpath(
    sliced: &SlicedModel,
    config: &SlicerConfig,
) -> Result<ToolPath, ToolpathError> {
    config.validate()?;
    // Bound the raster before allocating: config validation caps the road
    // width's *scale*, but the model bounds come from possibly-corrupted
    // geometry.
    let span_x = (sliced.bounds.max.x - sliced.bounds.min.x).max(0.0);
    let span_y = (sliced.bounds.max.y - sliced.bounds.min.y).max(0.0);
    let per_layer = (span_x / config.road_width + 2.0).ceil() * (span_y / config.road_width + 2.0).ceil();
    let estimated = per_layer * sliced.layers.len() as f64;
    if !estimated.is_finite() || estimated > MAX_RASTER_CELLS as f64 {
        return Err(ToolpathError::RasterTooLarge {
            estimated_cells: estimated.min(u64::MAX as f64) as u64,
            max: MAX_RASTER_CELLS,
        });
    }

    let rasters = crate::rasterize(sliced, config.road_width, config.support);
    let mut roads = Vec::new();

    for (layer_idx, (layer, raster)) in sliced.layers.iter().zip(&rasters).enumerate() {
        // Perimeters from the contour loops (per body, like CatalystEX:
        // every closed contour gets its own wall). A cavity loop's wall is
        // deposited together with the *enclosing* material, so it inherits
        // the body of the smallest positive contour containing it — a bolt
        // hole's rim is not a separate body.
        for contour in &layer.loops {
            let body = if contour.polygon.signed_area() > 0.0 {
                Some(contour.body.min(u16::MAX as usize - 1) as u16)
            } else {
                let probe = contour.polygon.vertices()[0];
                layer
                    .loops
                    .iter()
                    .filter(|c| {
                        c.polygon.signed_area() > 0.0 && c.polygon.winding_number(probe) != 0
                    })
                    .min_by(|a, b| {
                        // Total order so a corrupted (NaN-area) contour can
                        // never panic the planner; NaNs sort as equal.
                        a.polygon
                            .area()
                            .partial_cmp(&b.polygon.area())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|c| c.body.min(u16::MAX as usize - 1) as u16)
            };
            push_perimeter(&mut roads, &contour.polygon, layer.z, config.road_width, body);
        }
        // Raster infill, alternating direction per layer. Sparse styles
        // skip rows; the bottom and top few layers stay solid (standard
        // slicer behaviour, and what keeps sparse parts visually identical
        // from outside).
        let along_x = layer_idx % 2 == 0;
        let solid_skin = layer_idx < 3 || layer_idx + 3 >= sliced.layers.len();
        let row_step = if solid_skin { 1 } else { config.infill.row_step() };
        push_infill(&mut roads, raster, along_x, row_step);
    }

    Ok(ToolPath { roads, layer_height: sliced.layer_height, road_width: config.road_width })
}

fn push_perimeter(
    roads: &mut Vec<Road>,
    poly: &Polygon2,
    z: f64,
    road_width: f64,
    body: Option<u16>,
) {
    // Inset the outline by half a road so the bead's outer edge lands on
    // the true surface. CW (cavity) loops inset outward into the material
    // automatically because offset() is winding-aware.
    let inset = poly.offset(-road_width / 2.0);
    for seg in inset.segments() {
        roads.push(Road {
            from: seg.start,
            to: seg.end,
            z,
            material: ToolMaterial::Model,
            kind: RoadKind::Perimeter,
            body,
        });
    }
}

fn push_infill(roads: &mut Vec<Road>, raster: &RasterLayer, along_x: bool, row_step: usize) {
    let (nx, ny) = raster.dims();
    // A run is a maximal sequence of cells with the same material AND the
    // same body: infill roads stop at body boundaries (cold joints).
    type RunKey = (CellMaterial, Option<u16>);
    let emit_run = |key: RunKey, from: Point2, to: Point2, z: f64, roads: &mut Vec<Road>| {
        let tool = match key.0 {
            CellMaterial::Model => ToolMaterial::Model,
            CellMaterial::Support => ToolMaterial::Support,
            CellMaterial::Empty => return,
        };
        roads.push(Road { from, to, z, material: tool, kind: RoadKind::Infill, body: key.1 });
    };

    // Walk the raw row-major storage directly: along-x rows are contiguous
    // slices, along-y columns stride by `nx`. Same run boundaries as the
    // old per-cell `at`/`body_at` walk, without a bounds assert per cell.
    let cells = raster.cells_raw();
    let bodies = raster.bodies_raw();
    let key_at = |idx: usize| -> RunKey {
        let b = bodies[idx];
        (cells[idx], (b != u16::MAX).then_some(b))
    };

    if along_x {
        for j in (0..ny).step_by(row_step.max(1)) {
            let row = j * nx;
            let mut run_start: Option<(RunKey, usize)> = None;
            for i in 0..=nx {
                let key: RunKey =
                    if i < nx { key_at(row + i) } else { (CellMaterial::Empty, None) };
                match run_start {
                    Some((k, s)) if k != key => {
                        let from = raster.cell_center(s, j);
                        let to = raster.cell_center(i - 1, j);
                        emit_run(k, from, to, raster.z(), roads);
                        run_start = (key.0 != CellMaterial::Empty).then_some((key, i));
                    }
                    None if key.0 != CellMaterial::Empty => run_start = Some((key, i)),
                    _ => {}
                }
            }
        }
    } else {
        for i in (0..nx).step_by(row_step.max(1)) {
            let mut run_start: Option<(RunKey, usize)> = None;
            for j in 0..=ny {
                let key: RunKey =
                    if j < ny { key_at(j * nx + i) } else { (CellMaterial::Empty, None) };
                match run_start {
                    Some((k, s)) if k != key => {
                        let from = raster.cell_center(i, s);
                        let to = raster.cell_center(i, j - 1);
                        emit_run(k, from, to, raster.z(), roads);
                        run_start = (key.0 != CellMaterial::Empty).then_some((key, j));
                    }
                    None if key.0 != CellMaterial::Empty => run_start = Some((key, j)),
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{prism_with_sphere, PrismDims};
    use am_cad::{BodyKind, MaterialRemoval};
    use am_mesh::{tessellate_shells, Resolution};
    use crate::slice_shells;

    fn prism_toolpath(kind: BodyKind, removal: MaterialRemoval) -> ToolPath {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, kind, removal).unwrap().resolve().unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let sliced = slice_shells(&shells, 0.1778);
        generate_toolpath(&sliced, &SlicerConfig::default())
    }

    #[test]
    fn embedded_sphere_generates_support_roads() {
        let tp = prism_toolpath(BodyKind::Solid, MaterialRemoval::Without);
        assert!(tp.total_length(ToolMaterial::Support) > 0.0);
        // Support volume should approximate the sphere volume.
        let sphere_vol = 4.0 / 3.0 * std::f64::consts::PI * 3.175f64.powi(3);
        let support_vol = tp.material_volume(ToolMaterial::Support);
        assert!(
            (support_vol - sphere_vol).abs() / sphere_vol < 0.5,
            "support {support_vol} vs sphere {sphere_vol}"
        );
    }

    #[test]
    fn removal_solid_prints_fully_solid() {
        let tp = prism_toolpath(BodyKind::Solid, MaterialRemoval::With);
        assert_eq!(tp.total_length(ToolMaterial::Support), 0.0);
        // Model volume ≈ full prism volume.
        let vol = tp.material_volume(ToolMaterial::Model);
        let prism = 25.4 * 12.7 * 12.7;
        assert!((vol - prism).abs() / prism < 0.35, "vol = {vol}");
    }

    #[test]
    fn surface_and_solid_differ_only_with_removal() {
        let surf_no = prism_toolpath(BodyKind::Surface, MaterialRemoval::Without);
        let solid_no = prism_toolpath(BodyKind::Solid, MaterialRemoval::Without);
        assert!(
            (surf_no.total_length(ToolMaterial::Support)
                - solid_no.total_length(ToolMaterial::Support))
            .abs()
                < 1e-6
        );
        let surf_with = prism_toolpath(BodyKind::Surface, MaterialRemoval::With);
        let solid_with = prism_toolpath(BodyKind::Solid, MaterialRemoval::With);
        assert!(surf_with.total_length(ToolMaterial::Support) > 0.0);
        assert_eq!(solid_with.total_length(ToolMaterial::Support), 0.0);
    }

    #[test]
    fn sparse_infill_cuts_material_but_keeps_perimeters() {
        use crate::InfillStyle;
        let dims = PrismDims::default();
        let part = intact_prism_resolved(&dims);
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let sliced = slice_shells(&shells, 0.1778);
        let solid = generate_toolpath(&sliced, &SlicerConfig::default());
        let sparse = generate_toolpath(
            &sliced,
            &SlicerConfig {
                infill: InfillStyle::Sparse { density: 0.25 },
                ..SlicerConfig::default()
            },
        );
        let vol = |tp: &ToolPath| tp.material_volume(ToolMaterial::Model);
        assert!(
            vol(&sparse) < 0.55 * vol(&solid),
            "sparse {} vs solid {}",
            vol(&sparse),
            vol(&solid)
        );
        let perims = |tp: &ToolPath| {
            tp.roads.iter().filter(|r| r.kind == RoadKind::Perimeter).count()
        };
        assert_eq!(perims(&solid), perims(&sparse));
    }

    fn intact_prism_resolved(dims: &PrismDims) -> am_cad::ResolvedPart {
        am_cad::parts::intact_prism(dims).resolve().unwrap()
    }

    #[test]
    fn print_time_scales_with_feed() {
        let tp = prism_toolpath(BodyKind::Solid, MaterialRemoval::With);
        let slow = tp.print_time_estimate(10.0);
        let fast = tp.print_time_estimate(100.0);
        assert!(slow > fast);
    }

    #[test]
    fn roads_cover_every_layer() {
        let tp = prism_toolpath(BodyKind::Solid, MaterialRemoval::With);
        // 71 mid-layer planes fit in 12.7 mm at 0.1778 mm spacing.
        assert_eq!(tp.layer_count(), 71);
    }

    #[test]
    #[should_panic(expected = "feed rate")]
    fn zero_feed_panics() {
        ToolPath::default().print_time_estimate(0.0);
    }

    #[test]
    fn try_generate_returns_typed_errors() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let sliced = slice_shells(&shells, 0.1778);
        // A misconfigured road width surfaces as a Config error.
        let bad = SlicerConfig { road_width: 0.0, ..SlicerConfig::default() };
        assert!(matches!(
            try_generate_toolpath(&sliced, &bad),
            Err(ToolpathError::Config(_))
        ));
        // Corrupted bounds trip the raster guard instead of exhausting
        // memory.
        let mut huge = sliced.clone();
        huge.bounds.max.x = 1e12;
        assert!(matches!(
            try_generate_toolpath(&huge, &SlicerConfig::default()),
            Err(ToolpathError::RasterTooLarge { .. })
        ));
        // The happy path agrees with the panicking wrapper.
        let ok = try_generate_toolpath(&sliced, &SlicerConfig::default()).unwrap();
        assert_eq!(ok, generate_toolpath(&sliced, &SlicerConfig::default()));
    }

    #[test]
    fn try_print_time_rejects_bad_feed() {
        let tp = prism_toolpath(BodyKind::Solid, MaterialRemoval::With);
        assert!(tp.try_print_time_estimate(30.0).is_some());
        assert!(tp.try_print_time_estimate(0.0).is_none());
        assert!(tp.try_print_time_estimate(f64::NAN).is_none());
    }
}
