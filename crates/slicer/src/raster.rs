//! Scanline rasterization and material classification of sliced layers.
//!
//! This is where the paper's Table 3 semantics are decided: each raster
//! cell's **signed winding number** over the layer's oriented contours
//! determines what the printer deposits there:
//!
//! * winding ≥ 1 → **model** material;
//! * winding ≤ 0 but enclosed by at least one positive loop → **support**
//!   material (FDM printers fill enclosed voids with soluble support);
//! * otherwise → **empty** (outside the part).
//!
//! Zero-width planted seams additionally show up as *internal void* cells:
//! empty cells sealed off from the outside.

use am_geom::{Aabb2, Point2, Polygon2};

use crate::{Layer, SlicedModel};

/// What occupies one raster cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellMaterial {
    /// Outside the part (air).
    #[default]
    Empty,
    /// Model (build) material.
    Model,
    /// Soluble support material.
    Support,
}

/// A rasterized layer: a uniform grid of [`CellMaterial`] plus, for model
/// cells, the **body** (source shell) that owns the cell.
///
/// Body ownership is what makes a planted split a *cold joint*: tool paths
/// never cross body boundaries, so the printer deposits the two halves as
/// separate road families even when they touch.
#[derive(Debug, Clone, PartialEq)]
pub struct RasterLayer {
    z: f64,
    origin: Point2,
    cell: f64,
    nx: usize,
    ny: usize,
    cells: Vec<CellMaterial>,
    /// Body tag per cell; `u16::MAX` = unassigned.
    bodies: Vec<u16>,
}

impl RasterLayer {
    /// Height of the layer.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Cell edge length (mm).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Grid dimensions `(columns, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Grid origin (minimum corner of cell (0, 0)).
    pub fn origin(&self) -> Point2 {
        self.origin
    }

    /// Material of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, i: usize, j: usize) -> CellMaterial {
        assert!(i < self.nx && j < self.ny, "cell ({i}, {j}) out of range");
        self.cells[j * self.nx + i]
    }

    /// Material at a world-coordinate point (cells are half-open), or
    /// `Empty` outside the grid.
    pub fn material_at(&self, p: Point2) -> CellMaterial {
        let i = ((p.x - self.origin.x) / self.cell).floor();
        let j = ((p.y - self.origin.y) / self.cell).floor();
        if i < 0.0 || j < 0.0 {
            return CellMaterial::Empty;
        }
        let (i, j) = (i as usize, j as usize);
        if i >= self.nx || j >= self.ny {
            return CellMaterial::Empty;
        }
        self.cells[j * self.nx + i]
    }

    /// World centre of cell `(i, j)`.
    pub fn cell_center(&self, i: usize, j: usize) -> Point2 {
        self.origin + Point2::new((i as f64 + 0.5) * self.cell, (j as f64 + 0.5) * self.cell)
    }

    /// Number of cells holding the given material.
    pub fn count(&self, material: CellMaterial) -> usize {
        self.cells.iter().filter(|&&c| c == material).count()
    }

    /// Body (source shell) owning cell `(i, j)`, or `None` for non-model
    /// cells. Model cells take the smallest positive contour containing
    /// them, so a re-embedded solid body owns its region rather than the
    /// enclosing base.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn body_at(&self, i: usize, j: usize) -> Option<u16> {
        assert!(i < self.nx && j < self.ny, "cell ({i}, {j}) out of range");
        let b = self.bodies[j * self.nx + i];
        (b != u16::MAX).then_some(b)
    }

    /// Body at a world-coordinate point, or `None` outside / non-model.
    pub fn body_at_point(&self, p: Point2) -> Option<u16> {
        let i = ((p.x - self.origin.x) / self.cell).floor();
        let j = ((p.y - self.origin.y) / self.cell).floor();
        if i < 0.0 || j < 0.0 {
            return None;
        }
        let (i, j) = (i as usize, j as usize);
        if i >= self.nx || j >= self.ny {
            return None;
        }
        self.body_at(i, j)
    }

    /// Number of 4-connected components of model material — ≥ 2 means the
    /// layer's cross-section is *disconnected* (the Fig. 7a discontinuity
    /// signature).
    pub fn model_components(&self) -> usize {
        let mut seen = vec![false; self.cells.len()];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..self.cells.len() {
            if seen[start] || self.cells[start] != CellMaterial::Model {
                continue;
            }
            components += 1;
            stack.push(start);
            seen[start] = true;
            while let Some(idx) = stack.pop() {
                let (i, j) = (idx % self.nx, idx / self.nx);
                let mut visit = |ii: usize, jj: usize| {
                    let nidx = jj * self.nx + ii;
                    if !seen[nidx] && self.cells[nidx] == CellMaterial::Model {
                        seen[nidx] = true;
                        stack.push(nidx);
                    }
                };
                if i > 0 {
                    visit(i - 1, j);
                }
                if i + 1 < self.nx {
                    visit(i + 1, j);
                }
                if j > 0 {
                    visit(i, j - 1);
                }
                if j + 1 < self.ny {
                    visit(i, j + 1);
                }
            }
        }
        components
    }

    /// Minimum horizontal gap (in mm) between two model runs in any row, or
    /// `None` if no row contains two separated model runs.
    ///
    /// A planted seam separates the cross-section by a near-zero gap, while
    /// legitimately disjoint geometry (e.g. the two grip ends of a dogbone
    /// sliced in x-z above the gauge band) sits tens of millimetres apart —
    /// this metric tells them apart.
    /// Only **empty** gaps count: support-filled spans are deliberate
    /// geometry (a through-hole the slicer chose to support), not a crack.
    pub fn min_model_gap(&self) -> Option<f64> {
        let mut best: Option<usize> = None;
        for (_, row) in self.rows() {
            let mut last_model_end: Option<usize> = None;
            let mut gap_is_empty = true;
            let mut i = 0;
            while i < self.nx {
                match row[i] {
                    CellMaterial::Model => {
                        let run_start = i;
                        while i < self.nx && row[i] == CellMaterial::Model {
                            i += 1;
                        }
                        if let Some(end) = last_model_end {
                            if gap_is_empty {
                                let gap = run_start - end;
                                best = Some(best.map_or(gap, |b| b.min(gap)));
                            }
                        }
                        last_model_end = Some(i);
                        gap_is_empty = true;
                    }
                    CellMaterial::Support => {
                        gap_is_empty = false;
                        i += 1;
                    }
                    CellMaterial::Empty => {
                        i += 1;
                    }
                }
            }
        }
        best.map(|cells| cells as f64 * self.cell)
    }

    /// Number of *internal void* cells: empty cells with no 4-connected path
    /// to the grid border through non-model cells. These are the
    /// tessellation-gap pockets a planted seam leaves inside the part.
    pub fn internal_void_cells(&self) -> usize {
        let mut outside = vec![false; self.cells.len()];
        let mut stack = Vec::new();
        // Seed the flood from every non-model border cell.
        for i in 0..self.nx {
            for j in [0, self.ny - 1] {
                let idx = j * self.nx + i;
                if self.cells[idx] != CellMaterial::Model && !outside[idx] {
                    outside[idx] = true;
                    stack.push(idx);
                }
            }
        }
        for j in 0..self.ny {
            for i in [0, self.nx - 1] {
                let idx = j * self.nx + i;
                if self.cells[idx] != CellMaterial::Model && !outside[idx] {
                    outside[idx] = true;
                    stack.push(idx);
                }
            }
        }
        while let Some(idx) = stack.pop() {
            let (i, j) = (idx % self.nx, idx / self.nx);
            let visit = |ii: usize, jj: usize, outside: &mut Vec<bool>, stack: &mut Vec<usize>| {
                let nidx = jj * self.nx + ii;
                if !outside[nidx] && self.cells[nidx] != CellMaterial::Model {
                    outside[nidx] = true;
                    stack.push(nidx);
                }
            };
            if i > 0 {
                visit(i - 1, j, &mut outside, &mut stack);
            }
            if i + 1 < self.nx {
                visit(i + 1, j, &mut outside, &mut stack);
            }
            if j > 0 {
                visit(i, j - 1, &mut outside, &mut stack);
            }
            if j + 1 < self.ny {
                visit(i, j + 1, &mut outside, &mut stack);
            }
        }
        self.cells
            .iter()
            .zip(&outside)
            .filter(|&(&c, &out)| c == CellMaterial::Empty && !out)
            .count()
    }

    /// Iterates rows as `(j, &cells)` slices — used by tool-path generation
    /// and the deposition simulator.
    pub fn rows(&self) -> impl Iterator<Item = (usize, &[CellMaterial])> {
        self.cells.chunks(self.nx).enumerate()
    }

    /// Raw cell storage, row-major — the tool-path planner walks whole row
    /// slices instead of per-cell indexed calls.
    pub(crate) fn cells_raw(&self) -> &[CellMaterial] {
        &self.cells
    }

    /// Raw body storage, row-major (`u16::MAX` = unassigned).
    pub(crate) fn bodies_raw(&self) -> &[u16] {
        &self.bodies
    }
}

/// One oriented, non-horizontal contour edge of the winding scan:
/// endpoints plus winding delta and positive-loop delta.
struct Edge {
    ya: f64,
    yb: f64,
    xa: f64,
    xb: f64,
    dw: i32,
    dpos: i32,
}

/// Extracts the non-horizontal edges of every contour, in contour-then-
/// vertex order — the order both rasterizer variants see crossings in.
fn collect_edges(layer: &Layer) -> Vec<Edge> {
    let mut edges: Vec<Edge> = Vec::new();
    for contour in &layer.loops {
        let poly = &contour.polygon;
        let positive = poly.signed_area() > 0.0;
        let verts = poly.vertices();
        let n = verts.len();
        for k in 0..n {
            let a = verts[k];
            let b = verts[(k + 1) % n];
            if a.y == b.y {
                continue;
            }
            let (dw, dpos) = if a.y < b.y {
                (1, i32::from(positive))
            } else {
                (-1, -i32::from(positive))
            };
            edges.push(Edge { ya: a.y, yb: b.y, xa: a.x, xb: b.x, dw, dpos });
        }
    }
    edges
}

/// Material classification of one winding state — the Table 3 rule both
/// rasterizer variants share.
#[inline]
fn classify(w: i32, w_pos: i32, support: bool) -> CellMaterial {
    if w >= 1 {
        CellMaterial::Model
    } else if support && w_pos >= 1 {
        CellMaterial::Support
    } else {
        CellMaterial::Empty
    }
}

/// Rasterizes one layer over `bounds` with the given cell size, via the
/// span-plan scanline pipeline (DESIGN.md §13): a **plan** phase buckets
/// every edge's row crossings into per-row lists (visiting edges in edge
/// order, so each row sees its crossings in the same order the scan
/// variant's per-row filter produces them — the stable sort then yields
/// the identical sequence), and an **execute** phase converts each row's
/// sorted crossings into whole-span `slice::fill`s of the winding-constant
/// intervals between them. [`rasterize_layer_scan`] is the retained
/// oracle; the two are bit-identical.
///
/// When `support` is `false`, enclosed-void cells classify as `Empty`
/// instead of `Support`.
///
/// # Panics
///
/// Panics if `cell` is not positive and finite or `bounds` is empty.
pub fn rasterize_layer(layer: &Layer, bounds: Aabb2, cell: f64, support: bool) -> RasterLayer {
    assert!(cell.is_finite() && cell > 0.0, "cell size must be positive, got {cell}");
    let size = bounds.size();
    assert!(size.x > 0.0 && size.y > 0.0, "raster bounds must be non-empty");
    let nx = (size.x / cell).ceil().max(1.0) as usize;
    let ny = (size.y / cell).ceil().max(1.0) as usize;
    let mut cells = vec![CellMaterial::Empty; nx * ny];

    let edges = collect_edges(layer);

    // Plan: bucket crossings by row. The candidate row window comes from a
    // floating-point quotient, so it is padded by one row on each side and
    // every candidate row re-tests the reference membership rule
    // `y >= lo && y < hi` — the buckets therefore hold exactly the
    // crossings the scan variant's per-row filter finds, in the same edge
    // order, at O(edges + crossings) instead of O(rows × edges).
    let mut row_crossings: Vec<Vec<(f64, i32, i32)>> = vec![Vec::new(); ny];
    for e in &edges {
        let (lo, hi) = if e.ya < e.yb { (e.ya, e.yb) } else { (e.yb, e.ya) };
        let j_min = (((lo - bounds.min.y) / cell - 0.5).floor().max(0.0) as usize).saturating_sub(1);
        let j_max = (((hi - bounds.min.y) / cell + 0.5).ceil().max(0.0) as usize + 1).min(ny);
        for (j, bucket) in row_crossings.iter_mut().enumerate().take(j_max).skip(j_min) {
            let y = bounds.min.y + (j as f64 + 0.5) * cell;
            if y >= lo && y < hi {
                let t = (y - e.ya) / (e.yb - e.ya);
                bucket.push((e.xa + t * (e.xb - e.xa), e.dw, e.dpos));
            }
        }
    }

    // Execute: each row's sorted crossings split it into winding-constant
    // spans, filled whole. A crossing's first owned cell is the first cell
    // centre at or right of it — the float quotient seeds the boundary and
    // two reference-comparison nudges make it exact, so every cell lands
    // on the same side of every crossing as in the scan variant's
    // `crossings[next].0 <= x` walk.
    for (j, crossings) in row_crossings.iter_mut().enumerate() {
        let row = &mut cells[j * nx..(j + 1) * nx];
        crossings.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite crossing x"));
        let mut w = 0i32;
        let mut w_pos = 0i32;
        let mut i = 0usize;
        let center = |i: usize| bounds.min.x + (i as f64 + 0.5) * cell;
        for &(cx, dw, dpos) in crossings.iter() {
            let mut b = ((cx - bounds.min.x) / cell - 0.5).ceil().max(0.0) as usize;
            while b > 0 && cx <= center(b - 1) {
                b -= 1;
            }
            while b < nx && cx > center(b) {
                b += 1;
            }
            if b > i {
                row[i..b].fill(classify(w, w_pos, support));
                i = b;
            }
            w -= dw;
            w_pos -= dpos;
        }
        row[i..nx].fill(classify(w, w_pos, support));
    }

    let bodies = attribute_bodies(&cells, layer, bounds, cell, nx, ny);
    RasterLayer { z: layer.z, origin: bounds.min, cell, nx, ny, cells, bodies }
}

/// Rasterizes one layer like [`rasterize_layer`], with the original
/// row-at-a-time scan: every row filters the full edge list, then
/// classifies cell by cell. Retained as the span-plan pipeline's oracle —
/// `raster_span_plan_matches_scan` pins the two bit-identical.
pub fn rasterize_layer_scan(layer: &Layer, bounds: Aabb2, cell: f64, support: bool) -> RasterLayer {
    assert!(cell.is_finite() && cell > 0.0, "cell size must be positive, got {cell}");
    let size = bounds.size();
    assert!(size.x > 0.0 && size.y > 0.0, "raster bounds must be non-empty");
    let nx = (size.x / cell).ceil().max(1.0) as usize;
    let ny = (size.y / cell).ceil().max(1.0) as usize;
    let mut cells = vec![CellMaterial::Empty; nx * ny];

    let edges = collect_edges(layer);

    for j in 0..ny {
        let y = bounds.min.y + (j as f64 + 0.5) * cell;
        // Crossings: (x, dw, dpos), half-open rule [min(y), max(y)).
        let mut crossings: Vec<(f64, i32, i32)> = edges
            .iter()
            .filter_map(|e| {
                let (lo, hi) = if e.ya < e.yb { (e.ya, e.yb) } else { (e.yb, e.ya) };
                if y >= lo && y < hi {
                    let t = (y - e.ya) / (e.yb - e.ya);
                    Some((e.xa + t * (e.xb - e.xa), e.dw, e.dpos))
                } else {
                    None
                }
            })
            .collect();
        crossings.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite crossing x"));

        // The winding number at a point equals the signed count of edge
        // crossings on a +x ray, i.e. crossings to the *right* of the
        // point: start at 0 far left (closed loops sum to zero) and
        // subtract each crossing's direction as the scan passes it.
        let mut w = 0i32;
        let mut w_pos = 0i32;
        let mut next = 0usize;
        for i in 0..nx {
            let x = bounds.min.x + (i as f64 + 0.5) * cell;
            while next < crossings.len() && crossings[next].0 <= x {
                w -= crossings[next].1;
                w_pos -= crossings[next].2;
                next += 1;
            }
            cells[j * nx + i] = classify(w, w_pos, support);
        }
    }

    let bodies = attribute_bodies(&cells, layer, bounds, cell, nx, ny);
    RasterLayer { z: layer.z, origin: bounds.min, cell, nx, ny, cells, bodies }
}

/// Body attribution shared by both rasterizer variants: fill model cells
/// from positive contours, smallest area first (so inner bodies win over
/// enclosing ones), then flood unowned model cells from their nearest
/// assigned neighbour.
fn attribute_bodies(
    cells: &[CellMaterial],
    layer: &Layer,
    bounds: Aabb2,
    cell: f64,
    nx: usize,
    ny: usize,
) -> Vec<u16> {
    let mut bodies = vec![u16::MAX; nx * ny];
    let mut positive: Vec<&crate::Contour> =
        layer.loops.iter().filter(|c| c.polygon.signed_area() > 0.0).collect();
    positive.sort_by(|a, b| {
        a.polygon
            .area()
            .partial_cmp(&b.polygon.area())
            .expect("finite contour areas")
    });
    for contour in positive {
        let poly = &contour.polygon;
        let bb = poly.aabb();
        let j_lo = (((bb.min.y - bounds.min.y) / cell).floor().max(0.0)) as usize;
        let j_hi = ((((bb.max.y - bounds.min.y) / cell).ceil()) as usize).min(ny);
        for j in j_lo..j_hi {
            let y = bounds.min.y + (j as f64 + 0.5) * cell;
            // Even-odd crossings for this single polygon.
            let verts = poly.vertices();
            let n = verts.len();
            let mut xs: Vec<f64> = Vec::new();
            for k in 0..n {
                let a = verts[k];
                let b = verts[(k + 1) % n];
                if a.y == b.y {
                    continue;
                }
                let (lo, hi) = if a.y < b.y { (a.y, b.y) } else { (b.y, a.y) };
                if y >= lo && y < hi {
                    xs.push(a.x + (y - a.y) / (b.y - a.y) * (b.x - a.x));
                }
            }
            xs.sort_by(|p, q| p.partial_cmp(q).expect("finite crossing x"));
            for pair in xs.chunks(2) {
                let [x0, x1] = pair else { continue };
                let i_lo = (((x0 - bounds.min.x) / cell - 0.5).ceil().max(0.0)) as usize;
                let i_hi = ((((x1 - bounds.min.x) / cell - 0.5).floor()) as i64).min(nx as i64 - 1);
                for i in i_lo as i64..=i_hi {
                    let idx = j * nx + i as usize;
                    if cells[idx] == CellMaterial::Model && bodies[idx] == u16::MAX {
                        bodies[idx] = contour.body.min(u16::MAX as usize - 1) as u16;
                    }
                }
            }
        }
    }

    // Propagation pass: model cells the polygon fill missed (boundary
    // cells whose centre fell on an edge) inherit the body of their nearest
    // assigned neighbour, so every model cell ends up owned — otherwise
    // unowned cells would read as body-less welds across a planted seam.
    let mut frontier: std::collections::VecDeque<usize> = (0..cells.len())
        .filter(|&i| cells[i] == CellMaterial::Model && bodies[i] != u16::MAX)
        .collect();
    while let Some(idx) = frontier.pop_front() {
        let (i, j) = (idx % nx, idx / nx);
        let b = bodies[idx];
        let mut visit = |ii: usize, jj: usize, frontier: &mut std::collections::VecDeque<usize>| {
            let nidx = jj * nx + ii;
            if cells[nidx] == CellMaterial::Model && bodies[nidx] == u16::MAX {
                bodies[nidx] = b;
                frontier.push_back(nidx);
            }
        };
        if i > 0 {
            visit(i - 1, j, &mut frontier);
        }
        if i + 1 < nx {
            visit(i + 1, j, &mut frontier);
        }
        if j > 0 {
            visit(i, j - 1, &mut frontier);
        }
        if j + 1 < ny {
            visit(i, j + 1, &mut frontier);
        }
    }

    bodies
}

/// Rasterizes every layer of a sliced model over its common xy bounds
/// (inflated by one cell so borders stay empty).
pub fn rasterize(sliced: &SlicedModel, cell: f64, support: bool) -> Vec<RasterLayer> {
    let bounds2 = Aabb2::new(
        Point2::new(sliced.bounds.min.x, sliced.bounds.min.y),
        Point2::new(sliced.bounds.max.x, sliced.bounds.max.y),
    )
    .inflated(cell * 1.5);
    sliced
        .layers
        .iter()
        .map(|layer| rasterize_layer(layer, bounds2, cell, support))
        .collect()
}

/// Convenience: the fraction of model cells in a polygon-area sense, used by
/// density/weight inspection.
pub fn model_area(raster: &RasterLayer) -> f64 {
    raster.count(CellMaterial::Model) as f64 * raster.cell_size() * raster.cell_size()
}

/// Helper for tests and experiments: rasterize a single polygon as a layer.
pub fn rasterize_polygon(poly: &Polygon2, cell: f64) -> RasterLayer {
    let layer = Layer {
        z: 0.0,
        loops: vec![crate::Contour { polygon: poly.clone(), body: 0 }],
        open_paths: Vec::new(),
    };
    rasterize_layer(&layer, poly.aabb().inflated(cell * 1.5), cell, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{prism_with_sphere, PrismDims};
    use am_cad::{BodyKind, MaterialRemoval};
    use am_mesh::{tessellate_shells, Resolution};
    use crate::slice_shells;

    fn mid_raster(kind: BodyKind, removal: MaterialRemoval) -> RasterLayer {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, kind, removal).unwrap().resolve().unwrap();
        let shells = tessellate_shells(&part, &Resolution::Fine.params());
        let sliced = slice_shells(&shells, 0.1778);
        let rasters = rasterize(&sliced, 0.1, true);
        let mid = rasters.len() / 2;
        rasters[mid].clone()
    }

    #[test]
    fn raster_span_plan_matches_scan() {
        let dims = PrismDims::default();
        for (kind, removal) in [
            (BodyKind::Solid, MaterialRemoval::With),
            (BodyKind::Surface, MaterialRemoval::Without),
        ] {
            let part = prism_with_sphere(&dims, kind, removal).unwrap().resolve().unwrap();
            let shells = tessellate_shells(&part, &Resolution::Fine.params());
            let sliced = slice_shells(&shells, 0.1778);
            let bounds2 = Aabb2::new(
                Point2::new(sliced.bounds.min.x, sliced.bounds.min.y),
                Point2::new(sliced.bounds.max.x, sliced.bounds.max.y),
            )
            .inflated(0.1 * 1.5);
            for support in [true, false] {
                for layer in &sliced.layers {
                    let planned = rasterize_layer(layer, bounds2, 0.1, support);
                    let scanned = rasterize_layer_scan(layer, bounds2, 0.1, support);
                    assert_eq!(planned, scanned, "z = {}", layer.z);
                }
            }
        }
    }

    #[test]
    fn square_rasterizes_to_expected_area() {
        let poly = Polygon2::rectangle(Point2::ZERO, Point2::new(10.0, 5.0));
        let raster = rasterize_polygon(&poly, 0.1);
        let area = model_area(&raster);
        assert!((area - 50.0).abs() < 1.0, "area = {area}");
        assert_eq!(raster.model_components(), 1);
        assert_eq!(raster.internal_void_cells(), 0);
    }

    #[test]
    fn table3_no_removal_center_is_support() {
        for kind in [BodyKind::Solid, BodyKind::Surface] {
            let raster = mid_raster(kind, MaterialRemoval::Without);
            let center = Point2::new(25.4 / 2.0, 12.7 / 2.0);
            assert_eq!(raster.material_at(center), CellMaterial::Support, "{kind:?}");
        }
    }

    #[test]
    fn table3_removal_solid_center_is_model() {
        let raster = mid_raster(BodyKind::Solid, MaterialRemoval::With);
        let center = Point2::new(25.4 / 2.0, 12.7 / 2.0);
        assert_eq!(raster.material_at(center), CellMaterial::Model);
    }

    #[test]
    fn table3_removal_surface_center_is_support() {
        let raster = mid_raster(BodyKind::Surface, MaterialRemoval::With);
        let center = Point2::new(25.4 / 2.0, 12.7 / 2.0);
        assert_eq!(raster.material_at(center), CellMaterial::Support);
    }

    #[test]
    fn support_disabled_leaves_cavity_empty() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let shells = tessellate_shells(&part, &Resolution::Fine.params());
        let sliced = slice_shells(&shells, 0.1778);
        let rasters = rasterize(&sliced, 0.1, false);
        let mid = &rasters[rasters.len() / 2];
        let center = Point2::new(25.4 / 2.0, 12.7 / 2.0);
        assert_eq!(mid.material_at(center), CellMaterial::Empty);
        // And those empty cells are sealed inside the part.
        assert!(mid.internal_void_cells() > 0);
    }

    #[test]
    fn outside_the_grid_is_empty() {
        let poly = Polygon2::rectangle(Point2::ZERO, Point2::new(1.0, 1.0));
        let raster = rasterize_polygon(&poly, 0.1);
        assert_eq!(raster.material_at(Point2::new(100.0, 100.0)), CellMaterial::Empty);
        assert_eq!(raster.material_at(Point2::new(-100.0, 0.5)), CellMaterial::Empty);
    }

    #[test]
    fn disconnected_regions_counted() {
        let layer = Layer {
            z: 0.0,
            loops: vec![
                crate::Contour {
                    polygon: Polygon2::rectangle(Point2::ZERO, Point2::new(1.0, 1.0)),
                    body: 0,
                },
                crate::Contour {
                    polygon: Polygon2::rectangle(Point2::new(3.0, 0.0), Point2::new(4.0, 1.0)),
                    body: 1,
                },
            ],
            open_paths: Vec::new(),
        };
        let raster = rasterize_layer(
            &layer,
            Aabb2::new(Point2::new(-0.5, -0.5), Point2::new(4.5, 1.5)),
            0.1,
            true,
        );
        assert_eq!(raster.model_components(), 2);
    }
}
