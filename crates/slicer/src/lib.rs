//! Slicing, material classification, tool-path and G-code generation —
//! the CatalystEX stand-in of the ObfusCADe reproduction.
//!
//! Pipeline (mirroring Fig. 1/3 of the paper):
//!
//! 1. [`orient_shells`] places the tessellated bodies in a build
//!    [`Orientation`] (x-y or x-z, Fig. 6).
//! 2. [`slice_shells`] cuts the meshes into per-layer oriented contours.
//! 3. [`rasterize`] classifies each cell as model / support / empty by
//!    signed winding — the facet-normal semantics behind the paper's
//!    Table 3.
//! 4. [`generate_toolpath`] plans perimeter + raster roads;
//!    [`to_gcode`]/[`parse_gcode`] serialize the part program.
//! 5. [`diagnose_slices`] quantifies the Fig. 7a discontinuity observable.
//!
//! # Examples
//!
//! ```
//! use am_cad::parts::{intact_prism, PrismDims};
//! use am_mesh::{tessellate_shells, Resolution};
//! use am_slicer::{
//!     generate_toolpath, orient_shells, parse_gcode, slice_shells, to_gcode, Orientation,
//!     SlicerConfig, ToolMaterial,
//! };
//!
//! let part = intact_prism(&PrismDims::default()).resolve()?;
//! let shells = tessellate_shells(&part, &Resolution::Fine.params());
//! let oriented = orient_shells(&shells, Orientation::Xy);
//! let sliced = slice_shells(&oriented, 0.1778);
//! let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
//! let gcode = to_gcode(&toolpath);
//! let back = parse_gcode(&gcode)?;
//! assert_eq!(back.roads.len(), toolpath.roads.len());
//! assert!(toolpath.total_length(ToolMaterial::Model) > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod diagnostics;
mod gcode;
mod orientation;
mod preview;
mod raster;
mod slice;
mod toolpath;

pub use config::{ConfigError, InfillStyle, SlicerConfig};
pub use diagnostics::{diagnose_slices, SeamExposure, SliceReport};
pub use gcode::{parse_gcode, to_gcode, GcodeError};
pub use orientation::{build_transform, orient_mesh, orient_shells, Orientation};
pub use preview::{render_layer_ascii, render_layer_with_seam};
pub use raster::{
    model_area, rasterize, rasterize_layer, rasterize_layer_scan, rasterize_polygon, CellMaterial,
    RasterLayer,
};
pub use slice::{
    slice_mesh, slice_shells, slice_shells_scan, try_slice_shells, try_slice_shells_with, Contour,
    Layer, SliceError, SlicedModel,
};
pub use toolpath::{
    generate_toolpath, try_generate_toolpath, Road, RoadKind, ToolMaterial, ToolPath,
    ToolpathError,
};
