//! Plane slicing: meshes → per-layer oriented contours.
//!
//! Two kernels produce identical output (see `sweep_matches_scan_*` tests):
//!
//! * the **interval sweep** (default) buckets every triangle into the layer
//!   range its z-span covers, so each slicing plane only visits candidate
//!   triangles — O(tris + output) per layer stack instead of
//!   O(layers × tris) — and layers slice independently on an
//!   [`am_par::Pool`];
//! * the **per-layer scan** ([`slice_shells_scan`]) walks the full mesh for
//!   every plane. It is kept as the reference baseline for benchmarks and
//!   the bucketing regression test.

use std::collections::HashMap;

use am_geom::{Aabb3, Point2, Polygon2, Polyline2, Tolerance, Vec2};
use am_mesh::TriMesh;
use am_par::{Parallelism, Pool};

/// One closed contour of a layer, tagged with the shell (body) that
/// produced it. The tag is what lets diagnostics tell a planted split seam
/// (contours of *different* bodies touching) from ordinary geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Contour {
    /// The loop geometry, orientation-preserving (CCW = material boundary,
    /// CW = cavity boundary — the STL facet-normal semantics of Table 3).
    pub polygon: Polygon2,
    /// Index of the source shell in the sliced shell list.
    pub body: usize,
}

/// One build layer: oriented closed contours plus any chains that failed to
/// close (open paths indicate surface holes in the input mesh).
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Height of the slicing plane (mid-layer).
    pub z: f64,
    /// Closed contour loops.
    pub loops: Vec<Contour>,
    /// Chains that did not close (mesh defects).
    pub open_paths: Vec<Polyline2>,
}

impl Layer {
    /// Net cross-section area: CCW loops add, CW loops subtract.
    pub fn net_area(&self) -> f64 {
        self.loops.iter().map(|c| c.polygon.signed_area()).sum()
    }

    /// Signed winding number of the layer's loops around a point.
    pub fn winding(&self, p: Point2) -> i32 {
        self.loops.iter().map(|c| c.polygon.winding_number(p)).sum()
    }

    /// Iterates the loop polygons (untagged view).
    pub fn polygons(&self) -> impl Iterator<Item = &Polygon2> {
        self.loops.iter().map(|c| &c.polygon)
    }
}

/// A sliced model: the layer stack.
#[derive(Debug, Clone, PartialEq)]
pub struct SlicedModel {
    /// Layers from bottom to top.
    pub layers: Vec<Layer>,
    /// Layer height used.
    pub layer_height: f64,
    /// Bounds of the sliced geometry.
    pub bounds: Aabb3,
}

impl SlicedModel {
    /// Total number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Sliced volume estimate: Σ net layer area × layer height.
    pub fn volume_estimate(&self) -> f64 {
        self.layers.iter().map(Layer::net_area).sum::<f64>() * self.layer_height
    }
}

/// Slices a single mesh. See [`slice_shells`] for multi-body models.
///
/// # Panics
///
/// Panics if `layer_height` is not positive and finite.
pub fn slice_mesh(mesh: &TriMesh, layer_height: f64) -> SlicedModel {
    slice_shells(std::slice::from_ref(mesh), layer_height)
}

/// Slices a multi-shell model: each shell's facets are assembled into
/// contours independently (shells never share edges, exactly like the
/// independent bodies in a multi-body STL), then collected per layer.
///
/// Slicing planes sit at mid-layer heights: `z = z_min + (i + ½)·h`.
///
/// # Panics
///
/// Panics if `layer_height` is not positive and finite.
///
/// # Examples
///
/// ```
/// use am_cad::parts::{intact_prism, PrismDims};
/// use am_mesh::{tessellate_shells, Resolution};
/// use am_slicer::slice_shells;
///
/// let part = intact_prism(&PrismDims::default()).resolve()?;
/// let shells = tessellate_shells(&part, &Resolution::Fine.params());
/// let sliced = slice_shells(&shells, 0.1778);
/// assert_eq!(sliced.layer_count(), 71); // floor(12.7 / 0.1778 + 0.5) mid-layer planes
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn slice_shells(shells: &[TriMesh], layer_height: f64) -> SlicedModel {
    match try_slice_shells(shells, layer_height) {
        Ok(sliced) => sliced,
        Err(e) => panic!("{e}"),
    }
}

/// Largest supported layer count: far beyond any real build (an Objet30 at
/// 16 µm layers needs < 10 000 for its full 148 mm height), but small
/// enough to stop a corrupted layer height from looping unbounded.
pub const MAX_LAYERS: u64 = 1 << 20;

/// A slicing request rejected by [`try_slice_shells`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SliceError {
    /// Layer height is zero, negative, or non-finite (the Table 1 slicer
    /// misconfiguration attack).
    BadLayerHeight {
        /// The rejected value.
        value: f64,
    },
    /// The requested layer height would produce an absurd layer count
    /// (resource-exhaustion guard).
    TooManyLayers {
        /// Estimated layer count.
        estimated: u64,
        /// The supported maximum.
        max: u64,
    },
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::BadLayerHeight { value } => {
                write!(f, "layer height must be positive, got {value}")
            }
            SliceError::TooManyLayers { estimated, max } => {
                write!(f, "layer height yields ~{estimated} layers, exceeding the supported {max}")
            }
        }
    }
}

impl std::error::Error for SliceError {}

/// Slices a multi-shell model like [`slice_shells`], returning a typed
/// error instead of panicking on a bad layer height.
///
/// # Errors
///
/// [`SliceError::BadLayerHeight`] for a non-positive or non-finite layer
/// height; [`SliceError::TooManyLayers`] when the height is so small the
/// layer stack would exceed [`MAX_LAYERS`].
pub fn try_slice_shells(shells: &[TriMesh], layer_height: f64) -> Result<SlicedModel, SliceError> {
    try_slice_shells_with(shells, layer_height, Parallelism::serial())
}

/// [`try_slice_shells`] with an explicit thread budget.
///
/// Output is bit-identical for every `parallelism` value: layers are
/// independent work items, candidate triangles are visited in ascending
/// index order within each layer (matching the full-mesh scan), and results
/// are collected in layer order.
///
/// # Errors
///
/// Same as [`try_slice_shells`].
pub fn try_slice_shells_with(
    shells: &[TriMesh],
    layer_height: f64,
    parallelism: Parallelism,
) -> Result<SlicedModel, SliceError> {
    let (bounds, zs) = layer_planes(shells, layer_height)?;

    // Bucket each shell's triangles by the layer-index range their z-span
    // covers (CSR layout). Ranges get ±1 layer of slack so accumulated
    // floating-point error in the plane heights can never drop a candidate;
    // `intersect_z_plane` rejects the extras exactly as the full scan would.
    let buckets: Vec<LayerBuckets> =
        shells.iter().map(|s| LayerBuckets::build(s, &zs, layer_height)).collect();

    let pool = Pool::new(parallelism);
    let layers = pool.par_map(&zs, |&z_entry| {
        let (li, z) = z_entry;
        let mut layer = Layer { z, loops: Vec::new(), open_paths: Vec::new() };
        for (body, shell) in shells.iter().enumerate() {
            let segs = collect_segments_indexed(shell, buckets[body].layer(li), z);
            assemble(segs, body, &mut layer);
        }
        layer
    });
    Ok(SlicedModel { layers, layer_height, bounds })
}

/// Slices with the legacy per-layer full-mesh scan: every plane visits every
/// triangle. O(layers × tris); kept as the benchmark baseline and the
/// reference the interval sweep is pinned against in tests.
///
/// # Errors
///
/// Same as [`try_slice_shells`].
pub fn slice_shells_scan(shells: &[TriMesh], layer_height: f64) -> Result<SlicedModel, SliceError> {
    let (bounds, zs) = layer_planes(shells, layer_height)?;
    let mut layers = Vec::new();
    for &(_, z) in &zs {
        let mut layer = Layer { z, loops: Vec::new(), open_paths: Vec::new() };
        for (body, shell) in shells.iter().enumerate() {
            let segs = collect_segments(shell, z);
            assemble(segs, body, &mut layer);
        }
        layers.push(layer);
    }
    Ok(SlicedModel { layers, layer_height, bounds })
}

/// Validates the layer height and enumerates the mid-layer plane heights.
///
/// The planes are produced by the same running accumulation
/// (`z += layer_height`) both kernels have always used — regenerating them
/// as `min + (i + ½)·h` would shift each plane by a few ulps and change
/// knife-edge intersections.
fn layer_planes(
    shells: &[TriMesh],
    layer_height: f64,
) -> Result<(Aabb3, Vec<(usize, f64)>), SliceError> {
    if !(layer_height.is_finite() && layer_height > 0.0) {
        return Err(SliceError::BadLayerHeight { value: layer_height });
    }
    let bounds = shells
        .iter()
        .filter_map(TriMesh::aabb)
        .reduce(|a, b| a.union(&b))
        .unwrap_or(Aabb3::new(am_geom::Point3::ZERO, am_geom::Point3::ZERO));
    let span = bounds.max.z - bounds.min.z;
    if span.is_finite() && span > 0.0 {
        let estimated = (span / layer_height).ceil();
        if !estimated.is_finite() || estimated > MAX_LAYERS as f64 {
            return Err(SliceError::TooManyLayers {
                estimated: estimated.min(u64::MAX as f64) as u64,
                max: MAX_LAYERS,
            });
        }
    }
    let mut zs = Vec::new();
    let mut z = bounds.min.z + layer_height * 0.5;
    while z < bounds.max.z {
        zs.push((zs.len(), z));
        z += layer_height;
    }
    Ok((bounds, zs))
}

/// Per-layer candidate triangle lists for one shell, in CSR layout.
///
/// `layer(i)` returns the indices of every triangle whose z-span could touch
/// plane `i`, in ascending triangle order — the same visit order as a full
/// scan, which is what keeps the sweep's segment lists (and therefore the
/// assembled contours) bit-identical to [`slice_shells_scan`].
struct LayerBuckets {
    offsets: Vec<usize>,
    tris: Vec<u32>,
}

impl LayerBuckets {
    fn build(mesh: &TriMesh, zs: &[(usize, f64)], layer_height: f64) -> Self {
        let n_layers = zs.len();
        if n_layers == 0 {
            return LayerBuckets { offsets: vec![0], tris: Vec::new() };
        }
        let z0 = zs[0].1;
        // `layer_range` clamps to [0, n_layers - 1] and yields the empty
        // sentinel (1, 0) for spans outside the stack, so `lo..=hi` below is
        // always in bounds (and empty for the sentinel).
        let spans: Vec<(usize, usize)> = mesh
            .triangles()
            .map(|tri| {
                let [a, b, c] = tri.vertices;
                let lo = a.z.min(b.z).min(c.z);
                let hi = a.z.max(b.z).max(c.z);
                layer_range(lo, hi, z0, layer_height, n_layers)
            })
            .collect();

        // Count per layer into offsets[li + 1], then prefix-sum into CSR.
        let mut offsets = vec![0usize; n_layers + 1];
        for &(lo, hi) in &spans {
            for li in lo..=hi {
                offsets[li + 1] += 1;
            }
        }
        for i in 0..n_layers {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut tris = vec![0u32; offsets[n_layers]];
        for (t, &(lo, hi)) in spans.iter().enumerate() {
            for li in lo..=hi {
                tris[cursor[li]] = t as u32;
                cursor[li] += 1;
            }
        }
        LayerBuckets { offsets, tris }
    }

    fn layer(&self, li: usize) -> &[u32] {
        if li + 1 >= self.offsets.len() {
            return &[];
        }
        &self.tris[self.offsets[li]..self.offsets[li + 1]]
    }
}

/// Maps a triangle's z-span to the (clamped, ±1-slack) layer-index range of
/// planes it may intersect. Returns an empty range as `(1, 0)` when the span
/// lies wholly outside the stack.
fn layer_range(lo: f64, hi: f64, z0: f64, h: f64, n_layers: usize) -> (usize, usize) {
    if n_layers == 0 || !lo.is_finite() || !hi.is_finite() {
        return (1, 0);
    }
    let first = ((lo - z0) / h).floor() - 1.0;
    let last = ((hi - z0) / h).ceil() + 1.0;
    if last < 0.0 || first >= n_layers as f64 {
        return (1, 0);
    }
    let first = first.max(0.0) as usize;
    let last = (last.min((n_layers - 1) as f64)).max(0.0) as usize;
    (first, last)
}

/// Collects oriented intersection segments of a mesh with the plane `z`.
///
/// Each segment is directed so that material lies to its **left**: the
/// direction is the facet normal's xy-projection rotated 90° CCW. Outward
/// shells therefore assemble into CCW loops, inward shells into CW loops.
fn collect_segments(mesh: &TriMesh, z: f64) -> Vec<(Point2, Point2)> {
    let mut segs = Vec::new();
    for tri in mesh.triangles() {
        push_oriented_segment(&tri, z, &mut segs);
    }
    segs
}

/// [`collect_segments`] restricted to a candidate triangle list (ascending
/// index order, so the segment order matches the full scan).
fn collect_segments_indexed(mesh: &TriMesh, candidates: &[u32], z: f64) -> Vec<(Point2, Point2)> {
    let mut segs = Vec::new();
    for &t in candidates {
        push_oriented_segment(&mesh.triangle(t as usize), z, &mut segs);
    }
    segs
}

fn push_oriented_segment(tri: &am_geom::Triangle3, z: f64, segs: &mut Vec<(Point2, Point2)>) {
    let Some((p, q)) = tri.intersect_z_plane(z) else { return };
    let Some(n) = tri.normal() else { return };
    let tangent = Vec2::new(-n.y, n.x);
    let (a, b) = (p.to_2d(), q.to_2d());
    if (b - a).dot(tangent) >= 0.0 {
        segs.push((a, b));
    } else {
        segs.push((b, a));
    }
}

/// Chains directed segments into closed loops (and leftover open paths).
///
/// Endpoints are indexed in a quantized hash map; each bucket keeps a
/// monotone cursor over its candidate list (candidates are only ever
/// consumed, never released), so the whole assembly is O(n) — the old
/// per-lookup `find(|i| !used[i])` rescanned consumed candidates and went
/// quadratic on layers where many segments share a quantized endpoint.
fn assemble(segs: Vec<(Point2, Point2)>, body: usize, layer: &mut Layer) {
    const QUANTUM: f64 = 1e-6;
    let key = |p: Point2| -> (i64, i64) {
        ((p.x / QUANTUM).round() as i64, (p.y / QUANTUM).round() as i64)
    };

    // Value = (cursor, candidate segment indices in insertion order). The
    // cursor never passes an unused candidate, so "first unused in
    // insertion order" semantics are preserved exactly.
    let mut by_start: HashMap<(i64, i64), (usize, Vec<usize>)> = HashMap::new();
    for (i, s) in segs.iter().enumerate() {
        by_start.entry(key(s.0)).or_default().1.push(i);
    }
    let mut used = vec![false; segs.len()];

    for start in 0..segs.len() {
        if used[start] {
            continue;
        }
        used[start] = true;
        let mut chain: Vec<Point2> = vec![segs[start].0, segs[start].1];
        let start_key = key(segs[start].0);
        let mut closed = false;
        loop {
            let tail_key = key(*chain.last().expect("chain non-empty"));
            if tail_key == start_key {
                chain.pop(); // drop the duplicate closing point
                closed = true;
                break;
            }
            let next = by_start.get_mut(&tail_key).and_then(|(cursor, cands)| {
                while *cursor < cands.len() && used[cands[*cursor]] {
                    *cursor += 1;
                }
                cands.get(*cursor).copied()
            });
            match next {
                Some(i) => {
                    used[i] = true;
                    chain.push(segs[i].1);
                }
                None => break,
            }
        }
        if !closed {
            // Tolerate a slightly sloppy closure (mesh weld noise).
            closed = chain.len() > 3
                && chain[0].approx_eq(
                    *chain.last().expect("chain non-empty"),
                    Tolerance::new(QUANTUM * 16.0),
                );
            if closed {
                chain.pop();
            }
        }
        if closed && chain.len() >= 3 {
            layer.loops.push(Contour { polygon: Polygon2::new(chain), body });
        } else if chain.len() >= 2 {
            layer.open_paths.push(Polyline2::new(chain));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{
        intact_prism, prism_with_sphere, tensile_bar, tensile_bar_with_spline, PrismDims,
        TensileBarDims,
    };
    use am_cad::{BodyKind, MaterialRemoval};
    use am_mesh::{tessellate_shells, Resolution};
    use crate::Orientation;

    fn slice_part(part: &am_cad::ResolvedPart, res: Resolution, h: f64) -> SlicedModel {
        let shells = tessellate_shells(part, &res.params());
        slice_shells(&shells, h)
    }

    #[test]
    fn prism_slices_to_single_ccw_rectangle_per_layer() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let sliced = slice_part(&part, Resolution::Fine, 0.1778);
        assert!(!sliced.layers.is_empty());
        for layer in &sliced.layers {
            assert_eq!(layer.loops.len(), 1, "z = {}", layer.z);
            assert!(layer.open_paths.is_empty());
            let a = layer.loops[0].polygon.signed_area();
            assert!((a - 25.4 * 12.7).abs() < 1e-6, "area {a}");
        }
    }

    #[test]
    fn sliced_volume_matches_mesh_volume() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let sliced = slice_part(&part, Resolution::Fine, 0.05);
        let exact = 25.4 * 12.7 * 12.7;
        assert!((sliced.volume_estimate() - exact).abs() / exact < 0.01);
    }

    #[test]
    fn embedded_sphere_layer_has_cw_inner_loop() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let sliced = slice_part(&part, Resolution::Fine, 0.1778);
        // The mid layer passes through the sphere.
        let mid = &sliced.layers[sliced.layer_count() / 2];
        assert_eq!(mid.loops.len(), 2, "z = {}", mid.z);
        let mut areas: Vec<f64> = mid.polygons().map(Polygon2::signed_area).collect();
        areas.sort_by(|a, b| a.partial_cmp(b).expect("finite areas"));
        assert!(areas[0] < 0.0, "inner sphere loop must be CW: {areas:?}");
        assert!(areas[1] > 0.0, "outer prism loop must be CCW");
        // Winding at the sphere centre is 0: prism (+1) + cavity (−1).
        let center = dims.size * 0.5;
        assert_eq!(mid.winding(Point2::new(center.x, center.y)), 0);
    }

    #[test]
    fn removal_solid_cancels_winding_at_center() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let sliced = slice_part(&part, Resolution::Fine, 0.1778);
        let mid = &sliced.layers[sliced.layer_count() / 2];
        assert_eq!(mid.loops.len(), 3);
        let center = dims.size * 0.5;
        // prism (+1) + cavity (−1) + solid body (+1) = +1 → model material.
        assert_eq!(mid.winding(Point2::new(center.x, center.y)), 1);
    }

    #[test]
    fn removal_surface_leaves_negative_winding() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Surface, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let sliced = slice_part(&part, Resolution::Fine, 0.1778);
        let mid = &sliced.layers[sliced.layer_count() / 2];
        let center = dims.size * 0.5;
        assert_eq!(mid.winding(Point2::new(center.x, center.y)), -1);
    }

    #[test]
    fn intact_bar_xy_single_loop_per_layer() {
        let part = tensile_bar(&TensileBarDims::default()).unwrap().resolve().unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = crate::orient_shells(&shells, Orientation::Xy);
        let sliced = slice_shells(&oriented, 0.1778);
        for layer in &sliced.layers {
            assert_eq!(layer.loops.len(), 1);
        }
    }

    #[test]
    fn split_bar_xy_layers_have_two_loops() {
        let part = tensile_bar_with_spline(&TensileBarDims::default())
            .unwrap()
            .resolve()
            .unwrap();
        let sliced = slice_part(&part, Resolution::Coarse, 0.1778);
        for layer in &sliced.layers {
            assert_eq!(layer.loops.len(), 2, "z = {}", layer.z);
            assert!(layer.polygons().all(|l| l.signed_area() > 0.0));
        }
    }

    #[test]
    fn split_bar_xz_gauge_layers_have_two_loops() {
        let dims = TensileBarDims::default();
        let part = tensile_bar_with_spline(&dims).unwrap().resolve().unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = crate::orient_shells(&shells, Orientation::Xz);
        let sliced = slice_shells(&oriented, 0.1778);
        // Layers inside the gauge band (width ∈ gauge) cross the spline.
        let gauge_lo = (dims.grip_width - dims.gauge_width) / 2.0;
        let gauge_hi = gauge_lo + dims.gauge_width;
        let mut crossing_layers = 0;
        for layer in &sliced.layers {
            if layer.z > gauge_lo + 0.3 && layer.z < gauge_hi - 0.3 {
                assert!(layer.loops.len() >= 2, "z = {}: {} loops", layer.z, layer.loops.len());
                crossing_layers += 1;
            }
        }
        assert!(crossing_layers > 20, "expected many gauge layers, got {crossing_layers}");
    }

    #[test]
    fn watertight_shells_produce_no_open_paths() {
        let part = tensile_bar_with_spline(&TensileBarDims::default())
            .unwrap()
            .resolve()
            .unwrap();
        for res in Resolution::ALL {
            let sliced = slice_part(&part, res, 0.1778);
            let open: usize = sliced.layers.iter().map(|l| l.open_paths.len()).sum();
            assert_eq!(open, 0, "{res}");
        }
    }

    #[test]
    fn sweep_matches_scan_bit_for_bit() {
        // Regression pin: layer bucketing must reproduce the legacy
        // per-layer full-mesh scan exactly — same layers, same contours,
        // same floats — across parts, resolutions, and orientations.
        let prism = intact_prism(&PrismDims::default()).resolve().unwrap();
        let bar = tensile_bar_with_spline(&TensileBarDims::default())
            .unwrap()
            .resolve()
            .unwrap();
        for part in [&prism, &bar] {
            for res in [Resolution::Coarse, Resolution::Fine] {
                let shells = tessellate_shells(part, &res.params());
                for orientation in [Orientation::Xy, Orientation::Xz] {
                    let oriented = crate::orient_shells(&shells, orientation);
                    for h in [0.1778, 0.33] {
                        let scan = slice_shells_scan(&oriented, h).unwrap();
                        let sweep = try_slice_shells(&oriented, h).unwrap();
                        assert_eq!(scan, sweep, "{res} {orientation:?} h={h}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_slice_is_bit_identical_to_serial() {
        let part = tensile_bar_with_spline(&TensileBarDims::default())
            .unwrap()
            .resolve()
            .unwrap();
        let shells = tessellate_shells(&part, &Resolution::Fine.params());
        let serial = try_slice_shells_with(&shells, 0.1778, Parallelism::serial()).unwrap();
        for threads in [2, 8] {
            let par =
                try_slice_shells_with(&shells, 0.1778, Parallelism::threads(threads)).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "layer height must be positive")]
    fn zero_layer_height_panics() {
        let _ = slice_mesh(&TriMesh::new(), 0.0);
    }

    #[test]
    fn try_slice_returns_typed_errors() {
        assert_eq!(
            try_slice_shells(&[], 0.0),
            Err(SliceError::BadLayerHeight { value: 0.0 })
        );
        assert!(matches!(
            try_slice_shells(&[], f64::NAN),
            Err(SliceError::BadLayerHeight { .. })
        ));
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        // A subnormal layer height would demand billions of layers.
        match try_slice_shells(&shells, 1e-12) {
            Err(SliceError::TooManyLayers { estimated, max }) => {
                assert!(estimated > max);
            }
            other => panic!("expected TooManyLayers, got {other:?}"),
        }
        // The happy path agrees with the panicking wrapper.
        let ok = try_slice_shells(&shells, 0.1778).unwrap();
        assert_eq!(ok, slice_shells(&shells, 0.1778));
    }
}
