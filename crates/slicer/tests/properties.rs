//! Property-based tests for slicing, rasterization and tool paths.

use am_geom::{Aabb2, Point2, Polygon2};
use am_slicer::{
    generate_toolpath, rasterize_layer, slice_shells, Contour, Layer, SlicerConfig,
    ToolMaterial,
};
use proptest::prelude::*;

fn rect() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (1.0..40.0f64, 1.0..20.0f64, -20.0..20.0f64, -20.0..20.0f64)
}

fn layer_of(polys: Vec<Polygon2>) -> Layer {
    Layer {
        z: 0.5,
        loops: polys.into_iter().enumerate().map(|(i, polygon)| Contour { polygon, body: i }).collect(),
        open_paths: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn raster_model_area_matches_polygon_area((w, h, x, y) in rect()) {
        let poly = Polygon2::rectangle(Point2::new(x, y), Point2::new(x + w, y + h));
        let layer = layer_of(vec![poly.clone()]);
        let raster = rasterize_layer(&layer, poly.aabb().inflated(0.5), 0.1, true);
        let area = raster.count(am_slicer::CellMaterial::Model) as f64 * 0.01;
        prop_assert!((area - w * h).abs() / (w * h) < 0.1, "area {area} vs {}", w * h);
        prop_assert_eq!(raster.model_components(), 1);
        prop_assert_eq!(raster.internal_void_cells(), 0);
    }

    #[test]
    fn hole_classifies_as_support((w, h, _, _) in rect(), r in 0.3..4.0f64) {
        // A circular cavity (CW loop) inside a rectangle: enclosed region
        // must classify as support, with winding semantics intact.
        let w = w.max(12.0);
        let h = h.max(12.0);
        let outer = Polygon2::rectangle(Point2::ZERO, Point2::new(w, h));
        let r = r.min(w.min(h) / 2.0 - 1.0).max(0.3);
        let center = Point2::new(w / 2.0, h / 2.0);
        let hole = Polygon2::circle(center, r, 24).reversed();
        let layer = layer_of(vec![outer.clone(), hole]);
        let raster = rasterize_layer(&layer, outer.aabb().inflated(0.5), 0.1, true);
        prop_assert_eq!(raster.material_at(center), am_slicer::CellMaterial::Support);
        prop_assert_eq!(
            raster.material_at(Point2::new(0.5, 0.5)),
            am_slicer::CellMaterial::Model
        );
    }

    #[test]
    fn toolpath_volume_tracks_box_volume((w, h, _, _) in rect(), depth in 2.0..10.0f64) {
        use am_cad::{Part, Feature, SolidShape};
        use am_geom::{Aabb3, Point3};
        // Perimeter/infill overlap dominates on very small parts, so keep
        // the footprint at realistic scale.
        let (w, h) = (w.max(8.0), h.max(8.0));
        let part = Part::new("box")
            .with_feature(Feature::Base(SolidShape::Cuboid(Aabb3::new(
                Point3::ZERO,
                Point3::new(w, h, depth),
            ))))
            .unwrap()
            .resolve()
            .unwrap();
        let shells = am_mesh::tessellate_shells(&part, &am_mesh::Resolution::Fine.params());
        let sliced = slice_shells(&shells, 0.3556);
        let tp = generate_toolpath(&sliced, &SlicerConfig::default());
        let exact = w * h * depth;
        let deposited = tp.material_volume(ToolMaterial::Model);
        prop_assert!(
            (deposited - exact).abs() / exact < 0.35,
            "deposited {deposited} vs {exact}"
        );
    }

    #[test]
    fn gcode_round_trip_for_random_boxes((w, h, _, _) in rect()) {
        use am_cad::{Part, Feature, SolidShape};
        use am_geom::{Aabb3, Point3};
        let part = Part::new("box")
            .with_feature(Feature::Base(SolidShape::Cuboid(Aabb3::new(
                Point3::ZERO,
                Point3::new(w.max(3.0), h.max(3.0), 3.0),
            ))))
            .unwrap()
            .resolve()
            .unwrap();
        let shells = am_mesh::tessellate_shells(&part, &am_mesh::Resolution::Coarse.params());
        let sliced = slice_shells(&shells, 0.3556);
        let tp = generate_toolpath(&sliced, &SlicerConfig::default());
        let back = am_slicer::parse_gcode(&am_slicer::to_gcode(&tp)).unwrap();
        prop_assert_eq!(back.roads.len(), tp.roads.len());
        let (a, b) = (tp.total_length(ToolMaterial::Model), back.total_length(ToolMaterial::Model));
        prop_assert!((a - b).abs() < 0.001 * a.max(1.0));
    }

    #[test]
    fn sliced_volume_conservation((w, h, _, _) in rect(), depth in 2.0..10.0f64) {
        use am_cad::{Part, Feature, SolidShape};
        use am_geom::{Aabb3, Point3};
        let (w, h) = (w.max(3.0), h.max(3.0));
        let part = Part::new("box")
            .with_feature(Feature::Base(SolidShape::Cuboid(Aabb3::new(
                Point3::ZERO,
                Point3::new(w, h, depth),
            ))))
            .unwrap()
            .resolve()
            .unwrap();
        let shells = am_mesh::tessellate_shells(&part, &am_mesh::Resolution::Fine.params());
        let sliced = slice_shells(&shells, 0.1);
        let exact = w * h * depth;
        prop_assert!(
            (sliced.volume_estimate() - exact).abs() / exact < 0.05,
            "sliced {} vs {exact}",
            sliced.volume_estimate()
        );
    }

    /// PR 2 determinism property: on random sphere-cavity prisms, the
    /// z-interval sweep must reproduce the per-layer scan **bit for bit**
    /// at every thread count — the whole performance rewrite is gated on
    /// parallel output being indistinguishable from the serial baseline.
    #[test]
    fn sweep_matches_scan_on_random_prisms(
        (sx, sy, sz) in (12.0..30.0f64, 6.0..15.0f64, 6.0..15.0f64),
        radius in 1.5..2.8f64,
        layer_height in 0.3..0.8f64,
        orient_idx in 0..2usize,
    ) {
        use am_cad::parts::{prism_with_sphere, PrismDims};
        use am_cad::{BodyKind, MaterialRemoval};
        use am_geom::Point3;
        use am_slicer::{orient_shells, slice_shells_scan, try_slice_shells_with, Orientation};

        let dims = PrismDims { size: Point3::new(sx, sy, sz), sphere_radius: radius };
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let shells = am_mesh::tessellate_shells(&part, &am_mesh::Resolution::Fine.params());
        let orientation = [Orientation::Xy, Orientation::Xz][orient_idx];
        let oriented = orient_shells(&shells, orientation);

        let scan = slice_shells_scan(&oriented, layer_height).unwrap();
        for threads in [1usize, 2, 8] {
            let sweep =
                try_slice_shells_with(&oriented, layer_height, am_par::Parallelism::threads(threads))
                    .unwrap();
            prop_assert!(
                scan == sweep,
                "sweep (threads={}) diverged from scan on {}x{}x{} r={} h={}",
                threads, sx, sy, sz, radius, layer_height
            );
        }
    }
}

#[test]
fn raster_layer_outside_bounds_is_empty() {
    let poly = Polygon2::rectangle(Point2::ZERO, Point2::new(2.0, 2.0));
    let layer = layer_of(vec![poly]);
    let raster = rasterize_layer(
        &layer,
        Aabb2::new(Point2::new(-1.0, -1.0), Point2::new(3.0, 3.0)),
        0.1,
        true,
    );
    assert_eq!(raster.material_at(Point2::new(-0.5, -0.5)), am_slicer::CellMaterial::Empty);
}
