//! The router's headline gate: a job set routed across a fleet of
//! {1, 2, 4} backends — under **either** routing policy — must be
//! byte-identical to the same jobs run in-process, including when a
//! backend dies mid-workload and its jobs fail over. Routing is a
//! placement decision; it must never be observable in response bytes.

use std::time::Duration;

use am_router::{Router, RouterConfig, RoutePolicy};
use am_service::{
    expected_results_wire, Client, Codec, Endpoint, JobSpec, Response, RetryPolicy, Server,
    ServerConfig,
};
use obfuscade::json::Json;
use proptest::prelude::*;

const NODE_COUNTS: &[usize] = &[1, 2, 4];
const POLICIES: &[RoutePolicy] = &[RoutePolicy::Affinity, RoutePolicy::RoundRobin];

/// Backends sized for tests: one worker, default cache.
fn start_backends(n: usize) -> Vec<Server> {
    (0..n)
        .map(|i| {
            Server::start(ServerConfig {
                workers: 1,
                node: format!("node{i}"),
                ..ServerConfig::default()
            })
            .expect("backend boots")
        })
        .collect()
}

fn router_over(backends: &[Server], policy: RoutePolicy) -> Router {
    Router::start(RouterConfig {
        backends: backends
            .iter()
            .map(|b| Endpoint::Tcp(b.addr().to_string()))
            .collect(),
        policy,
        retry: RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..RetryPolicy::default()
        },
        ..RouterConfig::default()
    })
    .expect("router boots")
}

/// Four jobs spanning two prefix families (two orientations), half of
/// them faulted — clean and erroring outcomes both cross the router.
fn job_set(seed: u64, fault_seed: u64) -> Vec<JobSpec> {
    ["xy", "xz", "xy", "xz"]
        .iter()
        .enumerate()
        .map(|(i, orientation)| JobSpec {
            orientation: match *orientation {
                "xz" => am_slicer::Orientation::Xz,
                _ => am_slicer::Orientation::Xy,
            },
            seed: seed + (i as u64) / 2,
            faults: if i % 2 == 1 { "stl.degenerate=3".to_string() } else { String::new() },
            fault_seed,
            ..JobSpec::default()
        })
        .collect()
}

fn shut_down_fleet(router: Router, backends: Vec<Server>) {
    router.begin_shutdown();
    router.join();
    for backend in backends {
        backend.begin_shutdown();
        backend.join();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn routed_jobs_are_byte_identical_to_in_process_runs(
        seed in 1..1_000u64,
        fault_seed in 1..10_000u64,
        nodes_idx in 0..NODE_COUNTS.len(),
        policy_idx in 0..POLICIES.len(),
        codec_idx in 0..2usize,
    ) {
        let policy = POLICIES[policy_idx];
        let codec = if codec_idx == 0 { Codec::Json } else { Codec::Binary };
        let jobs = job_set(seed, fault_seed);
        let expected = expected_results_wire(&jobs).expect("in-process reference run");

        let backends = start_backends(NODE_COUNTS[nodes_idx]);
        let router = router_over(&backends, policy);
        let endpoint = Endpoint::Tcp(router.addr().to_string());

        // Submit one job per request (the sweep shape the fleet routes),
        // twice: round two rides whatever caches round one warmed,
        // wherever the policy put them.
        let expected_each: Vec<String> = jobs
            .iter()
            .map(|job| expected_results_wire(std::slice::from_ref(job)).expect("reference"))
            .collect();
        for round in 0..2 {
            let mut client =
                Client::connect_with_codec(&endpoint, None, codec).expect("connect");
            for (job, want) in jobs.iter().zip(expected_each.iter()) {
                let response =
                    client.run(vec![job.clone()], Some(120_000)).expect("routed run");
                let Response::Results { results, .. } = response else {
                    panic!("round {round}: expected results, got {response:?}");
                };
                prop_assert_eq!(
                    &Json::Array(results).render(),
                    want,
                    "routed bytes diverged (round {}, nodes {}, policy {}, codec {})",
                    round,
                    NODE_COUNTS[nodes_idx],
                    policy.name(),
                    codec.name()
                );
            }
        }

        // The whole set as one batch must match the batch oracle too.
        let mut client = Client::connect_with_codec(&endpoint, None, codec).expect("connect");
        let response = client.run(jobs.clone(), Some(120_000)).expect("routed batch");
        let Response::Results { results, .. } = response else {
            panic!("expected results, got {response:?}");
        };
        prop_assert_eq!(Json::Array(results).render(), expected);

        let routed = router.fleet().routed();
        prop_assert!(routed >= 9, "router dispatched {routed} of 9 requests");
        shut_down_fleet(router, backends);
    }
}

/// A backend dying mid-workload must cost placement, never bytes: kill
/// one of two backends, submit a multi-prefix sweep, and every response
/// still matches the in-process oracle while the fleet records the
/// failovers.
#[test]
fn backend_death_fails_over_without_changing_bytes() {
    let backends = start_backends(2);
    let router = router_over(&backends, RoutePolicy::Affinity);
    let endpoint = Endpoint::Tcp(router.addr().to_string());

    // Warm both homes so the router has live pooled connections to the
    // backend we are about to kill (exercising the stale-conn path, not
    // just connect-refused).
    let jobs = job_set(11, 77);
    let mut client = Client::connect(&endpoint).expect("connect");
    for job in &jobs {
        let response = client.run(vec![job.clone()], Some(120_000)).expect("warm run");
        assert!(matches!(response, Response::Results { .. }), "{response:?}");
    }

    // Kill the backend that served the most of the warmup — the home of
    // at least one prefix family, guaranteed to have live pooled
    // connections. (Which node that is varies run to run: endpoint
    // names carry ephemeral ports, and placement hashes the name.)
    let stats = router.fleet().stats_json();
    let victim_name = stats
        .get("per_backend")
        .and_then(Json::as_array)
        .expect("per_backend array")
        .iter()
        .max_by_key(|b| b.get("routed").and_then(Json::as_u64).unwrap_or(0))
        .and_then(|b| b.get("endpoint"))
        .and_then(Json::as_str)
        .expect("victim endpoint")
        .to_string();
    let mut survivors = Vec::new();
    let mut dead = None;
    for backend in backends {
        if format!("tcp:{}", backend.addr()) == victim_name {
            dead = Some(backend);
        } else {
            survivors.push(backend);
        }
    }
    let dead = dead.expect("the most-routed endpoint is one of ours");
    // Drain keeps its state consistent; the socket then refuses
    // connections like a kill -9 would.
    dead.begin_shutdown();
    dead.join();

    for job in &jobs {
        let want = expected_results_wire(std::slice::from_ref(job)).expect("reference");
        let response = client.run(vec![job.clone()], Some(120_000)).expect("failover run");
        let Response::Results { results, .. } = response else {
            panic!("expected results after backend death, got {response:?}");
        };
        assert_eq!(
            Json::Array(results).render(),
            want,
            "failover changed response bytes"
        );
    }

    // With two backends and both orientations in the set, the dead node
    // was home to at least one prefix — those jobs failed over.
    let failovers = router.fleet().failovers();
    assert!(failovers >= 1, "no failover recorded after killing a backend");
    let fleet_json = router.fleet().stats_json().render();
    assert!(fleet_json.contains("\"failovers\""), "{fleet_json}");

    shut_down_fleet(router, survivors);
}
