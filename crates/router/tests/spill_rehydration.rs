//! Satellite: the spill tier works **under routing**. A backend with a
//! tiny cache and a persistent spill directory is swept through the
//! router, restarted on the same socket + spill dir, and re-swept: the
//! restarted daemon must serve warm-start spill hits (artifacts
//! rehydrated from the segment files, not recomputed) and the routed
//! responses must stay byte-identical across the restart.

use std::time::Duration;

use am_router::{Router, RouterConfig, RoutePolicy};
use am_service::{
    expected_results_wire, Client, Endpoint, JobSpec, Response, RetryPolicy, Server, ServerConfig,
};
use obfuscade::json::Json;

fn backend_config(sock: &std::path::Path, spill: &std::path::Path) -> ServerConfig {
    ServerConfig {
        unix_socket: Some(sock.to_path_buf()),
        workers: 1,
        // 1 MiB: a few seeds' worth of artifacts overflow it, forcing
        // eviction into the spill tier.
        cache_budget: 1 << 20,
        spill_dir: Some(spill.to_path_buf()),
        node: "spill-node".to_string(),
        ..ServerConfig::default()
    }
}

fn sweep_jobs() -> Vec<JobSpec> {
    (1..=6).map(|seed| JobSpec { seed, ..JobSpec::default() }).collect()
}

fn routed_sweep(endpoint: &Endpoint, jobs: &[JobSpec], expected: &[String]) {
    let mut client = Client::connect(endpoint).expect("connect to router");
    for (job, want) in jobs.iter().zip(expected.iter()) {
        let response = client.run(vec![job.clone()], Some(120_000)).expect("routed run");
        let Response::Results { results, .. } = response else {
            panic!("expected results, got {response:?}");
        };
        assert_eq!(&Json::Array(results).render(), want, "routed sweep diverged");
    }
}

#[test]
fn restarted_backend_serves_spill_hits_through_the_router() {
    let base = std::env::temp_dir().join(format!("obfuscade-router-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("test dir");
    let sock = base.join("backend.sock");
    let spill = base.join("spill");

    let jobs = sweep_jobs();
    let expected: Vec<String> = jobs
        .iter()
        .map(|job| expected_results_wire(std::slice::from_ref(job)).expect("reference"))
        .collect();

    let backend = Server::start(backend_config(&sock, &spill)).expect("backend boots");
    let router = Router::start(RouterConfig {
        backends: vec![Endpoint::Unix(sock.clone())],
        policy: RoutePolicy::Affinity,
        retry: RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            ..RetryPolicy::default()
        },
        ..RouterConfig::default()
    })
    .expect("router boots");
    let front = Endpoint::Tcp(router.addr().to_string());

    // First routed sweep: warms the backend and overflows its 1 MiB
    // budget, spilling the early seeds to disk.
    routed_sweep(&front, &jobs, &expected);
    let spilled = backend.metrics().cache.spill_writes;
    assert!(spilled > 0, "the sweep never overflowed into the spill tier");

    // Restart the backend on the same socket and spill directory. The
    // router keeps running; its pooled connections to the old process
    // die and reconnect lazily.
    backend.begin_shutdown();
    backend.join();
    let backend = Server::start(backend_config(&sock, &spill)).expect("backend restarts");

    // Second routed sweep: byte-identical, and served (partly) from the
    // rehydrated spill segments rather than recomputed.
    routed_sweep(&front, &jobs, &expected);
    let cache = backend.metrics().cache;
    assert!(
        cache.spill_hits > 0,
        "restarted backend recomputed everything instead of rehydrating \
         (spill stats: {cache:?})"
    );
    assert_eq!(cache.spill_corrupt_dropped, 0, "recovery served corrupt segments");

    router.begin_shutdown();
    router.join();
    backend.begin_shutdown();
    backend.join();
    let _ = std::fs::remove_dir_all(&base);
}
