//! **am-router** — the cache-affinity routing tier of the ObfusCADe
//! service.
//!
//! A [`Router`] is a standalone daemon that speaks the full am-service
//! wire protocol on its front socket — both connection backends, both
//! codecs, the bounded queue, typed admission errors, graceful drain —
//! and executes nothing locally. Every admitted `run`/`authenticate` is
//! handed to a [`Fleet`] of N backend obfuscation daemons, with the
//! backend chosen by **rendezvous hashing over the job's mesh→slice
//! stage-key prefix** ([`am_service::JobSpec::prefix_key`]): jobs that
//! share the expensive prefix land on the same backend and ride its warm
//! [`obfuscade::StageCache`], so a fleet of N daemons keeps the
//! single-node warm hit rate instead of collapsing toward 1/N under
//! naive round-robin spreading.
//!
//! The router-to-backend hop runs over small pools of persistent
//! connections that negotiate the binary codec and **pipeline** many
//! in-flight requests per socket. Backends have per-node health: a run
//! of consecutive failures ejects a backend from routing, deterministic
//! periodic probes re-admit it once it answers again, and a job whose
//! home backend is down or draining **fails over** to the next backend
//! in its rendezvous order — byte-identical output either way, because
//! results are a pure function of the job spec (the determinism contract
//! the workspace enforces end to end).
//!
//! # Example
//!
//! ```no_run
//! use am_service::{Client, Endpoint, JobSpec, Server, ServerConfig};
//! use am_router::{Router, RouterConfig};
//!
//! // Two backend daemons…
//! let node1 = Server::start(ServerConfig::default())?;
//! let node2 = Server::start(ServerConfig::default())?;
//! // …behind one router.
//! let router = Router::start(RouterConfig {
//!     backends: vec![
//!         Endpoint::Tcp(node1.addr().to_string()),
//!         Endpoint::Tcp(node2.addr().to_string()),
//!     ],
//!     ..RouterConfig::default()
//! })?;
//! let mut client = Client::connect(&Endpoint::Tcp(router.addr().to_string()))?;
//! let response = client.run(vec![JobSpec::default()], Some(60_000));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conn;
mod fleet;

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use am_service::{Endpoint, Engine, RetryPolicy, Server, ServerConfig};
use obfuscade::metrics::MetricsSnapshot;

pub use fleet::{endpoint_name, Fleet, RoutePolicy};

/// Everything needed to boot a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The front-end server: socket addresses, connection backend,
    /// codec policy, queue width — everything a plain daemon accepts.
    /// Its `engine` field is overwritten with the fleet; its `node`
    /// name defaults to `"router"` when left empty.
    pub front: ServerConfig,
    /// The backend daemons, in any order (placement depends only on the
    /// endpoint *names*, not their position).
    pub backends: Vec<Endpoint>,
    /// Persistent pipelined connections per backend. Bounds sockets,
    /// not concurrency — each connection carries many in-flight jobs.
    pub conns_per_backend: usize,
    /// How jobs pick their backend.
    pub policy: RoutePolicy,
    /// Consecutive failures that eject a backend from routing.
    pub fail_threshold: u32,
    /// Probe an ejected backend on every Nth decision that would skip
    /// it (0 = never probe).
    pub probe_every: u64,
    /// Per-backend retry policy: attempts and backoff for transient
    /// errors, and the per-call response timeout.
    pub retry: RetryPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            front: ServerConfig::default(),
            backends: Vec::new(),
            conns_per_backend: 2,
            policy: RoutePolicy::Affinity,
            fail_threshold: 3,
            probe_every: 8,
            retry: RetryPolicy::default(),
        }
    }
}

/// A running router daemon — an [`am_service::Server`] front end whose
/// execution engine is a routing [`Fleet`].
pub struct Router {
    server: Server,
    fleet: Arc<Fleet>,
}

impl Router {
    /// Boots the router: builds the fleet, plugs it into the front-end
    /// server as its forwarding engine, binds the front sockets.
    ///
    /// # Errors
    ///
    /// An empty backend list, or any front-end bind failure. Backends
    /// are *not* contacted here — connections are established lazily on
    /// the first job, so the fleet may boot in any order.
    pub fn start(config: RouterConfig) -> io::Result<Router> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one backend endpoint",
            ));
        }
        let fleet = Arc::new(Fleet::new(
            config.backends,
            config.conns_per_backend,
            config.policy,
            config.fail_threshold,
            config.probe_every,
            config.retry,
        ));
        let mut front = config.front;
        if front.node.is_empty() {
            front.node = "router".to_string();
        }
        front.engine = Engine::Forward(Arc::clone(&fleet) as Arc<dyn am_service::Forwarder>);
        let server = Server::start(front)?;
        Ok(Router { server, fleet })
    }

    /// The bound front TCP address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The routing fleet (live counters, stats).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// A metrics snapshot of the front end — its `fleet` section carries
    /// the per-backend routing and health counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.server.metrics()
    }

    /// Drains the front end: queued and in-flight jobs finish (their
    /// backend responses are delivered), then the listeners close.
    pub fn begin_shutdown(&self) {
        self.server.begin_shutdown();
    }

    /// Waits for every front-end thread to exit after a shutdown.
    pub fn join(self) {
        self.server.join();
    }
}
