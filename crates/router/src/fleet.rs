//! The routing fleet: rendezvous hashing, per-backend health, failover.
//!
//! # Why rendezvous (highest-random-weight) hashing
//!
//! The fleet's whole purpose is **cache affinity**: jobs sharing a
//! mesh→slice stage-key prefix must land on the same backend so they hit
//! that backend's warm [`obfuscade::StageCache`] instead of re-deriving
//! the prefix N times across the fleet. Rendezvous hashing gives every
//! (prefix, backend) pair an independent pseudo-random weight and routes
//! to the highest; when a backend dies, only the prefixes it owned move
//! (each to its second-highest backend), and every router instance
//! computes the identical order with no shared state, no token ring to
//! rebalance, and no virtual-node bookkeeping.
//!
//! # Failover keeps the determinism contract
//!
//! A failed backend never changes *bytes*, only *placement*: the job
//! re-runs on the next backend in descending-weight order, and the
//! pipeline's output is a pure function of the job spec. Failing over
//! is therefore always safe — at worst it costs a cold cache.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::thread;

use am_service::{
    DetectSpec, Endpoint, Forwarder, JobSpec, Request, RequestBody, Response, RetryPolicy,
    SanitizeSpec, ServiceError,
};
use obfuscade::json::Json;
use obfuscade::{StageHasher, StageKey};

use crate::conn::ConnPool;

/// Hash domain for rendezvous weights; versioned so a future re-keying
/// is an explicit, observable change.
const ROUTE_DOMAIN: &str = "obfuscade/route/v1";

/// How a job picks its backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Rendezvous-hash the job's stage-key prefix: equal prefixes land
    /// on the same backend and ride its warm cache (the default).
    #[default]
    Affinity,
    /// Rotate across backends regardless of the job — the baseline the
    /// bench compares against; shared prefixes smear across the fleet
    /// and the warm hit rate collapses toward 1/N.
    RoundRobin,
}

impl RoutePolicy {
    /// Stable lowercase name (CLI flag value, stats field).
    pub fn name(&self) -> &'static str {
        match self {
            RoutePolicy::Affinity => "affinity",
            RoutePolicy::RoundRobin => "round-robin",
        }
    }

    /// Parses a CLI flag value.
    ///
    /// # Errors
    ///
    /// The unknown name.
    pub fn from_name(name: &str) -> Result<RoutePolicy, String> {
        match name {
            "affinity" => Ok(RoutePolicy::Affinity),
            "round-robin" | "rr" => Ok(RoutePolicy::RoundRobin),
            other => Err(format!("unknown routing policy `{other}` (affinity|round-robin)")),
        }
    }
}

/// Stable display name of an endpoint — the rendezvous hash input and
/// the `endpoint` field of fleet stats. The *name string* is what
/// placement hangs on: keep it stable across router restarts.
pub fn endpoint_name(endpoint: &Endpoint) -> String {
    match endpoint {
        Endpoint::Tcp(addr) => format!("tcp:{addr}"),
        Endpoint::Unix(path) => format!("unix:{}", path.display()),
    }
}

/// One backend daemon: its connection pool plus health and routing
/// counters.
struct Backend {
    name: String,
    pool: ConnPool,
    /// Failures since the last success; reaching the fleet threshold
    /// ejects the backend.
    consecutive_failures: AtomicU32,
    ejected: AtomicBool,
    /// Routing decisions that skipped this backend while ejected — the
    /// probe cadence counter.
    skips: AtomicU64,
    routed: AtomicU64,
    failures: AtomicU64,
    ejections: AtomicU64,
    probes: AtomicU64,
}

impl Backend {
    fn mark_ok(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        if self.ejected.swap(false, Ordering::SeqCst) {
            self.skips.store(0, Ordering::SeqCst);
        }
    }

    fn mark_failure(&self, threshold: u32) {
        self.failures.fetch_add(1, Ordering::SeqCst);
        let n = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= threshold && !self.ejected.swap(true, Ordering::SeqCst) {
            self.ejections.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// The routing fleet: N backends, a policy, health state, and the
/// pipelined connection pools. Plugs into the front-end server as its
/// [`Forwarder`] engine.
pub struct Fleet {
    backends: Vec<Backend>,
    policy: RoutePolicy,
    fail_threshold: u32,
    probe_every: u64,
    retry: RetryPolicy,
    rr: AtomicU64,
    /// Upstream request ids, unique across every connection of every
    /// backend so pipelined responses can never be misattributed.
    next_upstream: AtomicU64,
    routed: AtomicU64,
    failovers: AtomicU64,
}

impl Fleet {
    /// Builds the fleet over `backends` with `conns_per_backend`-wide
    /// pipelined pools. `fail_threshold` consecutive failures eject a
    /// backend; every `probe_every`-th decision that would skip an
    /// ejected backend probes it instead (0 disables probing — an
    /// ejected backend then stays out until the router restarts).
    pub fn new(
        backends: Vec<Endpoint>,
        conns_per_backend: usize,
        policy: RoutePolicy,
        fail_threshold: u32,
        probe_every: u64,
        retry: RetryPolicy,
    ) -> Fleet {
        let backends = backends
            .into_iter()
            .map(|endpoint| Backend {
                name: endpoint_name(&endpoint),
                pool: ConnPool::new(endpoint, conns_per_backend),
                consecutive_failures: AtomicU32::new(0),
                ejected: AtomicBool::new(false),
                skips: AtomicU64::new(0),
                routed: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                ejections: AtomicU64::new(0),
                probes: AtomicU64::new(0),
            })
            .collect();
        Fleet {
            backends,
            policy,
            fail_threshold: fail_threshold.max(1),
            probe_every,
            retry,
            rr: AtomicU64::new(0),
            next_upstream: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
        }
    }

    /// Jobs routed (front-end requests dispatched) so far.
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::SeqCst)
    }

    /// Jobs served by a backend other than their first-choice node.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::SeqCst)
    }

    /// The rendezvous weight of `key` on the backend named `name`.
    fn weight(key: StageKey, name: &str) -> u64 {
        let mut h = StageHasher::new(ROUTE_DOMAIN);
        let [a, b] = key.to_words();
        h.write_u64(a);
        h.write_u64(b);
        h.write_str(name);
        h.finish().to_words()[0]
    }

    /// Backend indices in routing order for `key`: descending rendezvous
    /// weight under [`RoutePolicy::Affinity`] (name-ordered tiebreak), a
    /// rotating start under [`RoutePolicy::RoundRobin`]. The first entry
    /// is the job's home; the rest are its failover sequence.
    fn order_for(&self, key: Option<StageKey>) -> Vec<usize> {
        let n = self.backends.len();
        match self.policy {
            RoutePolicy::Affinity => {
                // A spec too malformed to derive a prefix key still
                // deserves a deterministic (and typed-error) answer;
                // route it like the zero key.
                let key = key.unwrap_or_else(|| StageKey::from_words([0, 0]));
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    let (wa, wb) = (
                        Self::weight(key, &self.backends[a].name),
                        Self::weight(key, &self.backends[b].name),
                    );
                    wb.cmp(&wa).then_with(|| self.backends[a].name.cmp(&self.backends[b].name))
                });
                order
            }
            RoutePolicy::RoundRobin => {
                let start = (self.rr.fetch_add(1, Ordering::SeqCst) as usize) % n;
                (0..n).map(|i| (start + i) % n).collect()
            }
        }
    }

    /// Routes one queued request: walk the routing order, skipping
    /// ejected backends (except on their probe turns), retrying
    /// transient errors on the owning backend, failing the job over to
    /// the next backend on transport errors or a draining node. The
    /// response comes back carrying the **front** id `id`.
    fn dispatch(&self, id: u64, body: RequestBody, key: Option<StageKey>) -> Response {
        self.routed.fetch_add(1, Ordering::SeqCst);
        let order = self.order_for(key);
        let mut last = String::from("no backends configured");
        for (rank, &bi) in order.iter().enumerate() {
            let backend = &self.backends[bi];
            if backend.ejected.load(Ordering::SeqCst) {
                let skip = backend.skips.fetch_add(1, Ordering::SeqCst) + 1;
                if self.probe_every == 0 || !skip.is_multiple_of(self.probe_every) {
                    continue;
                }
                backend.probes.fetch_add(1, Ordering::SeqCst);
            }
            match self.try_backend(backend, &body) {
                Ok(response) => {
                    if rank > 0 {
                        self.failovers.fetch_add(1, Ordering::SeqCst);
                    }
                    backend.routed.fetch_add(1, Ordering::SeqCst);
                    backend.mark_ok();
                    return with_id(response, id);
                }
                Err(err) => {
                    last = format!("{}: {err}", backend.name);
                    backend.mark_failure(self.fail_threshold);
                }
            }
        }
        Response::Error {
            id,
            error: ServiceError::Internal,
            message: format!(
                "every backend failed this job (last: {last}); submission is idempotent, \
                 retry is safe"
            ),
        }
    }

    /// One backend's worth of attempts: transient backend errors
    /// (overloaded, a panicked worker) retry here under the fleet's
    /// backoff; a draining backend or exhausted attempts return `Err`,
    /// which the caller turns into a failover. A transport error retries
    /// too — the pooled connection may simply have gone stale — but a
    /// *connect* failure aborts immediately (the backend is down; make
    /// the failover fast).
    fn try_backend(&self, backend: &Backend, body: &RequestBody) -> Result<Response, String> {
        let attempts = self.retry.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                thread::sleep(self.retry.backoff(attempt - 1));
            }
            let conn = backend.pool.get().map_err(|e| {
                if last.is_empty() {
                    e.clone()
                } else {
                    format!("{e} (after: {last})")
                }
            })?;
            let id = self.next_upstream.fetch_add(1, Ordering::SeqCst) + 1;
            match conn.call(Request { id, body: body.clone() }, self.retry.timeout) {
                Ok(Response::Error { error, message, .. })
                    if matches!(error, ServiceError::Overloaded | ServiceError::Internal) =>
                {
                    last = format!("{}: {message}", error.name());
                }
                Ok(Response::Error { error: ServiceError::ShuttingDown, message, .. }) => {
                    return Err(format!("shutting_down: {message}"));
                }
                Ok(response) => return Ok(response),
                Err(err) => last = err,
            }
        }
        Err(format!("retries exhausted ({last})"))
    }

    /// The `fleet` section of the front-end's metrics snapshot: policy,
    /// fleet-wide routed/failover totals, and per-backend routing +
    /// health counters, in configuration order with a stable field
    /// order.
    pub fn stats_json(&self) -> Json {
        let per_backend = self
            .backends
            .iter()
            .map(|b| {
                Json::Object(vec![
                    ("endpoint".into(), Json::String(b.name.clone())),
                    ("routed".into(), Json::u64(b.routed.load(Ordering::SeqCst))),
                    ("failures".into(), Json::u64(b.failures.load(Ordering::SeqCst))),
                    ("ejections".into(), Json::u64(b.ejections.load(Ordering::SeqCst))),
                    ("probes".into(), Json::u64(b.probes.load(Ordering::SeqCst))),
                    ("ejected".into(), Json::Bool(b.ejected.load(Ordering::SeqCst))),
                ])
            })
            .collect();
        Json::Object(vec![
            ("policy".into(), Json::String(self.policy.name().to_string())),
            ("backends".into(), Json::u64(self.backends.len() as u64)),
            ("routed".into(), Json::u64(self.routed())),
            ("failovers".into(), Json::u64(self.failovers())),
            ("per_backend".into(), Json::Array(per_backend)),
        ])
    }
}

impl Forwarder for Fleet {
    fn run(&self, id: u64, specs: &[JobSpec], deadline_ms: Option<u64>) -> Response {
        // A batch routes by its first job's prefix — sweep drivers keep
        // shared-prefix jobs in the same request, so the first job's
        // prefix is the batch's prefix in the intended workload.
        let key = specs.first().and_then(|spec| spec.prefix_key().ok());
        self.dispatch(id, RequestBody::Run { jobs: specs.to_vec(), deadline_ms }, key)
    }

    fn authenticate(&self, id: u64, spec: &JobSpec, deadline_ms: Option<u64>) -> Response {
        let key = spec.prefix_key().ok();
        self.dispatch(id, RequestBody::Authenticate { job: spec.clone(), deadline_ms }, key)
    }

    fn detect(&self, id: u64, specs: &[DetectSpec], deadline_ms: Option<u64>) -> Response {
        // Detection jobs share their golden master's mesh→slice prefix
        // with plain runs of the same part, so affinity routing lands
        // them on the backend already holding that warm prefix.
        let key = specs.first().and_then(|spec| spec.job.prefix_key().ok());
        self.dispatch(id, RequestBody::Detect { jobs: specs.to_vec(), deadline_ms }, key)
    }

    fn sanitize(&self, id: u64, specs: &[SanitizeSpec], deadline_ms: Option<u64>) -> Response {
        let key = specs.first().and_then(|spec| spec.job.prefix_key().ok());
        self.dispatch(id, RequestBody::Sanitize { jobs: specs.to_vec(), deadline_ms }, key)
    }

    fn stats(&self) -> Option<Json> {
        Some(self.stats_json())
    }
}

/// Rewrites a response's correlation id — upstream responses carry the
/// router's internal ids; the waiting front-end client correlates on its
/// own.
fn with_id(response: Response, id: u64) -> Response {
    match response {
        Response::Pong { .. } => Response::Pong { id },
        Response::Stats { metrics, .. } => Response::Stats { id, metrics },
        Response::Bye { completed, .. } => Response::Bye { id, completed },
        Response::Results { results, .. } => Response::Results { id, results },
        Response::Verdict { verdict, cold_joint_mm2, void_mm3, .. } => {
            Response::Verdict { id, verdict, cold_joint_mm2, void_mm3 }
        }
        Response::Detections { reports, .. } => Response::Detections { id, reports },
        Response::Sanitized { reports, .. } => Response::Sanitized { id, reports },
        Response::Error { error, message, .. } => Response::Error { id, error, message },
    }
}

/// A fleet whose retry policy suits in-process tests: fast backoff, a
/// generous per-call timeout.
#[cfg(test)]
fn test_fleet(endpoints: Vec<Endpoint>, policy: RoutePolicy) -> Fleet {
    use std::time::Duration;
    let retry = RetryPolicy {
        attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        ..RetryPolicy::default()
    };
    Fleet::new(endpoints, 1, policy, 2, 4, retry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named_fleet(names: &[&str], policy: RoutePolicy) -> Fleet {
        test_fleet(
            names.iter().map(|n| Endpoint::Tcp((*n).to_string())).collect(),
            policy,
        )
    }

    fn key(n: u64) -> StageKey {
        StageKey::from_words([n, n.wrapping_mul(0x9e37_79b9_7f4a_7c15)])
    }

    #[test]
    fn rendezvous_order_is_deterministic_and_key_dependent() {
        let fleet = named_fleet(&["a:1", "b:1", "c:1", "d:1"], RoutePolicy::Affinity);
        for n in 0..64 {
            assert_eq!(
                fleet.order_for(Some(key(n))),
                fleet.order_for(Some(key(n))),
                "same key must give the same order"
            );
        }
        // Different keys spread across homes: with 4 backends and 64
        // keys, every backend should own at least one.
        let mut owners = [0u32; 4];
        for n in 0..64 {
            owners[fleet.order_for(Some(key(n)))[0]] += 1;
        }
        assert!(
            owners.iter().all(|&c| c > 0),
            "rendezvous left a backend with no keys: {owners:?}"
        );
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        // The minimal-disruption property that justifies rendezvous over
        // a modulo ring: drop backend `d` and every key NOT homed on `d`
        // keeps its home.
        let full = named_fleet(&["a:1", "b:1", "c:1", "d:1"], RoutePolicy::Affinity);
        let reduced = named_fleet(&["a:1", "b:1", "c:1"], RoutePolicy::Affinity);
        for n in 0..128 {
            let home = full.order_for(Some(key(n)))[0];
            if home == 3 {
                continue; // owned by the removed backend; allowed to move
            }
            let kept = reduced.order_for(Some(key(n)))[0];
            assert_eq!(
                full.backends[home].name, reduced.backends[kept].name,
                "key {n} moved although its home backend survived"
            );
        }
    }

    #[test]
    fn failover_order_is_the_weight_order_tail() {
        let fleet = named_fleet(&["a:1", "b:1", "c:1"], RoutePolicy::Affinity);
        let order = fleet.order_for(Some(key(7)));
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "order must be a permutation");
        // Weights actually descend.
        let weights: Vec<u64> = order
            .iter()
            .map(|&i| Fleet::weight(key(7), &fleet.backends[i].name))
            .collect();
        assert!(weights.windows(2).all(|w| w[0] >= w[1]), "{weights:?}");
    }

    #[test]
    fn round_robin_rotates_evenly() {
        let fleet = named_fleet(&["a:1", "b:1", "c:1"], RoutePolicy::RoundRobin);
        let mut counts = [0u32; 3];
        for _ in 0..30 {
            counts[fleet.order_for(None)[0]] += 1;
        }
        assert_eq!(counts, [10, 10, 10]);
    }

    #[test]
    fn ejection_needs_threshold_and_probing_readmits() {
        let fleet = named_fleet(&["a:1", "b:1"], RoutePolicy::Affinity);
        let b = &fleet.backends[0];
        b.mark_failure(2);
        assert!(!b.ejected.load(Ordering::SeqCst), "one failure must not eject");
        b.mark_failure(2);
        assert!(b.ejected.load(Ordering::SeqCst), "threshold reached");
        assert_eq!(b.ejections.load(Ordering::SeqCst), 1);
        b.mark_ok();
        assert!(!b.ejected.load(Ordering::SeqCst), "success re-admits");
        assert_eq!(b.consecutive_failures.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn with_id_rewrites_every_variant() {
        let cases = [
            Response::Pong { id: 9 },
            Response::Stats { id: 9, metrics: Json::Null },
            Response::Bye { id: 9, completed: 3 },
            Response::Results { id: 9, results: vec![] },
            Response::Verdict {
                id: 9,
                verdict: "genuine".into(),
                cold_joint_mm2: 0.0,
                void_mm3: 0.0,
            },
            Response::Detections { id: 9, reports: vec![Json::Null] },
            Response::Sanitized { id: 9, reports: vec![] },
            Response::Error { id: 9, error: ServiceError::Job, message: "x".into() },
        ];
        for case in cases {
            assert_eq!(with_id(case, 42).id(), 42);
        }
    }

    #[test]
    fn fleet_stats_json_has_stable_shape() {
        let fleet = named_fleet(&["a:1", "b:1"], RoutePolicy::Affinity);
        fleet.backends[1].routed.fetch_add(5, Ordering::SeqCst);
        let json = fleet.stats_json().render();
        assert!(json.contains("\"policy\":\"affinity\""), "{json}");
        assert!(json.contains("\"backends\":2"), "{json}");
        assert!(json.contains("\"endpoint\":\"tcp:b:1\",\"routed\":5"), "{json}");
        let policy_at = json.find("\"policy\"").expect("policy");
        let routed_at = json.find("\"routed\"").expect("routed");
        let per_at = json.find("\"per_backend\"").expect("per_backend");
        assert!(policy_at < routed_at && routed_at < per_at);
    }
}
