//! Pipelined persistent connections to one backend daemon.
//!
//! The router multiplexes many concurrent front-end jobs onto a small
//! pool of long-lived backend connections. Each [`PipelinedConn`] allows
//! **multiple requests in flight at once**: callers serialize their
//! frame writes under a mutex, a dedicated reader thread decodes every
//! response frame and hands it to the caller waiting on that request id,
//! and ids are process-unique so two router workers sharing one
//! connection can never collide. The connection negotiates the compact
//! binary codec on open (falling back to JSON against a `--json-only`
//! backend) so the router-to-backend hop pays binary framing costs, not
//! JSON ones.
//!
//! Death is explicit and sticky: a transport error, an undecodable
//! frame, a response timeout, or EOF marks the connection dead, wakes
//! the reader (socket shutdown), and drops every pending sender so all
//! stalled callers fail fast instead of waiting out their timeouts. The
//! pool replaces dead connections lazily on next checkout.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use am_service::{
    decode_hello, encode_hello, is_binary_hello, read_frame, write_frame, Codec, Endpoint,
    Request, Response, BINARY_VERSION,
};

/// How long codec negotiation on a fresh connection may take before the
/// open fails (a backend that accepts but never answers its hello).
const NEGOTIATE_TIMEOUT: Duration = Duration::from_secs(10);

/// Locks a mutex, recovering from poison (all guarded state here stays
/// consistent across a panicking holder).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A duplex byte stream to a backend — TCP or Unix socket — that can be
/// split into independently owned read and write halves.
enum Duplex {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Duplex {
    fn connect(endpoint: &Endpoint) -> io::Result<Duplex> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                let _ = stream.set_nodelay(true);
                Ok(Duplex::Tcp(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                Ok(Duplex::Unix(std::os::unix::net::UnixStream::connect(path)?))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            )),
        }
    }

    fn try_clone(&self) -> io::Result<Duplex> {
        match self {
            Duplex::Tcp(s) => s.try_clone().map(Duplex::Tcp),
            #[cfg(unix)]
            Duplex::Unix(s) => s.try_clone().map(Duplex::Unix),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Duplex::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Duplex::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Closes both directions, waking a reader blocked in `read`.
    fn shutdown(&self) {
        match self {
            Duplex::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Duplex::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Duplex {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Duplex::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Duplex::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Duplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Duplex::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Duplex::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Duplex::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Duplex::Unix(s) => s.flush(),
        }
    }
}

/// Requests in flight on one connection: id → the waiting caller's
/// sender. Dropping a sender fails that caller's `recv` immediately.
type Pending = Arc<Mutex<HashMap<u64, Sender<Response>>>>;

/// One persistent backend connection carrying multiple concurrent
/// requests (see the module docs for the full protocol).
pub(crate) struct PipelinedConn {
    writer: Mutex<Duplex>,
    /// Kept outside the writer mutex so `kill` can close the socket even
    /// while another caller holds the writer for a stalled write.
    ctrl: Duplex,
    codec: Codec,
    pending: Pending,
    dead: Arc<AtomicBool>,
}

impl PipelinedConn {
    /// Connects, negotiates the binary codec (JSON fallback against a
    /// refusing backend), and spawns the reader thread.
    pub(crate) fn open(endpoint: &Endpoint) -> Result<PipelinedConn, String> {
        let mut stream = Duplex::connect(endpoint).map_err(|e| format!("connect failed: {e}"))?;
        stream
            .set_read_timeout(Some(NEGOTIATE_TIMEOUT))
            .map_err(|e| format!("socket setup failed: {e}"))?;
        let codec = negotiate(&mut stream)?;
        stream
            .set_read_timeout(None)
            .map_err(|e| format!("socket setup failed: {e}"))?;

        let reader_half = stream.try_clone().map_err(|e| format!("socket clone failed: {e}"))?;
        let ctrl = stream.try_clone().map_err(|e| format!("socket clone failed: {e}"))?;
        let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
        let dead = Arc::new(AtomicBool::new(false));
        {
            let pending = Arc::clone(&pending);
            let dead = Arc::clone(&dead);
            thread::spawn(move || reader_loop(reader_half, codec, pending, dead));
        }
        Ok(PipelinedConn { writer: Mutex::new(stream), ctrl, codec, pending, dead })
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Marks the connection dead and closes the socket; the reader
    /// thread then exits and drops every pending sender.
    fn kill(&self) {
        if !self.dead.swap(true, Ordering::SeqCst) {
            self.ctrl.shutdown();
        }
    }

    /// Sends one request and waits up to `timeout` for its response.
    /// Safe to call from many threads at once — responses are matched by
    /// id, so interleaved completions go to the right callers.
    ///
    /// # Errors
    ///
    /// Transport failures, a dead connection, or the timeout expiring —
    /// all of which also kill the connection (a response that can no
    /// longer be matched to a waiter must not be reassigned to a later
    /// request reusing the slot).
    pub(crate) fn call(&self, request: Request, timeout: Duration) -> Result<Response, String> {
        if self.is_dead() {
            return Err("connection is dead".to_string());
        }
        let id = request.id;
        let (tx, rx) = mpsc::channel();
        lock(&self.pending).insert(id, tx);
        let payload = self.codec.encode_request(&request);
        let written = {
            let mut writer = lock(&self.writer);
            write_frame(&mut *writer, &payload)
        };
        if let Err(e) = written {
            lock(&self.pending).remove(&id);
            self.kill();
            return Err(format!("send failed: {e}"));
        }
        match rx.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(RecvTimeoutError::Timeout) => {
                lock(&self.pending).remove(&id);
                self.kill();
                Err(format!("no response within {timeout:?}"))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err("the backend closed the connection".to_string())
            }
        }
    }
}

impl Drop for PipelinedConn {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Binary hello on a fresh stream: an echoed hello means binary; a typed
/// `bad_codec` refusal means the backend is JSON-only and the connection
/// continues in JSON.
fn negotiate(stream: &mut Duplex) -> Result<Codec, String> {
    write_frame(stream, &encode_hello(BINARY_VERSION)).map_err(|e| format!("hello send: {e}"))?;
    let frame = read_frame(stream)
        .map_err(|e| format!("hello receive: {e}"))?
        .ok_or("the backend closed the connection during codec negotiation")?;
    if is_binary_hello(&frame) {
        let version = decode_hello(&frame)?;
        if version != BINARY_VERSION {
            return Err(format!(
                "backend acknowledged binary version {version}, expected {BINARY_VERSION}"
            ));
        }
        return Ok(Codec::Binary);
    }
    match Response::decode(&frame) {
        Ok(Response::Error { .. }) => Ok(Codec::Json),
        Ok(other) => Err(format!("expected a hello ack, got {other:?}")),
        Err(e) => Err(format!("undecodable negotiation reply: {e}")),
    }
}

/// Reader thread: decode response frames, route each to its waiter. Any
/// failure (EOF, transport error, undecodable frame) ends the
/// connection; clearing the pending map drops every sender, failing all
/// stalled callers immediately.
fn reader_loop(mut stream: Duplex, codec: Codec, pending: Pending, dead: Arc<AtomicBool>) {
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let response = match codec.decode_response(&frame) {
            Ok(response) => response,
            Err(_) => break,
        };
        if let Some(tx) = lock(&pending).remove(&response.id()) {
            let _ = tx.send(response);
        }
    }
    dead.store(true, Ordering::SeqCst);
    lock(&pending).clear();
}

/// A fixed-width pool of [`PipelinedConn`]s to one backend. Checkouts
/// rotate across slots; a dead slot is reconnected lazily. Because each
/// connection pipelines, pool width bounds socket count, not request
/// concurrency.
pub(crate) struct ConnPool {
    endpoint: Endpoint,
    slots: Vec<Mutex<Option<Arc<PipelinedConn>>>>,
    next: AtomicUsize,
}

impl ConnPool {
    pub(crate) fn new(endpoint: Endpoint, width: usize) -> ConnPool {
        let slots = (0..width.max(1)).map(|_| Mutex::new(None)).collect();
        ConnPool { endpoint, slots, next: AtomicUsize::new(0) }
    }

    /// Checks out a live connection from the next slot, reconnecting a
    /// missing or dead one.
    ///
    /// # Errors
    ///
    /// Connection or negotiation failure — the caller treats this as the
    /// backend being down and fails over.
    pub(crate) fn get(&self) -> Result<Arc<PipelinedConn>, String> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let mut slot = lock(&self.slots[i]);
        if let Some(conn) = slot.as_ref() {
            if !conn.is_dead() {
                return Ok(Arc::clone(conn));
            }
        }
        let fresh = Arc::new(PipelinedConn::open(&self.endpoint)?);
        *slot = Some(Arc::clone(&fresh));
        Ok(fresh)
    }
}
