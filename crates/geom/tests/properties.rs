//! Property-based tests for the geometric foundation.

use am_geom::spline::{chain_mismatch, vertex_mismatch};
use am_geom::{
    CubicBezier, Point2, Point3, Polygon2, Segment2, SubdivisionParams, Tolerance, Transform3,
    Triangle3, Vec2, Vec3,
};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

fn vec2() -> impl Strategy<Value = Vec2> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Vec2::new(x, y))
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite_coord(), finite_coord(), finite_coord()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn vec3_cross_is_orthogonal(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-6 * (1.0 + a.length() * b.length() * a.length()));
        prop_assert!(c.dot(b).abs() < 1e-6 * (1.0 + a.length() * b.length() * b.length()));
    }

    #[test]
    fn vec2_cross_antisymmetric(a in vec2(), b in vec2()) {
        prop_assert!((a.cross(b) + b.cross(a)).abs() < 1e-9);
    }

    #[test]
    fn rigid_transform_preserves_distance(
        p in vec3(), q in vec3(),
        ax in -3.0..3.0f64, az in -3.0..3.0f64, t in vec3(),
    ) {
        let m = Transform3::rotation_x(ax)
            .then(&Transform3::rotation_z(az))
            .then(&Transform3::translation(t));
        let d0 = p.distance(q);
        let d1 = m.apply(p).distance(m.apply(q));
        prop_assert!((d0 - d1).abs() < 1e-9 * (1.0 + d0));
    }

    #[test]
    fn transform_inverse_round_trip(
        p in vec3(), ax in -3.0..3.0f64, ay in -3.0..3.0f64, t in vec3(),
    ) {
        let m = Transform3::rotation_x(ax)
            .then(&Transform3::rotation_y(ay))
            .then(&Transform3::translation(t));
        let back = m.inverse().apply(m.apply(p));
        prop_assert!(back.approx_eq(p, Tolerance::new(1e-6)));
    }

    #[test]
    fn triangle_flip_negates_normal(a in vec3(), b in vec3(), c in vec3()) {
        let t = Triangle3::new(a, b, c);
        if let (Some(n), Some(m)) = (t.normal(), t.flipped().normal()) {
            prop_assert!(n.approx_eq(-m, Tolerance::new(1e-6)));
        }
    }

    #[test]
    fn triangle_area_invariant_under_rotation(
        a in vec3(), b in vec3(), c in vec3(), angle in -3.0..3.0f64,
    ) {
        let t = Triangle3::new(a, b, c);
        let r = t.transformed(&Transform3::rotation_z(angle));
        prop_assert!((t.area() - r.area()).abs() < 1e-6 * (1.0 + t.area()));
    }

    #[test]
    fn polygon_reversal_negates_signed_area(
        pts in proptest::collection::vec(vec2(), 3..12),
    ) {
        let poly = Polygon2::new(pts);
        let rev = poly.reversed();
        prop_assert!((poly.signed_area() + rev.signed_area()).abs() < 1e-6);
    }

    #[test]
    fn polygon_translation_preserves_area(
        pts in proptest::collection::vec(vec2(), 3..12), d in vec2(),
    ) {
        let poly = Polygon2::new(pts.clone());
        let moved = Polygon2::new(pts.into_iter().map(|p| p + d).collect());
        prop_assert!((poly.signed_area() - moved.signed_area()).abs() < 1e-5);
    }

    #[test]
    fn segment_distance_is_symmetric_under_reversal(s0 in vec2(), s1 in vec2(), p in vec2()) {
        let a = Segment2::new(s0, s1);
        let b = Segment2::new(s1, s0);
        prop_assert!((a.distance_to_point(p) - b.distance_to_point(p)).abs() < 1e-9);
    }

    #[test]
    fn bezier_subdivision_stays_within_deviation(
        p0 in vec2(), p1 in vec2(), p2 in vec2(), p3 in vec2(),
        dev in 0.01..1.0f64,
    ) {
        let c = CubicBezier::new(p0, p1, p2, p3);
        let params = SubdivisionParams::new(1.0, dev);
        let chain = c.subdivide(&params);
        prop_assert!(chain.len() >= 2);
        // Every sampled curve point lies within `dev` of the chain.
        for i in 0..=64 {
            let p = c.point_at(i as f64 / 64.0);
            let d = chain
                .windows(2)
                .map(|w| Segment2::new(w[0], w[1]).distance_to_point(p))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(d <= dev + 1e-6, "deviation {d} > {dev}");
        }
    }

    #[test]
    fn bezier_split_preserves_endpoints(
        p0 in vec2(), p1 in vec2(), p2 in vec2(), p3 in vec2(), t in 0.05..0.95f64,
    ) {
        let c = CubicBezier::new(p0, p1, p2, p3);
        let (a, b) = c.split(t);
        prop_assert!(a.start().approx_eq(c.start(), Tolerance::new(1e-9)));
        prop_assert!(b.end().approx_eq(c.end(), Tolerance::new(1e-9)));
        prop_assert!(a.end().approx_eq(c.point_at(t), Tolerance::new(1e-6)));
    }

    #[test]
    fn mismatch_metrics_are_symmetric(
        a in proptest::collection::vec(vec2(), 2..10),
        b in proptest::collection::vec(vec2(), 2..10),
    ) {
        prop_assert!((chain_mismatch(&a, &b) - chain_mismatch(&b, &a)).abs() < 1e-12);
        prop_assert!((vertex_mismatch(&a, &b) - vertex_mismatch(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn z_plane_intersection_points_lie_on_plane(
        a in vec3(), b in vec3(), c in vec3(), z in -50.0..50.0f64,
    ) {
        let t = Triangle3::new(a, b, c);
        if let Some((p, q)) = t.intersect_z_plane(z) {
            prop_assert!((p.z - z).abs() < 1e-9);
            prop_assert!((q.z - z).abs() < 1e-9);
            prop_assert!(p.distance(q) > 0.0);
        }
    }

    #[test]
    fn aabb_contains_its_generators(pts in proptest::collection::vec(vec3(), 1..16)) {
        let b = am_geom::Aabb3::from_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(b.contains(*p));
        }
    }
}

#[test]
fn point2_is_point3_projection_consistency() {
    let p = Point3::new(1.0, 2.0, 3.0);
    let q: Point2 = p.to_2d();
    assert_eq!(q.to_3d(3.0), p);
}
