//! Rigid-body transforms (rotation + translation).

use crate::{Point3, Vec3};

/// A rigid transform: a 3×3 rotation matrix followed by a translation.
///
/// Print orientations (Fig. 6 of the paper) are modeled as rigid transforms
/// applied to a mesh before slicing, so this type deliberately supports only
/// rotations and translations — no scaling or shear, which would alter part
/// dimensions.
///
/// # Examples
///
/// ```
/// use am_geom::{Transform3, Vec3};
///
/// // The x-z print orientation: stand the part on its long edge by
/// // rotating 90° about the x axis.
/// let t = Transform3::rotation_x(std::f64::consts::FRAC_PI_2);
/// let p = t.apply(Vec3::new(0.0, 1.0, 0.0));
/// assert!(p.approx_eq(Vec3::new(0.0, 0.0, 1.0), 1e-12.into()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transform3 {
    /// Row-major 3×3 rotation matrix.
    rows: [Vec3; 3],
    /// Translation applied after rotation.
    translation: Vec3,
}

impl Transform3 {
    /// The row-major rotation rows and the translation — the raw parts a
    /// serialization layer needs to reconstruct this transform
    /// bit-identically (see [`Transform3::from_raw`]).
    pub fn to_raw(&self) -> ([Vec3; 3], Vec3) {
        (self.rows, self.translation)
    }

    /// Rebuilds a transform from [`Transform3::to_raw`] parts. The rows
    /// are taken verbatim; no orthonormality is enforced, so only feed
    /// this values produced by `to_raw`.
    pub fn from_raw(rows: [Vec3; 3], translation: Vec3) -> Self {
        Transform3 { rows, translation }
    }

    /// The identity transform.
    pub fn identity() -> Self {
        Transform3 {
            rows: [Vec3::X, Vec3::Y, Vec3::Z],
            translation: Vec3::ZERO,
        }
    }

    /// Pure translation by `t`.
    pub fn translation(t: Vec3) -> Self {
        Transform3 { translation: t, ..Transform3::identity() }
    }

    /// Rotation by `angle` radians about the +x axis (right-hand rule).
    pub fn rotation_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Transform3 {
            rows: [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, c, -s),
                Vec3::new(0.0, s, c),
            ],
            translation: Vec3::ZERO,
        }
    }

    /// Rotation by `angle` radians about the +y axis (right-hand rule).
    pub fn rotation_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Transform3 {
            rows: [
                Vec3::new(c, 0.0, s),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(-s, 0.0, c),
            ],
            translation: Vec3::ZERO,
        }
    }

    /// Rotation by `angle` radians about the +z axis (right-hand rule).
    pub fn rotation_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Transform3 {
            rows: [
                Vec3::new(c, -s, 0.0),
                Vec3::new(s, c, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            translation: Vec3::ZERO,
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point3) -> Point3 {
        Vec3::new(self.rows[0].dot(p), self.rows[1].dot(p), self.rows[2].dot(p))
            + self.translation
    }

    /// Applies only the rotation part (correct for direction vectors and
    /// normals, since the transform is rigid).
    pub fn apply_vector(&self, v: Vec3) -> Vec3 {
        Vec3::new(self.rows[0].dot(v), self.rows[1].dot(v), self.rows[2].dot(v))
    }

    /// Composition: `self.then(&b)` applies `self` first, then `b`.
    pub fn then(&self, b: &Transform3) -> Transform3 {
        // Rows of the combined rotation: b.R * self.R.
        let col = |j: usize| {
            Vec3::new(
                match j {
                    0 => self.rows[0].x,
                    1 => self.rows[0].y,
                    _ => self.rows[0].z,
                },
                match j {
                    0 => self.rows[1].x,
                    1 => self.rows[1].y,
                    _ => self.rows[1].z,
                },
                match j {
                    0 => self.rows[2].x,
                    1 => self.rows[2].y,
                    _ => self.rows[2].z,
                },
            )
        };
        let rows = [
            Vec3::new(b.rows[0].dot(col(0)), b.rows[0].dot(col(1)), b.rows[0].dot(col(2))),
            Vec3::new(b.rows[1].dot(col(0)), b.rows[1].dot(col(1)), b.rows[1].dot(col(2))),
            Vec3::new(b.rows[2].dot(col(0)), b.rows[2].dot(col(1)), b.rows[2].dot(col(2))),
        ];
        Transform3 { rows, translation: b.apply(self.translation) }
    }

    /// The inverse transform (cheap: the rotation is orthonormal).
    pub fn inverse(&self) -> Transform3 {
        // R⁻¹ = Rᵀ; rows of Rᵀ are columns of R.
        let rows = [
            Vec3::new(self.rows[0].x, self.rows[1].x, self.rows[2].x),
            Vec3::new(self.rows[0].y, self.rows[1].y, self.rows[2].y),
            Vec3::new(self.rows[0].z, self.rows[1].z, self.rows[2].z),
        ];
        let inv = Transform3 { rows, translation: Vec3::ZERO };
        let t = inv.apply_vector(-self.translation);
        Transform3 { rows, translation: t }
    }
}

impl Default for Transform3 {
    fn default() -> Self {
        Transform3::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tolerance;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_close(a: Vec3, b: Vec3) {
        assert!(a.approx_eq(b, Tolerance::new(1e-12)), "{a} != {b}");
    }

    #[test]
    fn identity_is_noop() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Transform3::identity().apply(p), p);
    }

    #[test]
    fn rotation_x_quarter_turn() {
        let t = Transform3::rotation_x(FRAC_PI_2);
        assert_close(t.apply(Vec3::Y), Vec3::Z);
        assert_close(t.apply(Vec3::Z), -Vec3::Y);
        assert_close(t.apply(Vec3::X), Vec3::X);
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let t = Transform3::rotation_y(FRAC_PI_2);
        assert_close(t.apply(Vec3::Z), Vec3::X);
        assert_close(t.apply(Vec3::X), -Vec3::Z);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let t = Transform3::rotation_z(FRAC_PI_2);
        assert_close(t.apply(Vec3::X), Vec3::Y);
        assert_close(t.apply(Vec3::Y), -Vec3::X);
    }

    #[test]
    fn translation_moves_points_not_vectors() {
        let t = Transform3::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.apply(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.apply_vector(Vec3::X), Vec3::X);
    }

    #[test]
    fn composition_order() {
        // Rotate 90° about z, then translate +x.
        let t = Transform3::rotation_z(FRAC_PI_2).then(&Transform3::translation(Vec3::X));
        assert_close(t.apply(Vec3::X), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn inverse_round_trips() {
        let t = Transform3::rotation_x(0.3)
            .then(&Transform3::rotation_z(1.1))
            .then(&Transform3::translation(Vec3::new(4.0, -2.0, 0.5)));
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_close(t.inverse().apply(t.apply(p)), p);
        assert_close(t.apply(t.inverse().apply(p)), p);
    }

    #[test]
    fn full_turn_is_identity() {
        let t = Transform3::rotation_y(2.0 * PI);
        let p = Vec3::new(0.1, 0.2, 0.3);
        assert_close(t.apply(p), p);
    }

    #[test]
    fn rigid_transform_preserves_length() {
        let t = Transform3::rotation_x(0.7).then(&Transform3::rotation_y(-1.2));
        let v = Vec3::new(3.0, -1.0, 2.0);
        assert!((t.apply_vector(v).length() - v.length()).abs() < 1e-12);
    }
}
