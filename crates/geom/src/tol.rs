//! Tolerance-aware floating-point comparison.

use std::fmt;

/// An absolute length tolerance used by approximate geometric predicates.
///
/// All coordinates in the toolchain are in **millimetres**, so the default
/// tolerance of `1e-9` mm is far below any manufacturable feature while still
/// absorbing accumulated floating-point error.
///
/// # Examples
///
/// ```
/// use am_geom::Tolerance;
///
/// let tol = Tolerance::default();
/// assert!(tol.eq(1.0, 1.0 + 1e-12));
/// assert!(!tol.eq(1.0, 1.0 + 1e-6));
///
/// let loose = Tolerance::new(1e-3);
/// assert!(loose.eq(1.0, 1.0 + 1e-6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Tolerance(f64);

impl Tolerance {
    /// Creates a tolerance of `eps` millimetres.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or not finite.
    pub fn new(eps: f64) -> Self {
        assert!(eps.is_finite() && eps >= 0.0, "tolerance must be finite and non-negative");
        Tolerance(eps)
    }

    /// The tolerance value in millimetres.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` if `a` and `b` differ by at most the tolerance.
    pub fn eq(self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.0
    }

    /// Returns `true` if `a` is within the tolerance of zero.
    pub fn is_zero(self, a: f64) -> bool {
        a.abs() <= self.0
    }

    /// Returns `true` if `a` is less than `b` by more than the tolerance.
    pub fn lt(self, a: f64, b: f64) -> bool {
        b - a > self.0
    }

    /// Returns `true` if `a` exceeds `b` by more than the tolerance.
    pub fn gt(self, a: f64, b: f64) -> bool {
        a - b > self.0
    }
}

impl Default for Tolerance {
    /// The default geometric tolerance: `1e-9` mm.
    fn default() -> Self {
        Tolerance(1e-9)
    }
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "±{} mm", self.0)
    }
}

impl From<f64> for Tolerance {
    fn from(eps: f64) -> Self {
        Tolerance::new(eps)
    }
}

/// Convenience free function: `a` and `b` are equal under the default
/// [`Tolerance`].
///
/// # Examples
///
/// ```
/// assert!(am_geom::approx_eq(0.1 + 0.2, 0.3));
/// ```
pub fn approx_eq(a: f64, b: f64) -> bool {
    Tolerance::default().eq(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_tight() {
        let t = Tolerance::default();
        assert!(t.eq(1.0, 1.0));
        assert!(t.eq(1.0, 1.0 + 5e-10));
        assert!(!t.eq(1.0, 1.0 + 2e-9));
    }

    #[test]
    fn ordering_predicates_respect_band() {
        let t = Tolerance::new(0.01);
        assert!(t.lt(1.0, 1.1));
        assert!(!t.lt(1.0, 1.005));
        assert!(t.gt(1.1, 1.0));
        assert!(!t.gt(1.005, 1.0));
    }

    #[test]
    fn is_zero_symmetric() {
        let t = Tolerance::new(1e-6);
        assert!(t.is_zero(5e-7));
        assert!(t.is_zero(-5e-7));
        assert!(!t.is_zero(2e-6));
    }

    #[test]
    #[should_panic(expected = "tolerance must be finite")]
    fn negative_tolerance_panics() {
        let _ = Tolerance::new(-1.0);
    }

    #[test]
    fn from_f64() {
        let t: Tolerance = 0.5.into();
        assert_eq!(t.value(), 0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tolerance::new(0.001).to_string(), "±0.001 mm");
    }
}
