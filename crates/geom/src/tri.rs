//! 3-D triangles — the unit of STL tessellation.

use crate::{Aabb3, Point3, Tolerance, Transform3, Vec3};

/// A triangle in 3-D space, stored as three vertices in counter-clockwise
/// order when viewed from the outside (the STL facet convention: the
/// right-hand-rule normal points out of the solid).
///
/// # Examples
///
/// ```
/// use am_geom::{Point3, Triangle3, Vec3};
///
/// let t = Triangle3::new(
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(1.0, 0.0, 0.0),
///     Point3::new(0.0, 1.0, 0.0),
/// );
/// assert_eq!(t.normal().unwrap(), Vec3::Z);
/// assert_eq!(t.area(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle3 {
    /// The three vertices, counter-clockwise seen from outside.
    pub vertices: [Point3; 3],
}

impl Triangle3 {
    /// Creates a triangle from three vertices.
    pub const fn new(a: Point3, b: Point3, c: Point3) -> Self {
        Triangle3 { vertices: [a, b, c] }
    }

    /// First vertex.
    pub fn a(&self) -> Point3 {
        self.vertices[0]
    }

    /// Second vertex.
    pub fn b(&self) -> Point3 {
        self.vertices[1]
    }

    /// Third vertex.
    pub fn c(&self) -> Point3 {
        self.vertices[2]
    }

    /// The (non-normalized) area vector `(b-a) × (c-a)`; its length is twice
    /// the triangle area and its direction is the facet normal.
    pub fn area_vector(&self) -> Vec3 {
        (self.b() - self.a()).cross(self.c() - self.a())
    }

    /// Triangle area.
    pub fn area(&self) -> f64 {
        self.area_vector().length() * 0.5
    }

    /// Unit facet normal by the right-hand rule, or `None` if the triangle
    /// is degenerate (zero area).
    pub fn normal(&self) -> Option<Vec3> {
        self.area_vector().normalized()
    }

    /// Centroid of the triangle.
    pub fn centroid(&self) -> Point3 {
        (self.a() + self.b() + self.c()) / 3.0
    }

    /// `true` if the triangle's area is below `tol`² (degenerate sliver or
    /// repeated vertices).
    pub fn is_degenerate(&self, tol: Tolerance) -> bool {
        self.area() <= tol.value() * tol.value()
    }

    /// The triangle with reversed winding (flipped normal).
    ///
    /// Used when emitting cavity-oriented shells: the paper's Table 3
    /// observation hinges entirely on facet-normal orientation.
    pub fn flipped(&self) -> Triangle3 {
        Triangle3::new(self.a(), self.c(), self.b())
    }

    /// Bounding box of the triangle.
    pub fn aabb(&self) -> Aabb3 {
        Aabb3::from_points(self.vertices).expect("triangle has vertices")
    }

    /// The triangle transformed by a rigid transform.
    pub fn transformed(&self, t: &Transform3) -> Triangle3 {
        Triangle3::new(t.apply(self.a()), t.apply(self.b()), t.apply(self.c()))
    }

    /// Signed volume of the tetrahedron (origin, a, b, c) — summing this over
    /// a closed, consistently outward-oriented mesh gives the solid volume.
    pub fn signed_volume(&self) -> f64 {
        self.a().dot(self.b().cross(self.c())) / 6.0
    }

    /// Intersects the triangle with the horizontal plane `z = z0`.
    ///
    /// Returns the segment of intersection as a pair of points, or `None`
    /// if the plane misses the triangle or only touches a vertex/edge in a
    /// degenerate way. Triangles lying entirely in the plane return `None`
    /// (slicers handle coplanar facets via the neighbouring geometry).
    pub fn intersect_z_plane(&self, z0: f64) -> Option<(Point3, Point3)> {
        let d: Vec<f64> = self.vertices.iter().map(|v| v.z - z0).collect();
        // All on one side (strictly): no intersection.
        if d.iter().all(|&x| x > 0.0) || d.iter().all(|&x| x < 0.0) {
            return None;
        }
        // Coplanar triangle: skip.
        if d.iter().all(|&x| x == 0.0) {
            return None;
        }
        let mut pts: Vec<Point3> = Vec::with_capacity(2);
        for i in 0..3 {
            let j = (i + 1) % 3;
            let (di, dj) = (d[i], d[j]);
            let (pi, pj) = (self.vertices[i], self.vertices[j]);
            if di == 0.0 {
                push_unique(&mut pts, pi);
            }
            if (di > 0.0 && dj < 0.0) || (di < 0.0 && dj > 0.0) {
                let t = di / (di - dj);
                push_unique(&mut pts, pi.lerp(pj, t));
            }
        }
        if pts.len() == 2 {
            let (p, q) = (pts[0], pts[1]);
            if p.approx_eq(q, Tolerance::default()) {
                None
            } else {
                Some((p, q))
            }
        } else {
            None
        }
    }
}

fn push_unique(pts: &mut Vec<Point3>, p: Point3) {
    if !pts.iter().any(|q| q.approx_eq(p, Tolerance::default())) {
        pts.push(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tri() -> Triangle3 {
        Triangle3::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn normal_follows_right_hand_rule() {
        assert_eq!(unit_tri().normal().unwrap(), Vec3::Z);
        assert_eq!(unit_tri().flipped().normal().unwrap(), -Vec3::Z);
    }

    #[test]
    fn area_and_centroid() {
        let t = unit_tri();
        assert_eq!(t.area(), 0.5);
        let c = t.centroid();
        assert!(c.approx_eq(Point3::new(1.0 / 3.0, 1.0 / 3.0, 0.0), Tolerance::new(1e-12)));
    }

    #[test]
    fn degenerate_detection() {
        let t = Triangle3::new(Point3::ZERO, Point3::X, Point3::new(2.0, 0.0, 0.0));
        assert!(t.is_degenerate(Tolerance::new(1e-6)));
        assert!(!unit_tri().is_degenerate(Tolerance::new(1e-6)));
        assert!(t.normal().is_none());
    }

    #[test]
    fn flipping_preserves_area() {
        let t = unit_tri();
        assert_eq!(t.area(), t.flipped().area());
    }

    #[test]
    fn signed_volume_of_closed_tetrahedron() {
        // Tetrahedron with vertices at origin and unit axes: volume 1/6.
        let a = Point3::ZERO;
        let b = Point3::X;
        let c = Point3::Y;
        let d = Point3::Z;
        // Outward-oriented faces.
        let faces = [
            Triangle3::new(a, c, b),
            Triangle3::new(a, b, d),
            Triangle3::new(a, d, c),
            Triangle3::new(b, c, d),
        ];
        let vol: f64 = faces.iter().map(Triangle3::signed_volume).sum();
        assert!((vol - 1.0 / 6.0).abs() < 1e-12, "vol = {vol}");
    }

    #[test]
    fn z_plane_slice_through_middle() {
        let t = Triangle3::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 2.0),
            Point3::new(0.0, 2.0, 2.0),
        );
        let (p, q) = t.intersect_z_plane(1.0).unwrap();
        assert!((p.z - 1.0).abs() < 1e-12);
        assert!((q.z - 1.0).abs() < 1e-12);
        // The chord at z=1 connects (1,0,1) and (0,1,1).
        let expected = [Point3::new(1.0, 0.0, 1.0), Point3::new(0.0, 1.0, 1.0)];
        assert!(
            (p.approx_eq(expected[0], Tolerance::new(1e-9)) && q.approx_eq(expected[1], Tolerance::new(1e-9)))
                || (p.approx_eq(expected[1], Tolerance::new(1e-9)) && q.approx_eq(expected[0], Tolerance::new(1e-9)))
        );
    }

    #[test]
    fn z_plane_misses_triangle() {
        assert!(unit_tri().intersect_z_plane(1.0).is_none());
        assert!(unit_tri().intersect_z_plane(-1.0).is_none());
    }

    #[test]
    fn z_plane_coplanar_returns_none() {
        assert!(unit_tri().intersect_z_plane(0.0).is_none());
    }

    #[test]
    fn z_plane_through_vertex_and_opposite_edge() {
        let t = Triangle3::new(
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(1.0, 0.0, -1.0),
            Point3::new(-1.0, 0.0, -1.0),
        );
        let (p, q) = t.intersect_z_plane(0.0).unwrap();
        assert!((p.z).abs() < 1e-12 && (q.z).abs() < 1e-12);
        assert!((p.distance(q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transform_preserves_area() {
        let t = unit_tri().transformed(
            &Transform3::rotation_x(0.5).then(&Transform3::translation(Vec3::new(1.0, 2.0, 3.0))),
        );
        assert!((t.area() - 0.5).abs() < 1e-12);
    }
}
