//! Infinite planes.

use crate::{Point3, Tolerance, Vec3};

/// An infinite plane `n · p = d` with unit normal `n`.
///
/// # Examples
///
/// ```
/// use am_geom::{Plane, Point3, Vec3};
///
/// let slice = Plane::z(2.0);
/// assert_eq!(slice.signed_distance(Point3::new(5.0, 5.0, 3.5)), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    normal: Vec3,
    offset: f64,
}

impl Plane {
    /// Creates a plane from a (not necessarily unit) normal and a point on
    /// the plane.
    ///
    /// # Panics
    ///
    /// Panics if `normal` has zero length.
    pub fn from_point_normal(point: Point3, normal: Vec3) -> Self {
        let n = normal.normalized().expect("plane normal must be non-zero");
        Plane { normal: n, offset: n.dot(point) }
    }

    /// The horizontal plane `z = z0` (a slicing plane).
    pub fn z(z0: f64) -> Self {
        Plane { normal: Vec3::Z, offset: z0 }
    }

    /// Unit normal of the plane.
    pub fn normal(&self) -> Vec3 {
        self.normal
    }

    /// Offset `d` in `n · p = d`.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Signed distance from `p` to the plane (positive on the normal side).
    pub fn signed_distance(&self, p: Point3) -> f64 {
        self.normal.dot(p) - self.offset
    }

    /// `true` if `p` lies on the plane within `tol`.
    pub fn contains(&self, p: Point3, tol: Tolerance) -> bool {
        tol.is_zero(self.signed_distance(p))
    }

    /// Orthogonal projection of `p` onto the plane.
    pub fn project(&self, p: Point3) -> Point3 {
        p - self.normal * self.signed_distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_plane_distances() {
        let p = Plane::z(1.0);
        assert_eq!(p.signed_distance(Point3::new(0.0, 0.0, 3.0)), 2.0);
        assert_eq!(p.signed_distance(Point3::new(0.0, 0.0, -1.0)), -2.0);
    }

    #[test]
    fn from_point_normal_normalizes() {
        let p = Plane::from_point_normal(Point3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, 10.0));
        assert_eq!(p.normal(), Vec3::Z);
        assert_eq!(p.offset(), 5.0);
    }

    #[test]
    fn projection_lands_on_plane() {
        let p = Plane::from_point_normal(Point3::new(1.0, 1.0, 1.0), Vec3::new(1.0, 1.0, 1.0));
        let q = p.project(Point3::new(4.0, -2.0, 7.0));
        assert!(p.contains(q, Tolerance::new(1e-9)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_normal_panics() {
        let _ = Plane::from_point_normal(Point3::ZERO, Vec3::ZERO);
    }
}
