//! 2-D and 3-D vectors and points (millimetre coordinates).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::Tolerance;

/// A 2-D vector (or point — see [`Point2`]) with `f64` components.
///
/// # Examples
///
/// ```
/// use am_geom::Vec2;
///
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.length(), 5.0);
/// assert_eq!(a.perp(), Vec2::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

/// A 2-D point. Alias of [`Vec2`]; the distinction is documentation only.
pub type Point2 = Vec2;

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    /// Unit vector along +x.
    pub const X: Vec2 = Vec2 { x: 1.0, y: 0.0 };
    /// Unit vector along +y.
    pub const Y: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    ///
    /// Positive when `rhs` is counter-clockwise from `self`.
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).length()
    }

    /// The vector rotated 90° counter-clockwise.
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Unit vector in the same direction, or `None` if the length is below
    /// the default tolerance.
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if Tolerance::default().is_zero(len) {
            None
        } else {
            Some(self / len)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Angle of the vector from +x, in radians, in `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Approximate equality under `tol`.
    pub fn approx_eq(self, other: Vec2, tol: Tolerance) -> bool {
        tol.eq(self.x, other.x) && tol.eq(self.y, other.y)
    }

    /// Lifts the vector into 3-D at height `z`.
    pub fn to_3d(self, z: f64) -> Vec3 {
        Vec3::new(self.x, self.y, z)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, Add::add)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

/// A 3-D vector (or point — see [`Point3`]) with `f64` components.
///
/// # Examples
///
/// ```
/// use am_geom::Vec3;
///
/// let n = Vec3::X.cross(Vec3::Y);
/// assert_eq!(n, Vec3::Z);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

/// A 3-D point. Alias of [`Vec3`]; the distinction is documentation only.
pub type Point3 = Vec3;

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along +x.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along +z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).length()
    }

    /// Unit vector in the same direction, or `None` if the length is below
    /// the default tolerance.
    pub fn normalized(self) -> Option<Vec3> {
        let len = self.length();
        if Tolerance::default().is_zero(len) {
            None
        } else {
            Some(self / len)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Approximate equality under `tol`.
    pub fn approx_eq(self, other: Vec3, tol: Tolerance) -> bool {
        tol.eq(self.x, other.x) && tol.eq(self.y, other.y) && tol.eq(self.z, other.z)
    }

    /// Projects onto the xy-plane, discarding z.
    pub fn to_2d(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Vec3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_products() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn vec2_normalize_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((n.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec2_lerp_endpoints() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -1.0));
    }

    #[test]
    fn vec2_perp_is_ccw() {
        assert_eq!(Vec2::X.perp(), Vec2::Y);
        assert_eq!(Vec2::Y.perp(), -Vec2::X);
    }

    #[test]
    fn vec3_cross_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn vec3_length_and_distance() {
        let a = Vec3::new(1.0, 2.0, 2.0);
        assert_eq!(a.length(), 3.0);
        assert_eq!(a.length_squared(), 9.0);
        assert_eq!(Vec3::ZERO.distance(a), 3.0);
    }

    #[test]
    fn vec3_sum_of_iter() {
        let total: Vec3 = (0..4).map(|i| Vec3::new(i as f64, 0.0, 1.0)).sum();
        assert_eq!(total, Vec3::new(6.0, 0.0, 4.0));
    }

    #[test]
    fn projections_round_trip() {
        let p = Vec3::new(1.5, -2.5, 7.0);
        assert_eq!(p.to_2d().to_3d(7.0), p);
    }

    #[test]
    fn approx_eq_uses_tolerance() {
        let t = Tolerance::new(1e-6);
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(1.0 + 1e-7, 1.0, 1.0 - 1e-7);
        assert!(a.approx_eq(b, t));
        assert!(!a.approx_eq(Vec3::new(1.1, 1.0, 1.0), t));
    }

    #[test]
    fn conversion_from_tuples() {
        let v2: Vec2 = (1.0, 2.0).into();
        let v3: Vec3 = (1.0, 2.0, 3.0).into();
        assert_eq!(v2, Vec2::new(1.0, 2.0));
        assert_eq!(v3, Vec3::new(1.0, 2.0, 3.0));
    }
}
