//! Parametric curves with STL-style adaptive subdivision.
//!
//! STL export approximates every curved edge by a chain of chords. CAD
//! packages expose two tolerances for this (Fig. 5 of the ObfusCADe paper):
//! the maximum **angle** between adjacent chords and the maximum **deviation**
//! (chordal distance) from the true curve. [`SubdivisionParams`] captures both.
//!
//! Crucially for ObfusCADe, two bodies that share the same spline boundary
//! tessellate it **independently** — typically with opposite parameter
//! directions, because the shared curve bounds opposed face loops. The
//! resulting chord breakpoints differ, so triangle corners across the split
//! do not coincide (Fig. 4). [`CubicBezier::subdivide`] reproduces this:
//! subdividing the [reversed](CubicBezier::reversed) curve yields a different
//! point set whenever the curve is asymmetric.

use crate::{Point2, Tolerance, Vec2};

/// Tolerances controlling adaptive curve subdivision (the STL export knobs).
///
/// # Examples
///
/// ```
/// use am_geom::{Point2, CubicBezier, SubdivisionParams};
///
/// let curve = CubicBezier::new(
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 2.0),
///     Point2::new(3.0, -2.0),
///     Point2::new(4.0, 0.0),
/// );
/// let coarse = curve.subdivide(&SubdivisionParams::new(30f64.to_radians(), 0.5));
/// let fine = curve.subdivide(&SubdivisionParams::new(5f64.to_radians(), 0.01));
/// assert!(fine.len() > coarse.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubdivisionParams {
    max_angle: f64,
    max_deviation: f64,
}

impl SubdivisionParams {
    /// Creates subdivision parameters.
    ///
    /// `max_angle` is in radians; `max_deviation` in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if either tolerance is non-positive or not finite.
    pub fn new(max_angle: f64, max_deviation: f64) -> Self {
        assert!(
            max_angle.is_finite() && max_angle > 0.0,
            "max_angle must be positive and finite"
        );
        assert!(
            max_deviation.is_finite() && max_deviation > 0.0,
            "max_deviation must be positive and finite"
        );
        SubdivisionParams { max_angle, max_deviation }
    }

    /// Maximum angle between adjacent chords, radians.
    pub fn max_angle(&self) -> f64 {
        self.max_angle
    }

    /// Maximum chordal deviation from the true curve, millimetres.
    pub fn max_deviation(&self) -> f64 {
        self.max_deviation
    }
}

impl Default for SubdivisionParams {
    /// A mid-grade default: 10° angle, 0.05 mm deviation.
    fn default() -> Self {
        SubdivisionParams::new(10f64.to_radians(), 0.05)
    }
}

/// A planar cubic Bézier curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubicBezier {
    /// Control points `p0..p3`; the curve runs from `p0` to `p3`.
    pub control: [Point2; 4],
}

impl CubicBezier {
    /// Creates a cubic Bézier from its four control points.
    pub const fn new(p0: Point2, p1: Point2, p2: Point2, p3: Point2) -> Self {
        CubicBezier { control: [p0, p1, p2, p3] }
    }

    /// Curve start (`t = 0`).
    pub fn start(&self) -> Point2 {
        self.control[0]
    }

    /// Curve end (`t = 1`).
    pub fn end(&self) -> Point2 {
        self.control[3]
    }

    /// Evaluates the curve at parameter `t ∈ [0, 1]`.
    pub fn point_at(&self, t: f64) -> Point2 {
        let [p0, p1, p2, p3] = self.control;
        let u = 1.0 - t;
        p0 * (u * u * u) + p1 * (3.0 * u * u * t) + p2 * (3.0 * u * t * t) + p3 * (t * t * t)
    }

    /// First derivative at parameter `t`.
    pub fn derivative_at(&self, t: f64) -> Vec2 {
        let [p0, p1, p2, p3] = self.control;
        let u = 1.0 - t;
        (p1 - p0) * (3.0 * u * u) + (p2 - p1) * (6.0 * u * t) + (p3 - p2) * (3.0 * t * t)
    }

    /// The same geometric curve traversed in the opposite direction.
    pub fn reversed(&self) -> CubicBezier {
        let [p0, p1, p2, p3] = self.control;
        CubicBezier::new(p3, p2, p1, p0)
    }

    /// De Casteljau split at `t`, returning the two halves.
    pub fn split(&self, t: f64) -> (CubicBezier, CubicBezier) {
        let [p0, p1, p2, p3] = self.control;
        let p01 = p0.lerp(p1, t);
        let p12 = p1.lerp(p2, t);
        let p23 = p2.lerp(p3, t);
        let p012 = p01.lerp(p12, t);
        let p123 = p12.lerp(p23, t);
        let p = p012.lerp(p123, t);
        (
            CubicBezier::new(p0, p01, p012, p),
            CubicBezier::new(p, p123, p23, p3),
        )
    }

    /// Maximum distance of the inner control points from the chord `p0p3` —
    /// an upper bound on the curve's chordal deviation (convex-hull
    /// property).
    pub fn flatness(&self) -> f64 {
        let [p0, p1, p2, p3] = self.control;
        let chord = crate::Segment2::new(p0, p3);
        chord.distance_to_point(p1).max(chord.distance_to_point(p2))
    }

    /// Turn angle between the start and end tangents, radians.
    pub fn turn_angle(&self) -> f64 {
        let d0 = self.derivative_at(0.0);
        let d1 = self.derivative_at(1.0);
        match (d0.normalized(), d1.normalized()) {
            (Some(a), Some(b)) => a.dot(b).clamp(-1.0, 1.0).acos(),
            _ => 0.0,
        }
    }

    /// Adaptively subdivides the curve into a chord chain satisfying
    /// `params`, returning the breakpoints including both endpoints.
    ///
    /// The subdivision is **direction-sensitive**: `self.subdivide(p)` and
    /// `self.reversed().subdivide(p)` generally return different interior
    /// breakpoints for asymmetric curves. This models how two CAD bodies
    /// sharing a spline boundary tessellate it with mismatched vertices.
    pub fn subdivide(&self, params: &SubdivisionParams) -> Vec<Point2> {
        let mut out = vec![self.start()];
        self.subdivide_into(params, 0, &mut out);
        out.push(self.end());
        out
    }

    fn subdivide_into(&self, params: &SubdivisionParams, depth: u32, out: &mut Vec<Point2>) {
        const MAX_DEPTH: u32 = 24;
        let flat_enough =
            self.flatness() <= params.max_deviation && self.turn_angle() <= params.max_angle;
        if flat_enough || depth >= MAX_DEPTH {
            return;
        }
        // Split off-centre: real tessellators bias the split towards the
        // parameter start, which is what makes the breakpoint set depend on
        // traversal direction.
        let (a, b) = self.split(0.45);
        a.subdivide_into(params, depth + 1, out);
        out.push(a.end());
        b.subdivide_into(params, depth + 1, out);
    }

    /// Uniform sampling at `n + 1` parameter values (including endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_uniform(&self, n: usize) -> Vec<Point2> {
        assert!(n > 0, "need at least one interval");
        (0..=n).map(|i| self.point_at(i as f64 / n as f64)).collect()
    }

    /// Approximate arc length by dense uniform sampling.
    pub fn arc_length(&self) -> f64 {
        let pts = self.sample_uniform(256);
        pts.windows(2).map(|w| w[0].distance(w[1])).sum()
    }
}

/// A Catmull–Rom spline through a sequence of points, evaluated as a chain
/// of cubic Bézier segments.
///
/// This is the curve type used for the ObfusCADe *spline split feature*
/// (§3.1): designers sketch a free-form curve through a handful of points
/// across the part.
///
/// # Examples
///
/// ```
/// use am_geom::{CatmullRom, Point2};
///
/// let spline = CatmullRom::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(5.0, 2.0),
///     Point2::new(10.0, -2.0),
///     Point2::new(15.0, 0.0),
/// ]).unwrap();
/// let pts = spline.subdivide(&Default::default());
/// assert_eq!(pts.first().copied(), Some(Point2::new(0.0, 0.0)));
/// assert_eq!(pts.last().copied(), Some(Point2::new(15.0, 0.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CatmullRom {
    through: Vec<Point2>,
}

impl CatmullRom {
    /// Creates a spline through `points`.
    ///
    /// Returns `None` if fewer than two points are supplied.
    pub fn new(points: Vec<Point2>) -> Option<Self> {
        (points.len() >= 2).then_some(CatmullRom { through: points })
    }

    /// The interpolated points.
    pub fn through_points(&self) -> &[Point2] {
        &self.through
    }

    /// The spline's Bézier segments (one per consecutive point pair).
    pub fn segments(&self) -> Vec<CubicBezier> {
        let p = &self.through;
        let n = p.len();
        let mut out = Vec::with_capacity(n - 1);
        for i in 0..n - 1 {
            let p0 = if i == 0 { p[0] } else { p[i - 1] };
            let p1 = p[i];
            let p2 = p[i + 1];
            let p3 = if i + 2 < n { p[i + 2] } else { p[n - 1] };
            // Standard Catmull-Rom to Bézier conversion (tension 0.5).
            let c1 = p1 + (p2 - p0) / 6.0;
            let c2 = p2 - (p3 - p1) / 6.0;
            out.push(CubicBezier::new(p1, c1, c2, p2));
        }
        out
    }

    /// The same spline traversed in the opposite direction.
    pub fn reversed(&self) -> CatmullRom {
        let mut pts = self.through.clone();
        pts.reverse();
        CatmullRom { through: pts }
    }

    /// Adaptive subdivision of the whole spline (see
    /// [`CubicBezier::subdivide`]); returns breakpoints including both ends.
    pub fn subdivide(&self, params: &SubdivisionParams) -> Vec<Point2> {
        let mut out = Vec::new();
        for (i, seg) in self.segments().iter().enumerate() {
            let pts = seg.subdivide(params);
            if i == 0 {
                out.extend(pts);
            } else {
                out.extend(pts.into_iter().skip(1));
            }
        }
        out
    }

    /// Total arc length (sum of segment arc lengths).
    pub fn arc_length(&self) -> f64 {
        self.segments().iter().map(CubicBezier::arc_length).sum()
    }

    /// Evaluates the spline at global parameter `t ∈ [0, 1]` (uniform over
    /// segments).
    pub fn point_at(&self, t: f64) -> Point2 {
        let segs = self.segments();
        let scaled = t.clamp(0.0, 1.0) * segs.len() as f64;
        let idx = (scaled.floor() as usize).min(segs.len() - 1);
        segs[idx].point_at(scaled - idx as f64)
    }
}

/// Measures the worst mismatch between two chord chains that approximate the
/// same curve: for every breakpoint of `a`, the distance to the nearest point
/// on the chain `b` (and vice versa), maximized.
///
/// This is the quantity plotted along the spline in Fig. 4 of the paper —
/// the size of the tessellation-induced gap between the two bodies.
///
/// # Panics
///
/// Panics if either chain has fewer than two points.
pub fn chain_mismatch(a: &[Point2], b: &[Point2]) -> f64 {
    assert!(a.len() >= 2 && b.len() >= 2, "chains need at least two points");
    let one_way = |from: &[Point2], to: &[Point2]| -> f64 {
        from.iter()
            .map(|&p| {
                to.windows(2)
                    .map(|w| crate::Segment2::new(w[0], w[1]).distance_to_point(p))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    };
    one_way(a, b).max(one_way(b, a))
}

/// Measures the worst *vertex* mismatch: for every breakpoint of `a`, the
/// distance to the nearest breakpoint of `b`, maximized over `a` (and
/// symmetrically). Unlike [`chain_mismatch`] this captures T-junction
/// severity even when the chains lie on top of each other.
///
/// # Panics
///
/// Panics if either chain is empty.
pub fn vertex_mismatch(a: &[Point2], b: &[Point2]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "chains must be non-empty");
    let one_way = |from: &[Point2], to: &[Point2]| -> f64 {
        from.iter()
            .map(|&p| to.iter().map(|&q| p.distance(q)).fold(f64::INFINITY, f64::min))
            .fold(0.0, f64::max)
    };
    one_way(a, b).max(one_way(b, a))
}

/// Returns `true` if two chord chains share every breakpoint (within `tol`),
/// i.e. the tessellations across the boundary are conforming.
pub fn chains_conforming(a: &[Point2], b: &[Point2], tol: Tolerance) -> bool {
    if a.is_empty() || b.is_empty() {
        return a.is_empty() && b.is_empty();
    }
    vertex_mismatch(a, b) <= tol.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s_curve() -> CubicBezier {
        CubicBezier::new(
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 3.0),
            Point2::new(5.0, -3.0),
            Point2::new(7.0, 0.0),
        )
    }

    #[test]
    fn endpoints_are_exact() {
        let c = s_curve();
        assert_eq!(c.point_at(0.0), c.start());
        assert_eq!(c.point_at(1.0), c.end());
    }

    #[test]
    fn split_is_continuous() {
        let c = s_curve();
        let (a, b) = c.split(0.3);
        assert!(a.end().approx_eq(b.start(), Tolerance::new(1e-12)));
        assert!(a.end().approx_eq(c.point_at(0.3), Tolerance::new(1e-12)));
    }

    #[test]
    fn subdivision_respects_deviation_bound() {
        let c = s_curve();
        let params = SubdivisionParams::new(60f64.to_radians(), 0.05);
        let pts = c.subdivide(&params);
        // Every true curve point must be within the deviation of the chain.
        for i in 0..=200 {
            let p = c.point_at(i as f64 / 200.0);
            let d = pts
                .windows(2)
                .map(|w| crate::Segment2::new(w[0], w[1]).distance_to_point(p))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= 0.05 + 1e-9, "deviation {d} at sample {i}");
        }
    }

    #[test]
    fn finer_params_give_more_points() {
        let c = s_curve();
        let coarse = c.subdivide(&SubdivisionParams::new(0.5, 0.5)).len();
        let fine = c.subdivide(&SubdivisionParams::new(0.02, 0.002)).len();
        assert!(fine > coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn reverse_subdivision_mismatches_forward() {
        // The heart of the ObfusCADe exploit: opposite traversal directions
        // give different interior breakpoints.
        let c = s_curve();
        let params = SubdivisionParams::new(20f64.to_radians(), 0.2);
        let fwd = c.subdivide(&params);
        let mut rev = c.reversed().subdivide(&params);
        rev.reverse();
        assert!(!chains_conforming(&fwd, &rev, Tolerance::new(1e-9)));
        assert!(vertex_mismatch(&fwd, &rev) > 0.01);
    }

    #[test]
    fn symmetric_line_conforms() {
        // A straight "curve" never subdivides, so both directions agree.
        let line = CubicBezier::new(
            Point2::ZERO,
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(3.0, 0.0),
        );
        let params = SubdivisionParams::default();
        let fwd = line.subdivide(&params);
        let mut rev = line.reversed().subdivide(&params);
        rev.reverse();
        assert!(chains_conforming(&fwd, &rev, Tolerance::new(1e-9)));
    }

    #[test]
    fn catmull_rom_interpolates() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(5.0, 2.0),
            Point2::new(10.0, -1.0),
        ];
        let spline = CatmullRom::new(pts.clone()).unwrap();
        let segs = spline.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].start(), pts[0]);
        assert_eq!(segs[0].end(), pts[1]);
        assert_eq!(segs[1].end(), pts[2]);
    }

    #[test]
    fn catmull_rom_needs_two_points() {
        assert!(CatmullRom::new(vec![Point2::ZERO]).is_none());
        assert!(CatmullRom::new(vec![Point2::ZERO, Point2::X]).is_some());
    }

    #[test]
    fn catmull_rom_subdivide_covers_ends() {
        let spline = CatmullRom::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(7.0, 3.0),
            Point2::new(14.0, -3.0),
            Point2::new(21.0, 0.0),
        ])
        .unwrap();
        let pts = spline.subdivide(&SubdivisionParams::default());
        assert_eq!(pts[0], Point2::new(0.0, 0.0));
        assert_eq!(*pts.last().unwrap(), Point2::new(21.0, 0.0));
        // Interior through-points are present.
        assert!(pts.iter().any(|p| p.approx_eq(Point2::new(7.0, 3.0), Tolerance::new(1e-9))));
    }

    #[test]
    fn arc_length_exceeds_chord() {
        let c = s_curve();
        assert!(c.arc_length() > c.start().distance(c.end()));
    }

    #[test]
    fn chain_mismatch_zero_for_identical() {
        let pts = s_curve().sample_uniform(16);
        assert_eq!(chain_mismatch(&pts, &pts), 0.0);
        assert_eq!(vertex_mismatch(&pts, &pts), 0.0);
    }

    #[test]
    fn vertex_mismatch_detects_t_junctions() {
        // Same chain, one with an extra midpoint: chain distance 0 but
        // vertex mismatch is half the segment length.
        let a = vec![Point2::ZERO, Point2::new(2.0, 0.0)];
        let b = vec![Point2::ZERO, Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)];
        assert_eq!(chain_mismatch(&a, &b), 0.0);
        assert_eq!(vertex_mismatch(&a, &b), 1.0);
    }

    #[test]
    fn point_at_spline_global_parameter() {
        let spline = CatmullRom::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
        ])
        .unwrap();
        assert!(spline.point_at(0.0).approx_eq(Point2::ZERO, Tolerance::new(1e-12)));
        assert!(spline.point_at(0.5).approx_eq(Point2::new(1.0, 0.0), Tolerance::new(1e-9)));
        assert!(spline.point_at(1.0).approx_eq(Point2::new(2.0, 0.0), Tolerance::new(1e-12)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_angle_params_panic() {
        let _ = SubdivisionParams::new(0.0, 0.1);
    }
}
