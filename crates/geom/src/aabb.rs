//! Axis-aligned bounding boxes.

use crate::{Point2, Point3, Vec2, Vec3};

/// A 2-D axis-aligned bounding box.
///
/// # Examples
///
/// ```
/// use am_geom::{Aabb2, Point2};
///
/// let b = Aabb2::from_points([Point2::new(1.0, 5.0), Point2::new(-2.0, 3.0)]).unwrap();
/// assert_eq!(b.min, Point2::new(-2.0, 3.0));
/// assert_eq!(b.max, Point2::new(1.0, 5.0));
/// assert!(b.contains(Point2::new(0.0, 4.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb2 {
    /// Minimum corner.
    pub min: Point2,
    /// Maximum corner.
    pub max: Point2,
}

impl Aabb2 {
    /// Creates a box from its corners.
    ///
    /// # Panics
    ///
    /// Panics if any component of `min` exceeds the matching component of
    /// `max`.
    pub fn new(min: Point2, max: Point2) -> Self {
        match Self::try_new(min, max) {
            Some(b) => b,
            None => panic!("inverted Aabb2 corners"),
        }
    }

    /// Creates a box from its corners, or `None` when the corners are
    /// inverted or non-finite (NaN corners fail the ordering check). The
    /// panic-free entry point for possibly-corrupted geometry.
    pub fn try_new(min: Point2, max: Point2) -> Option<Self> {
        if min.x <= max.x && min.y <= max.y {
            Some(Aabb2 { min, max })
        } else {
            None
        }
    }

    /// Smallest box containing all `points`, or `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point2>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Aabb2 { min: first, max: first };
        for p in it {
            b.expand(p);
        }
        Some(b)
    }

    /// Grows the box to contain `p`.
    pub fn expand(&mut self, p: Point2) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Box extents (`max - min`).
    pub fn size(&self) -> Vec2 {
        self.max - self.min
    }

    /// Centre point.
    pub fn center(&self) -> Point2 {
        (self.min + self.max) * 0.5
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` if the boxes overlap (touching counts).
    pub fn intersects(&self, other: &Aabb2) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Box inflated by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb2 {
        Aabb2 {
            min: self.min - Vec2::new(margin, margin),
            max: self.max + Vec2::new(margin, margin),
        }
    }
}

/// A 3-D axis-aligned bounding box.
///
/// # Examples
///
/// ```
/// use am_geom::{Aabb3, Point3};
///
/// let b = Aabb3::from_points([
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(25.4, 12.7, 12.7),
/// ]).unwrap();
/// assert_eq!(b.size(), Point3::new(25.4, 12.7, 12.7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb3 {
    /// Minimum corner.
    pub min: Point3,
    /// Maximum corner.
    pub max: Point3,
}

impl Aabb3 {
    /// Creates a box from its corners.
    ///
    /// # Panics
    ///
    /// Panics if any component of `min` exceeds the matching component of
    /// `max`.
    pub fn new(min: Point3, max: Point3) -> Self {
        match Self::try_new(min, max) {
            Some(b) => b,
            None => panic!("inverted Aabb3 corners"),
        }
    }

    /// Creates a box from its corners, or `None` when the corners are
    /// inverted or non-finite (NaN corners fail the ordering check). The
    /// panic-free entry point for possibly-corrupted geometry.
    pub fn try_new(min: Point3, max: Point3) -> Option<Self> {
        if min.x <= max.x && min.y <= max.y && min.z <= max.z {
            Some(Aabb3 { min, max })
        } else {
            None
        }
    }

    /// Smallest box containing all `points`, or `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Aabb3 { min: first, max: first };
        for p in it {
            b.expand(p);
        }
        Some(b)
    }

    /// Grows the box to contain `p`.
    pub fn expand(&mut self, p: Point3) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.min.z = self.min.z.min(p.z);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
        self.max.z = self.max.z.max(p.z);
    }

    /// Union with another box.
    pub fn union(&self, other: &Aabb3) -> Aabb3 {
        let mut b = *self;
        b.expand(other.min);
        b.expand(other.max);
        b
    }

    /// Box extents (`max - min`).
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Centre point.
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` if the boxes overlap (touching counts).
    pub fn intersects(&self, other: &Aabb3) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Volume of the box.
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aabb2_from_points_and_contains() {
        let b = Aabb2::from_points([
            Point2::new(1.0, 1.0),
            Point2::new(-1.0, 2.0),
            Point2::new(0.0, -3.0),
        ])
        .unwrap();
        assert_eq!(b.min, Point2::new(-1.0, -3.0));
        assert_eq!(b.max, Point2::new(1.0, 2.0));
        assert!(b.contains(Point2::ZERO));
        assert!(b.contains(b.min));
        assert!(!b.contains(Point2::new(2.0, 0.0)));
    }

    #[test]
    fn aabb2_empty_iterator() {
        assert!(Aabb2::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn aabb2_intersects_touching() {
        let a = Aabb2::new(Point2::ZERO, Point2::new(1.0, 1.0));
        let b = Aabb2::new(Point2::new(1.0, 0.0), Point2::new(2.0, 1.0));
        let c = Aabb2::new(Point2::new(1.5, 0.0), Point2::new(2.0, 1.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn aabb2_inflate() {
        let a = Aabb2::new(Point2::ZERO, Point2::new(1.0, 1.0)).inflated(0.5);
        assert_eq!(a.min, Point2::new(-0.5, -0.5));
        assert_eq!(a.max, Point2::new(1.5, 1.5));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn aabb2_inverted_panics() {
        let _ = Aabb2::new(Point2::new(1.0, 0.0), Point2::ZERO);
    }

    #[test]
    fn aabb3_volume_and_center() {
        let b = Aabb3::new(Point3::ZERO, Point3::new(2.0, 3.0, 4.0));
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.center(), Point3::new(1.0, 1.5, 2.0));
    }

    #[test]
    fn aabb3_union_covers_both() {
        let a = Aabb3::new(Point3::ZERO, Point3::new(1.0, 1.0, 1.0));
        let b = Aabb3::new(Point3::new(2.0, -1.0, 0.5), Point3::new(3.0, 0.0, 2.0));
        let u = a.union(&b);
        assert!(u.contains(a.min) && u.contains(a.max));
        assert!(u.contains(b.min) && u.contains(b.max));
    }
}
