//! Geometric foundation for the ObfusCADe additive-manufacturing toolchain.
//!
//! This crate provides the double-precision geometric primitives every other
//! crate in the workspace builds on: [vectors](Vec3) and [points](Point3),
//! [triangles](Triangle3), [segments](Segment2), [polylines](Polyline2) and
//! [polygons](Polygon2), [parametric curves](spline::CubicBezier) with
//! adaptive subdivision, [axis-aligned boxes](Aabb3) and rigid
//! [transforms](Transform3).
//!
//! Two design points matter for the rest of the toolchain:
//!
//! * **Tolerance-aware comparisons.** Manufacturing geometry is full of
//!   coincident-but-not-bitwise-equal coordinates (the whole ObfusCADe
//!   exploit rides on tessellation mismatch), so approximate predicates take
//!   an explicit [`Tolerance`].
//! * **Angle + deviation curve subdivision.** STL exporters expose exactly
//!   two resolution knobs — the maximum angle between adjacent facets and the
//!   maximum chordal deviation from the true surface (Fig. 5 of the paper).
//!   [`spline::SubdivisionParams`] models those knobs directly.
//!
//! # Examples
//!
//! ```
//! use am_geom::{Point2, Polygon2};
//!
//! let square = Polygon2::new(vec![
//!     Point2::new(0.0, 0.0),
//!     Point2::new(2.0, 0.0),
//!     Point2::new(2.0, 2.0),
//!     Point2::new(0.0, 2.0),
//! ]);
//! assert_eq!(square.signed_area(), 4.0);
//! assert!(square.contains(Point2::new(1.0, 1.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod plane;
mod polyline;
mod segment;
pub mod spline;
mod tol;
mod transform;
mod tri;
mod triangulate;
mod vec;

pub use aabb::{Aabb2, Aabb3};
pub use plane::Plane;
pub use polyline::{Polygon2, Polyline2};
pub use segment::{Segment2, Segment3, SegmentIntersection2};
pub use spline::{CatmullRom, CubicBezier, SubdivisionParams};
pub use tol::{approx_eq, Tolerance};
pub use transform::Transform3;
pub use tri::Triangle3;
pub use triangulate::triangulate_polygon;
pub use vec::{Point2, Point3, Vec2, Vec3};
