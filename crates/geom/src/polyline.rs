//! Open polylines and closed polygons in the plane.

use std::fmt;

use crate::{Aabb2, Point2, Segment2, Tolerance, Vec2};

/// An open polyline: an ordered sequence of at least two points.
///
/// Sliced layer contours that fail to close (the discontinuities ObfusCADe
/// plants — Fig. 7a of the paper) surface as `Polyline2`s rather than
/// [`Polygon2`]s, which is exactly how the slicer detects them.
///
/// # Examples
///
/// ```
/// use am_geom::{Point2, Polyline2};
///
/// let pl = Polyline2::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(3.0, 0.0),
///     Point2::new(3.0, 4.0),
/// ]);
/// assert_eq!(pl.length(), 7.0);
/// assert_eq!(pl.gap(), 5.0); // distance from last point back to first
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline2 {
    points: Vec<Point2>,
}

impl Polyline2 {
    /// Creates a polyline.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are supplied.
    pub fn new(points: Vec<Point2>) -> Self {
        assert!(points.len() >= 2, "a polyline needs at least two points");
        Polyline2 { points }
    }

    /// The points of the polyline.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: construction requires two points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First point.
    pub fn first(&self) -> Point2 {
        self.points[0]
    }

    /// Last point.
    pub fn last(&self) -> Point2 {
        *self.points.last().expect("non-empty by construction")
    }

    /// Total arc length along the polyline.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Distance from the last point back to the first — zero for a closed
    /// loop, positive for an open (discontinuous) contour.
    pub fn gap(&self) -> f64 {
        self.last().distance(self.first())
    }

    /// `true` if the endpoints coincide within `tol`.
    pub fn is_closed(&self, tol: Tolerance) -> bool {
        self.gap() <= tol.value()
    }

    /// Converts to a polygon by joining the endpoints, dropping the repeated
    /// final vertex if present.
    ///
    /// Returns `None` if fewer than three distinct vertices remain.
    pub fn into_polygon(mut self, tol: Tolerance) -> Option<Polygon2> {
        if self.is_closed(tol) {
            self.points.pop();
        }
        if self.points.len() < 3 {
            return None;
        }
        Some(Polygon2::new(self.points))
    }

    /// Segments making up the polyline.
    pub fn segments(&self) -> impl Iterator<Item = Segment2> + '_ {
        self.points.windows(2).map(|w| Segment2::new(w[0], w[1]))
    }

    /// Bounding box of the polyline.
    pub fn aabb(&self) -> Aabb2 {
        Aabb2::from_points(self.points.iter().copied()).expect("non-empty by construction")
    }
}

impl fmt::Display for Polyline2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "polyline[{} pts, len {:.3}]", self.len(), self.length())
    }
}

/// A closed polygon: at least three vertices, implicitly joined last→first.
///
/// Vertex order determines orientation: counter-clockwise loops have
/// positive [signed area](Polygon2::signed_area) and denote solid outlines;
/// clockwise loops denote holes (the convention the slicer relies on).
///
/// # Examples
///
/// ```
/// use am_geom::{Point2, Polygon2};
///
/// let tri = Polygon2::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(4.0, 0.0),
///     Point2::new(0.0, 3.0),
/// ]);
/// assert_eq!(tri.signed_area(), 6.0);
/// assert_eq!(tri.reversed().signed_area(), -6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon2 {
    vertices: Vec<Point2>,
}

impl Polygon2 {
    /// Creates a polygon from its vertices (implicitly closed).
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are supplied.
    pub fn new(vertices: Vec<Point2>) -> Self {
        assert!(vertices.len() >= 3, "a polygon needs at least three vertices");
        Polygon2 { vertices }
    }

    /// Axis-aligned rectangle from corner points.
    pub fn rectangle(min: Point2, max: Point2) -> Self {
        Polygon2::new(vec![
            min,
            Point2::new(max.x, min.y),
            max,
            Point2::new(min.x, max.y),
        ])
    }

    /// Regular n-gon approximating a circle, counter-clockwise.
    ///
    /// # Panics
    ///
    /// Panics if `sides < 3`.
    pub fn circle(center: Point2, radius: f64, sides: usize) -> Self {
        assert!(sides >= 3, "a circle approximation needs at least 3 sides");
        let vertices = (0..sides)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / sides as f64;
                center + Vec2::new(a.cos(), a.sin()) * radius
            })
            .collect();
        Polygon2::new(vertices)
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: construction requires three vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shoelace signed area — positive for counter-clockwise loops.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += p.cross(q);
        }
        acc * 0.5
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// `true` if the vertices wind counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Area centroid of the polygon.
    pub fn centroid(&self) -> Point2 {
        let n = self.vertices.len();
        let mut acc = Vec2::ZERO;
        let mut area6 = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let c = p.cross(q);
            acc += (p + q) * c;
            area6 += c;
        }
        if area6.abs() < f64::EPSILON {
            // Degenerate: fall back to the vertex mean.
            return self.vertices.iter().copied().sum::<Vec2>() / n as f64;
        }
        acc / (3.0 * area6)
    }

    /// The polygon with reversed winding.
    pub fn reversed(&self) -> Polygon2 {
        let mut v = self.vertices.clone();
        v.reverse();
        Polygon2 { vertices: v }
    }

    /// Edges of the polygon, including the closing edge.
    pub fn segments(&self) -> impl Iterator<Item = Segment2> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment2::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Bounding box of the polygon.
    pub fn aabb(&self) -> Aabb2 {
        Aabb2::from_points(self.vertices.iter().copied()).expect("non-empty by construction")
    }

    /// Even-odd (parity) point-in-polygon test. Points on the boundary are
    /// not guaranteed either way.
    pub fn contains(&self, p: Point2) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Winding number of the polygon around `p` (0 for outside, ±1 for a
    /// simple loop depending on orientation).
    pub fn winding_number(&self, p: Point2) -> i32 {
        let mut wn = 0i32;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.y <= p.y {
                if b.y > p.y && (b - a).cross(p - a) > 0.0 {
                    wn += 1;
                }
            } else if b.y <= p.y && (b - a).cross(p - a) < 0.0 {
                wn -= 1;
            }
        }
        wn
    }

    /// Shortest distance from `p` to the polygon boundary.
    pub fn distance_to_boundary(&self, p: Point2) -> f64 {
        self.segments()
            .map(|s| s.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Naive polygon offset: moves every vertex along its angle-bisector
    /// normal by `delta` (positive = outward for CCW polygons).
    ///
    /// Suitable for the small insets used in perimeter tool paths on convex
    /// or near-convex contours; not a general-purpose polygon offsetter
    /// (self-intersections are not resolved).
    pub fn offset(&self, delta: f64) -> Polygon2 {
        let n = self.vertices.len();
        let sign = if self.is_ccw() { 1.0 } else { -1.0 };
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let prev = self.vertices[(i + n - 1) % n];
            let cur = self.vertices[i];
            let next = self.vertices[(i + 1) % n];
            let d1 = (cur - prev).normalized().unwrap_or(Vec2::X);
            let d2 = (next - cur).normalized().unwrap_or(Vec2::X);
            // Outward normals of the two adjacent edges (for CCW winding the
            // outward normal is the clockwise perpendicular).
            let n1 = -d1.perp() * sign;
            let n2 = -d2.perp() * sign;
            let bisector = (n1 + n2).normalized().unwrap_or(n1);
            // Miter length correction.
            let denom = bisector.dot(n1).max(0.1);
            out.push(cur + bisector * (delta / denom));
        }
        Polygon2 { vertices: out }
    }
}

impl fmt::Display for Polygon2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "polygon[{} verts, area {:.3}]", self.len(), self.area())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon2 {
        Polygon2::rectangle(Point2::ZERO, Point2::new(2.0, 2.0))
    }

    #[test]
    fn polyline_length_and_gap() {
        let pl = Polyline2::new(vec![Point2::ZERO, Point2::new(1.0, 0.0), Point2::new(1.0, 1.0)]);
        assert_eq!(pl.length(), 2.0);
        assert!((pl.gap() - 2f64.sqrt()).abs() < 1e-12);
        assert!(!pl.is_closed(Tolerance::default()));
    }

    #[test]
    fn polyline_into_polygon_closes_loop() {
        let pl = Polyline2::new(vec![
            Point2::ZERO,
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::ZERO,
        ]);
        let poly = pl.into_polygon(Tolerance::default()).unwrap();
        assert_eq!(poly.len(), 3);
        assert_eq!(poly.signed_area(), 0.5);
    }

    #[test]
    fn polyline_too_short_for_polygon() {
        let pl = Polyline2::new(vec![Point2::ZERO, Point2::new(1.0, 0.0), Point2::ZERO]);
        assert!(pl.into_polygon(Tolerance::default()).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn polyline_one_point_panics() {
        let _ = Polyline2::new(vec![Point2::ZERO]);
    }

    #[test]
    fn square_area_and_orientation() {
        let s = square();
        assert_eq!(s.signed_area(), 4.0);
        assert!(s.is_ccw());
        assert_eq!(s.reversed().signed_area(), -4.0);
        assert_eq!(s.perimeter(), 8.0);
    }

    #[test]
    fn centroid_of_square() {
        assert_eq!(square().centroid(), Point2::new(1.0, 1.0));
    }

    #[test]
    fn contains_even_odd() {
        let s = square();
        assert!(s.contains(Point2::new(1.0, 1.0)));
        assert!(!s.contains(Point2::new(3.0, 1.0)));
        assert!(!s.contains(Point2::new(-0.5, 1.0)));
    }

    #[test]
    fn winding_number_orientation() {
        let s = square();
        assert_eq!(s.winding_number(Point2::new(1.0, 1.0)), 1);
        assert_eq!(s.reversed().winding_number(Point2::new(1.0, 1.0)), -1);
        assert_eq!(s.winding_number(Point2::new(5.0, 5.0)), 0);
    }

    #[test]
    fn circle_area_converges() {
        let c = Polygon2::circle(Point2::ZERO, 1.0, 256);
        assert!((c.area() - std::f64::consts::PI).abs() < 1e-3);
        assert!(c.is_ccw());
    }

    #[test]
    fn distance_to_boundary() {
        let s = square();
        assert!((s.distance_to_boundary(Point2::new(1.0, 1.0)) - 1.0).abs() < 1e-12);
        assert!((s.distance_to_boundary(Point2::new(3.0, 1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offset_shrinks_square() {
        let inner = square().offset(-0.5);
        assert!((inner.area() - 1.0).abs() < 1e-9, "area = {}", inner.area());
        // Offsetting outward grows it.
        let outer = square().offset(0.5);
        assert!(outer.area() > 4.0);
    }

    #[test]
    fn offset_respects_cw_winding() {
        let hole = square().reversed(); // CW = hole
        let grown = hole.offset(-0.5); // negative delta shrinks the solid, i.e. grows a hole's enclosed area? No:
        // For a CW polygon, "outward" flips, so -0.5 still shrinks enclosed area.
        assert!(grown.area() < 4.0);
    }

    #[test]
    fn rectangle_helper() {
        let r = Polygon2::rectangle(Point2::new(-1.0, -2.0), Point2::new(1.0, 2.0));
        assert_eq!(r.area(), 8.0);
        assert!(r.is_ccw());
    }
}
