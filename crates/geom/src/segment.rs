//! Line segments in 2-D and 3-D, with intersection predicates.

use crate::{Point2, Point3, Tolerance, Vec2};

/// A 2-D line segment.
///
/// # Examples
///
/// ```
/// use am_geom::{Point2, Segment2, SegmentIntersection2};
///
/// let a = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0));
/// let b = Segment2::new(Point2::new(0.0, 2.0), Point2::new(2.0, 0.0));
/// match a.intersect(&b, Default::default()) {
///     SegmentIntersection2::Point(p) => assert_eq!(p, Point2::new(1.0, 1.0)),
///     other => panic!("expected point intersection, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment2 {
    /// Start point.
    pub start: Point2,
    /// End point.
    pub end: Point2,
}

/// Result of intersecting two 2-D segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentIntersection2 {
    /// The segments do not touch.
    None,
    /// The segments meet at a single point.
    Point(Point2),
    /// The segments are collinear and overlap along a sub-segment.
    Overlap(Segment2),
}

impl Segment2 {
    /// Creates a segment from endpoints.
    pub const fn new(start: Point2, end: Point2) -> Self {
        Segment2 { start, end }
    }

    /// Direction vector (`end - start`), not normalized.
    pub fn direction(&self) -> Vec2 {
        self.end - self.start
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.direction().length()
    }

    /// Midpoint.
    pub fn midpoint(&self) -> Point2 {
        (self.start + self.end) * 0.5
    }

    /// Point at parameter `t` (`start` at 0, `end` at 1).
    pub fn point_at(&self, t: f64) -> Point2 {
        self.start.lerp(self.end, t)
    }

    /// Shortest distance from `p` to the segment.
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        let d = self.direction();
        let len2 = d.length_squared();
        if len2 == 0.0 {
            return self.start.distance(p);
        }
        let t = ((p - self.start).dot(d) / len2).clamp(0.0, 1.0);
        self.point_at(t).distance(p)
    }

    /// Squared shortest distance from `p` to the segment.
    ///
    /// Equivalent to `distance_to_point(p).powi(2)` up to rounding, but skips
    /// the square root — use for radius tests on hot paths by comparing
    /// against a squared radius.
    pub fn distance_squared_to_point(&self, p: Point2) -> f64 {
        let d = self.direction();
        let len2 = d.length_squared();
        if len2 == 0.0 {
            return (p - self.start).length_squared();
        }
        let t = ((p - self.start).dot(d) / len2).clamp(0.0, 1.0);
        (p - self.point_at(t)).length_squared()
    }

    /// Intersects two segments, honouring `tol` for endpoint coincidence.
    pub fn intersect(&self, other: &Segment2, tol: Tolerance) -> SegmentIntersection2 {
        let d1 = self.direction();
        let d2 = other.direction();
        let denom = d1.cross(d2);
        let diff = other.start - self.start;
        if tol.is_zero(denom) {
            // Parallel. Collinear?
            if !tol.is_zero(diff.cross(d1)) {
                return SegmentIntersection2::None;
            }
            // Project other's endpoints onto self's parameterization.
            let len2 = d1.length_squared();
            if len2 == 0.0 {
                // self is a point.
                return if other.distance_to_point(self.start) <= tol.value() {
                    SegmentIntersection2::Point(self.start)
                } else {
                    SegmentIntersection2::None
                };
            }
            let t0 = (other.start - self.start).dot(d1) / len2;
            let t1 = (other.end - self.start).dot(d1) / len2;
            let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            let lo_c = lo.max(0.0);
            let hi_c = hi.min(1.0);
            if lo_c > hi_c {
                return SegmentIntersection2::None;
            }
            let a = self.point_at(lo_c);
            let b = self.point_at(hi_c);
            if a.approx_eq(b, tol) {
                SegmentIntersection2::Point(a)
            } else {
                SegmentIntersection2::Overlap(Segment2::new(a, b))
            }
        } else {
            let t = diff.cross(d2) / denom;
            let u = diff.cross(d1) / denom;
            let eps = tol.value();
            if t >= -eps && t <= 1.0 + eps && u >= -eps && u <= 1.0 + eps {
                SegmentIntersection2::Point(self.point_at(t.clamp(0.0, 1.0)))
            } else {
                SegmentIntersection2::None
            }
        }
    }
}

/// A 3-D line segment.
///
/// # Examples
///
/// ```
/// use am_geom::{Point3, Segment3};
///
/// let s = Segment3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(0.0, 0.0, 4.0));
/// assert_eq!(s.length(), 4.0);
/// assert_eq!(s.point_at(0.25), Point3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment3 {
    /// Start point.
    pub start: Point3,
    /// End point.
    pub end: Point3,
}

impl Segment3 {
    /// Creates a segment from endpoints.
    pub const fn new(start: Point3, end: Point3) -> Self {
        Segment3 { start, end }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        (self.end - self.start).length()
    }

    /// Point at parameter `t` (`start` at 0, `end` at 1).
    pub fn point_at(&self, t: f64) -> Point3 {
        self.start.lerp(self.end, t)
    }

    /// Midpoint.
    pub fn midpoint(&self) -> Point3 {
        (self.start + self.end) * 0.5
    }

    /// Parameter `t` where the segment crosses the plane `z = z0`, if the
    /// segment endpoints straddle it (inclusive).
    pub fn z_crossing(&self, z0: f64) -> Option<f64> {
        let dz = self.end.z - self.start.z;
        if dz == 0.0 {
            return None;
        }
        let t = (z0 - self.start.z) / dz;
        (0.0..=1.0).contains(&t).then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_measures() {
        let s = Segment2::new(Point2::ZERO, Point2::new(3.0, 4.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point2::new(1.5, 2.0));
        assert!(s.point_at(0.2).approx_eq(Point2::new(0.6, 0.8), Tolerance::new(1e-12)));
    }

    #[test]
    fn distance_to_point_clamps_to_endpoints() {
        let s = Segment2::new(Point2::ZERO, Point2::new(1.0, 0.0));
        assert_eq!(s.distance_to_point(Point2::new(0.5, 2.0)), 2.0);
        assert_eq!(s.distance_to_point(Point2::new(-3.0, 4.0)), 5.0);
        assert_eq!(s.distance_to_point(Point2::new(2.0, 0.0)), 1.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let s = Segment2::new(Point2::new(-1.0, 2.0), Point2::new(3.0, -0.5));
        let degenerate = Segment2::new(Point2::new(1.0, 1.0), Point2::new(1.0, 1.0));
        for p in [
            Point2::new(0.5, 2.0),
            Point2::new(-3.0, 4.0),
            Point2::new(2.0, 0.0),
            Point2::new(-1.0, 2.0),
        ] {
            let d = s.distance_to_point(p);
            assert!((s.distance_squared_to_point(p) - d * d).abs() <= 1e-12 * (1.0 + d * d));
            let d = degenerate.distance_to_point(p);
            assert!((degenerate.distance_squared_to_point(p) - d * d).abs() <= 1e-12);
        }
    }

    #[test]
    fn crossing_segments_intersect_at_point() {
        let a = Segment2::new(Point2::new(0.0, 0.0), Point2::new(4.0, 4.0));
        let b = Segment2::new(Point2::new(0.0, 4.0), Point2::new(4.0, 0.0));
        assert_eq!(
            a.intersect(&b, Tolerance::default()),
            SegmentIntersection2::Point(Point2::new(2.0, 2.0))
        );
    }

    #[test]
    fn parallel_disjoint_segments_do_not_intersect() {
        let a = Segment2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let b = Segment2::new(Point2::new(0.0, 1.0), Point2::new(1.0, 1.0));
        assert_eq!(a.intersect(&b, Tolerance::default()), SegmentIntersection2::None);
    }

    #[test]
    fn collinear_overlap_returns_overlap_segment() {
        let a = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 0.0));
        let b = Segment2::new(Point2::new(1.0, 0.0), Point2::new(3.0, 0.0));
        match a.intersect(&b, Tolerance::default()) {
            SegmentIntersection2::Overlap(s) => {
                assert_eq!(s.start, Point2::new(1.0, 0.0));
                assert_eq!(s.end, Point2::new(2.0, 0.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn collinear_touching_at_endpoint_is_point() {
        let a = Segment2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let b = Segment2::new(Point2::new(1.0, 0.0), Point2::new(2.0, 0.0));
        assert_eq!(
            a.intersect(&b, Tolerance::default()),
            SegmentIntersection2::Point(Point2::new(1.0, 0.0))
        );
    }

    #[test]
    fn non_parallel_but_disjoint() {
        let a = Segment2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let b = Segment2::new(Point2::new(2.0, 1.0), Point2::new(2.0, -1.0));
        assert_eq!(a.intersect(&b, Tolerance::default()), SegmentIntersection2::None);
    }

    #[test]
    fn segment3_z_crossing() {
        let s = Segment3::new(Point3::new(0.0, 0.0, -1.0), Point3::new(0.0, 0.0, 3.0));
        assert_eq!(s.z_crossing(1.0), Some(0.5));
        assert_eq!(s.z_crossing(5.0), None);
        let flat = Segment3::new(Point3::ZERO, Point3::X);
        assert_eq!(flat.z_crossing(0.0), None);
    }
}
