//! Ear-clipping triangulation of simple polygons.

use crate::{Point2, Polygon2};

/// Triangulates a simple polygon by ear clipping, returning index triples
/// into `points` with counter-clockwise winding.
///
/// Works for arbitrary simple (non-self-intersecting) polygons in either
/// winding; the result triangles are always counter-clockwise. Collinear
/// runs are tolerated. Behaviour on self-intersecting input is best-effort
/// (remaining vertices are fan-filled).
///
/// # Examples
///
/// ```
/// use am_geom::{triangulate_polygon, Point2};
///
/// let square = [
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(1.0, 1.0),
///     Point2::new(0.0, 1.0),
/// ];
/// let tris = triangulate_polygon(&square);
/// assert_eq!(tris.len(), 2);
/// ```
///
/// # Panics
///
/// Panics if fewer than three points are supplied.
pub fn triangulate_polygon(points: &[Point2]) -> Vec<[usize; 3]> {
    assert!(points.len() >= 3, "triangulation needs at least three points");
    let n = points.len();
    if n == 3 {
        return vec![ensure_ccw(points, [0, 1, 2])];
    }

    // Work on a CCW copy of the index list.
    let ccw = Polygon2::new(points.to_vec()).is_ccw();
    let mut idx: Vec<usize> = if ccw {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };

    let mut out = Vec::with_capacity(n - 2);
    let mut guard = 0usize;
    while idx.len() > 3 {
        let m = idx.len();
        let mut clipped = false;
        for i in 0..m {
            let prev = points[idx[(i + m - 1) % m]];
            let cur = points[idx[i]];
            let next = points[idx[(i + 1) % m]];
            let cross = (cur - prev).cross(next - cur);
            if cross <= 1e-12 {
                continue; // reflex or collinear vertex: not an ear tip
            }
            // No other polygon vertex may lie inside the candidate ear.
            let mut blocked = false;
            for (j, &vj) in idx.iter().enumerate() {
                if j == (i + m - 1) % m || j == i || j == (i + 1) % m {
                    continue;
                }
                if point_in_triangle(points[vj], prev, cur, next) {
                    blocked = true;
                    break;
                }
            }
            if !blocked {
                out.push([idx[(i + m - 1) % m], idx[i], idx[(i + 1) % m]]);
                idx.remove(i);
                clipped = true;
                break;
            }
        }
        if !clipped {
            guard += 1;
            if guard > 2 {
                // Degenerate input: fan-fill the rest so callers still get a
                // covering set rather than an infinite loop.
                for i in 1..idx.len() - 1 {
                    out.push([idx[0], idx[i], idx[i + 1]]);
                }
                idx.truncate(3);
                break;
            }
            // Perturb by rotating the index list and retrying.
            idx.rotate_left(1);
        }
    }
    out.push([idx[0], idx[1], idx[2]]);
    out.into_iter().map(|t| ensure_ccw(points, t)).collect()
}

fn ensure_ccw(points: &[Point2], t: [usize; 3]) -> [usize; 3] {
    let [a, b, c] = t;
    if (points[b] - points[a]).cross(points[c] - points[a]) < 0.0 {
        [a, c, b]
    } else {
        t
    }
}

fn point_in_triangle(p: Point2, a: Point2, b: Point2, c: Point2) -> bool {
    let d1 = (b - a).cross(p - a);
    let d2 = (c - b).cross(p - b);
    let d3 = (a - c).cross(p - c);
    let has_neg = d1 < -1e-12 || d2 < -1e-12 || d3 < -1e-12;
    let has_pos = d1 > 1e-12 || d2 > 1e-12 || d3 > 1e-12;
    !(has_neg && has_pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_area(points: &[Point2], tris: &[[usize; 3]]) -> f64 {
        tris.iter()
            .map(|&[a, b, c]| 0.5 * (points[b] - points[a]).cross(points[c] - points[a]))
            .sum()
    }

    #[test]
    fn square_two_triangles() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 2.0),
        ];
        let tris = triangulate_polygon(&pts);
        assert_eq!(tris.len(), 2);
        assert!((total_area(&pts, &tris) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clockwise_input_still_ccw_output() {
        let pts = [
            Point2::new(0.0, 2.0),
            Point2::new(2.0, 2.0),
            Point2::new(2.0, 0.0),
            Point2::new(0.0, 0.0),
        ];
        let tris = triangulate_polygon(&pts);
        assert!((total_area(&pts, &tris) - 4.0).abs() < 1e-12);
        for &[a, b, c] in &tris {
            assert!((pts[b] - pts[a]).cross(pts[c] - pts[a]) > 0.0);
        }
    }

    #[test]
    fn concave_l_shape() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(3.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 3.0),
            Point2::new(0.0, 3.0),
        ];
        let tris = triangulate_polygon(&pts);
        assert_eq!(tris.len(), 4);
        assert!((total_area(&pts, &tris) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn star_polygon_area_preserved() {
        // A 5-pointed star outline (concave at every other vertex).
        let mut pts = Vec::new();
        for i in 0..10 {
            let r = if i % 2 == 0 { 2.0 } else { 0.8 };
            let a = std::f64::consts::TAU * i as f64 / 10.0;
            pts.push(Point2::new(r * a.cos(), r * a.sin()));
        }
        let poly_area = Polygon2::new(pts.clone()).area();
        let tris = triangulate_polygon(&pts);
        assert_eq!(tris.len(), 8);
        assert!((total_area(&pts, &tris) - poly_area).abs() < 1e-9);
    }

    #[test]
    fn triangle_passthrough() {
        let pts = [Point2::ZERO, Point2::new(1.0, 0.0), Point2::new(0.0, 1.0)];
        assert_eq!(triangulate_polygon(&pts), vec![[0, 1, 2]]);
    }

    #[test]
    fn polygon_with_collinear_points() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 2.0),
        ];
        let tris = triangulate_polygon(&pts);
        assert_eq!(tris.len(), 3);
        assert!((total_area(&pts, &tris) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn two_points_panics() {
        let _ = triangulate_polygon(&[Point2::ZERO, Point2::X]);
    }
}
