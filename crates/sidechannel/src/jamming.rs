//! Side-channel countermeasures (Table 1: "side-channel shielding, noise
//! emission").
//!
//! The defender's options against emission capture are physical shielding
//! (attenuates the signal — modeled as a capture-quality downgrade) and
//! active **noise emission**: a speaker near the printer plays synthesized
//! stepper-like tones that corrupt the attacker's frequency estimates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::EmissionFrame;

/// An active noise source deployed next to the printer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEmitter {
    /// Amplitude of the decoy tones relative to the true stepper signal
    /// (1.0 = equal loudness).
    pub relative_amplitude: f64,
}

impl NoiseEmitter {
    /// A modest off-the-shelf speaker setup.
    pub fn speaker() -> Self {
        NoiseEmitter { relative_amplitude: 0.8 }
    }

    /// A purpose-built jammer matched to the stepper band.
    pub fn matched_jammer() -> Self {
        NoiseEmitter { relative_amplitude: 2.5 }
    }

    /// Applies the jammer to a captured trace: with probability rising in
    /// the decoy amplitude, each frame's frequency estimates lock onto a
    /// decoy tone instead of the true stepper, and sign reads scramble.
    ///
    /// # Examples
    ///
    /// ```
    /// use am_sidechannel::NoiseEmitter;
    ///
    /// let jammer = NoiseEmitter::matched_jammer();
    /// let jammed = jammer.apply(&[], 1);
    /// assert!(jammed.is_empty());
    /// ```
    pub fn apply(&self, trace: &[EmissionFrame], seed: u64) -> Vec<EmissionFrame> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4a4d);
        // Capture-lock probability saturates: equal loudness corrupts about
        // half the frames; a matched jammer nearly all of them.
        let p_lock = (self.relative_amplitude / (1.0 + self.relative_amplitude)).clamp(0.0, 0.95);
        trace
            .iter()
            .map(|f| {
                let mut out = *f;
                if rng.gen_bool(p_lock) {
                    // The attacker's peak picker locks onto a decoy tone.
                    out.fx_hz = rng.gen_range(200.0..4000.0);
                    out.fy_hz = rng.gen_range(200.0..4000.0);
                    out.x_positive = rng.gen_bool(0.5);
                    out.y_positive = rng.gen_bool(0.5);
                }
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compare_toolpaths, record_emissions, reconstruct_toolpath, CaptureQuality};
    use am_geom::Point2;
    use am_slicer::{Road, RoadKind, ToolMaterial, ToolPath};

    fn serpentine(rows: usize) -> ToolPath {
        let mut roads = Vec::new();
        for j in 0..rows {
            let y = j as f64 * 0.5;
            let (x0, x1) = if j % 2 == 0 { (0.0, 40.0) } else { (40.0, 0.0) };
            roads.push(Road {
                from: Point2::new(x0, y),
                to: Point2::new(x1, y),
                z: 0.2,
                material: ToolMaterial::Model,
                kind: RoadKind::Infill,
                body: None,
            });
        }
        ToolPath { roads, layer_height: 0.2, road_width: 0.5 }
    }

    #[test]
    fn jamming_degrades_reconstruction() {
        let tp = serpentine(60);
        let trace = record_emissions(&tp, 30.0, CaptureQuality::smartphone(), 4);
        let clean = compare_toolpaths(&tp, &reconstruct_toolpath(&trace));

        let jammed_trace = NoiseEmitter::matched_jammer().apply(&trace, 4);
        let jammed = compare_toolpaths(&tp, &reconstruct_toolpath(&jammed_trace));
        assert!(
            jammed.per_layer_error_mm > 10.0 * clean.per_layer_error_mm.max(0.01),
            "clean {} vs jammed {}",
            clean.per_layer_error_mm,
            jammed.per_layer_error_mm
        );
        assert!(jammed.length_error_ratio > 0.2, "{}", jammed.length_error_ratio);
    }

    #[test]
    fn stronger_jammers_corrupt_more_frames() {
        let tp = serpentine(200);
        let trace = record_emissions(&tp, 30.0, CaptureQuality::smartphone(), 4);
        let corrupted = |e: NoiseEmitter| {
            e.apply(&trace, 4)
                .iter()
                .zip(&trace)
                .filter(|(a, b)| a != b)
                .count()
        };
        let weak = corrupted(NoiseEmitter { relative_amplitude: 0.2 });
        let mid = corrupted(NoiseEmitter::speaker());
        let strong = corrupted(NoiseEmitter::matched_jammer());
        assert!(weak < mid && mid < strong, "{weak} < {mid} < {strong}");
        // Rates track the capture-lock model: a/(1+a).
        let n = trace.len() as f64;
        assert!((weak as f64 / n - 0.2 / 1.2).abs() < 0.08);
        assert!((strong as f64 / n - 2.5 / 3.5).abs() < 0.08);
    }

    #[test]
    fn jamming_is_deterministic_per_seed() {
        let tp = serpentine(10);
        let trace = record_emissions(&tp, 30.0, CaptureQuality::smartphone(), 4);
        let a = NoiseEmitter::speaker().apply(&trace, 9);
        let b = NoiseEmitter::speaker().apply(&trace, 9);
        assert_eq!(a, b);
    }
}
