//! Simulated acoustic/magnetic emissions of an FDM printer.
//!
//! The printer's stepper motors emit tones whose frequencies track the
//! commanded axis velocities; a smartphone near the machine can record them
//! (paper refs [4, 16]). This module turns a tool path into the emission
//! trace such an attacker would capture.

use am_slicer::ToolPath;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stepper micro-steps per millimetre of axis travel (typical FDM
/// kinematics).
pub const STEPS_PER_MM: f64 = 80.0;

/// One recorded emission frame: what the attacker's microphone and
/// magnetometer capture during a single head move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmissionFrame {
    /// Frame duration (s).
    pub duration_s: f64,
    /// Dominant acoustic frequency of the x stepper (Hz), noisy.
    pub fx_hz: f64,
    /// Dominant acoustic frequency of the y stepper (Hz), noisy.
    pub fy_hz: f64,
    /// Sign of the x velocity as read from the magnetic channel — may be
    /// flipped by noise.
    pub x_positive: bool,
    /// Sign of the y velocity as read from the magnetic channel.
    pub y_positive: bool,
    /// Whether the extruder motor was audible (deposition vs. travel).
    pub extruding: bool,
    /// Z level inferred from the (loud, distinctive) layer change events.
    pub z: f64,
}

/// Capture-quality parameters of the attacker's recording setup.
///
/// The acoustic channel is modeled as **cycle counting**: the attacker
/// integrates the stepper tone over the move and miscounts by a few cycles
/// (spectral noise averages out over the move duration, so the error is
/// absolute in steps, not relative in frequency — this is what makes the
/// published smartphone attacks so accurate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureQuality {
    /// 1σ miscount of stepper cycles per move per axis.
    pub cycle_noise: f64,
    /// Probability that a magnetic sign reading is flipped.
    pub sign_error_rate: f64,
}

impl CaptureQuality {
    /// A smartphone on the table next to the printer (the paper's threat
    /// scenario): a few cycles of miscount; the magnetic sign channel is
    /// reliable at these distances.
    pub fn smartphone() -> Self {
        CaptureQuality { cycle_noise: 3.0, sign_error_rate: 0.0 }
    }

    /// A contact microphone + lab magnetometer: near-perfect capture.
    pub fn lab_grade() -> Self {
        CaptureQuality { cycle_noise: 0.5, sign_error_rate: 0.0 }
    }

    /// A phone across the room: noisy capture with frequent sign losses.
    pub fn across_the_room() -> Self {
        CaptureQuality { cycle_noise: 40.0, sign_error_rate: 0.02 }
    }
}

/// Records the emission trace of a tool path at the given feed rate.
///
/// # Panics
///
/// Panics if `feed_mm_per_s` is not positive.
///
/// # Examples
///
/// ```
/// use am_sidechannel::{record_emissions, CaptureQuality};
/// use am_slicer::ToolPath;
///
/// let trace = record_emissions(&ToolPath::default(), 30.0, CaptureQuality::smartphone(), 1);
/// assert!(trace.is_empty());
/// ```
pub fn record_emissions(
    toolpath: &ToolPath,
    feed_mm_per_s: f64,
    quality: CaptureQuality,
    seed: u64,
) -> Vec<EmissionFrame> {
    assert!(feed_mm_per_s > 0.0, "feed rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut frames = Vec::with_capacity(toolpath.roads.len() * 2);
    let mut head: Option<am_geom::Point2> = None;
    for road in &toolpath.roads {
        // The steppers also hum during (non-extruding) travel moves between
        // roads — the attacker records those too, which is what keeps the
        // dead-reckoned position from drifting at every road boundary.
        if let Some(p) = head {
            if p.distance(road.from) > 1e-9 {
                frames.push(frame_for(p, road.from, road.z, false, feed_mm_per_s, quality, &mut rng));
            }
        }
        frames.push(frame_for(
            road.from,
            road.to,
            road.z,
            true,
            feed_mm_per_s,
            quality,
            &mut rng,
        ));
        head = Some(road.to);
    }
    frames
}

#[allow(clippy::too_many_arguments)]
fn frame_for(
    from: am_geom::Point2,
    to: am_geom::Point2,
    z: f64,
    extruding: bool,
    feed: f64,
    quality: CaptureQuality,
    rng: &mut StdRng,
) -> EmissionFrame {
    let d = to - from;
    let len = d.length().max(1e-9);
    let duration = len / feed;
    // Cycle counts the attacker extracts per axis, miscounted by a few.
    let cycles = |axis: f64, rng: &mut StdRng| {
        (axis.abs() * STEPS_PER_MM + quality.cycle_noise * rng.gen_range(-1.0..1.0f64)).max(0.0)
    };
    let flip = |rng: &mut StdRng| rng.gen_bool(quality.sign_error_rate);
    EmissionFrame {
        duration_s: duration,
        fx_hz: cycles(d.x, rng) / duration,
        fy_hz: cycles(d.y, rng) / duration,
        x_positive: (d.x >= 0.0) != flip(rng),
        y_positive: (d.y >= 0.0) != flip(rng),
        extruding,
        z,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::Point2;
    use am_slicer::{Road, RoadKind, ToolMaterial};

    fn straight_road(dx: f64, dy: f64) -> ToolPath {
        ToolPath {
            roads: vec![Road {
                from: Point2::ZERO,
                to: Point2::new(dx, dy),
                z: 0.1,
                material: ToolMaterial::Model,
                kind: RoadKind::Infill,
                body: None,
            }],
            layer_height: 0.2,
            road_width: 0.5,
        }
    }

    #[test]
    fn frequencies_track_axis_velocities() {
        let tp = straight_road(30.0, 0.0); // pure x move at 30 mm/s feed
        let frames = record_emissions(&tp, 30.0, CaptureQuality::lab_grade(), 1);
        assert_eq!(frames.len(), 1);
        let f = frames[0];
        assert!((f.duration_s - 1.0).abs() < 1e-9);
        assert!((f.fx_hz - 30.0 * STEPS_PER_MM).abs() / (30.0 * STEPS_PER_MM) < 0.01);
        assert!(f.fy_hz < 10.0, "y stepper silent, got {}", f.fy_hz);
        assert!(f.x_positive);
    }

    #[test]
    fn diagonal_move_splits_frequency() {
        let tp = straight_road(10.0, -10.0);
        let frames = record_emissions(&tp, 20.0, CaptureQuality::lab_grade(), 1);
        let f = frames[0];
        assert!((f.fx_hz - f.fy_hz).abs() / f.fx_hz < 0.01);
        assert!(f.x_positive);
        assert!(!f.y_positive);
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let tp = straight_road(30.0, 0.0);
        let clean = record_emissions(&tp, 30.0, CaptureQuality::lab_grade(), 1)[0].fx_hz;
        let noisy = record_emissions(&tp, 30.0, CaptureQuality::across_the_room(), 1)[0].fx_hz;
        assert!((noisy - clean).abs() / clean < 0.2);
        assert_ne!(noisy, clean);
    }

    #[test]
    fn deterministic_per_seed() {
        let tp = straight_road(10.0, 5.0);
        let a = record_emissions(&tp, 30.0, CaptureQuality::smartphone(), 9);
        let b = record_emissions(&tp, 30.0, CaptureQuality::smartphone(), 9);
        assert_eq!(a, b);
    }
}
