//! Acoustic/magnetic side-channel simulation for AM printers.
//!
//! §2 of the ObfusCADe paper highlights information-leakage attacks: a
//! smartphone near an FDM printer can record stepper-motor emissions and
//! reconstruct the G-code tool paths (refs [4, 16]). This crate simulates
//! both sides:
//!
//! * [`record_emissions`] — turns a tool path into the noisy emission trace
//!   an attacker captures, at selectable [`CaptureQuality`];
//! * [`reconstruct_toolpath`] — the attacker's dead-reckoning
//!   reconstruction, with [`compare_toolpaths`] quantifying its error;
//! * [`NoiseEmitter`] — the defender's active countermeasure (Table 1's
//!   "noise emission" mitigation), which corrupts the captured trace.
//!
//! The strategic point for ObfusCADe: a design stolen through this channel
//! is a *tool-path* level copy — it inherits every planted defect, because
//! the sabotage features survive all the way to the motor commands.
//!
//! # Examples
//!
//! See [`reconstruct_toolpath`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emission;
mod jamming;
mod reconstruct;

pub use emission::{record_emissions, CaptureQuality, EmissionFrame, STEPS_PER_MM};
pub use jamming::NoiseEmitter;
pub use reconstruct::{compare_toolpaths, reconstruct_toolpath, ReconstructionReport};
