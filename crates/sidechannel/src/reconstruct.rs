//! Tool-path reconstruction from captured emissions (the attack of paper
//! refs [4, 16]).

use am_geom::Point2;
use am_slicer::{Road, RoadKind, ToolMaterial, ToolPath};

use crate::{EmissionFrame, STEPS_PER_MM};

/// Quality metrics of a reconstruction against the true tool path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReconstructionReport {
    /// Moves reconstructed.
    pub moves: usize,
    /// Mean endpoint position error per move (mm).
    pub mean_position_error_mm: f64,
    /// Worst endpoint position error (mm).
    pub max_position_error_mm: f64,
    /// Relative error of the total extruded path length.
    pub length_error_ratio: f64,
    /// Mean endpoint error after re-aligning origins per layer (mm) — the
    /// shape-fidelity metric: dead-reckoning drift accumulates globally
    /// (rare magnetic sign flips shift everything after them), but within a
    /// layer the reconstructed geometry tracks the truth closely.
    pub per_layer_error_mm: f64,
}

/// Reconstructs a tool path from an emission trace.
///
/// Axis speeds come from the stepper frequencies, directions from the
/// magnetic channel, durations from the acoustic envelope; positions are
/// dead-reckoned from an assumed origin. Drift accumulates with frequency
/// noise — exactly the "relatively small error" behaviour reported by the
/// smartphone-attack paper.
///
/// # Examples
///
/// ```
/// use am_sidechannel::{reconstruct_toolpath, record_emissions, CaptureQuality};
/// use am_slicer::ToolPath;
///
/// let trace = record_emissions(&ToolPath::default(), 30.0, CaptureQuality::smartphone(), 1);
/// let rebuilt = reconstruct_toolpath(&trace);
/// assert!(rebuilt.roads.is_empty());
/// ```
pub fn reconstruct_toolpath(frames: &[EmissionFrame]) -> ToolPath {
    let mut roads = Vec::with_capacity(frames.len());
    let mut pos = Point2::ZERO;
    for f in frames {
        let sx = if f.x_positive { 1.0 } else { -1.0 };
        let sy = if f.y_positive { 1.0 } else { -1.0 };
        let dx = sx * f.fx_hz / STEPS_PER_MM * f.duration_s;
        let dy = sy * f.fy_hz / STEPS_PER_MM * f.duration_s;
        let to = pos + Point2::new(dx, dy);
        if f.extruding {
            roads.push(Road {
                from: pos,
                to,
                z: f.z,
                material: ToolMaterial::Model,
                kind: RoadKind::Infill,
                body: None,
            });
        }
        pos = to;
    }
    ToolPath { roads, layer_height: 0.0, road_width: 0.0 }
}

/// Compares a reconstruction against the true tool path.
///
/// Both paths must have the same move count (the reconstruction is
/// per-frame); the comparison is endpoint-wise after aligning the origins.
///
/// # Panics
///
/// Panics if the move counts differ.
pub fn compare_toolpaths(truth: &ToolPath, rebuilt: &ToolPath) -> ReconstructionReport {
    assert_eq!(
        truth.roads.len(),
        rebuilt.roads.len(),
        "reconstruction must be per-move"
    );
    if truth.roads.is_empty() {
        return ReconstructionReport::default();
    }
    let origin_truth = truth.roads[0].from;
    let origin_rebuilt = rebuilt.roads[0].from;
    let mut sum = 0.0f64;
    let mut worst = 0.0f64;
    let mut layer_sum = 0.0f64;
    let mut layer_anchor = (origin_truth, origin_rebuilt, truth.roads[0].z.to_bits());
    for (t, r) in truth.roads.iter().zip(&rebuilt.roads) {
        let e = (t.to - origin_truth).distance(r.to - origin_rebuilt);
        sum += e;
        worst = worst.max(e);
        if t.z.to_bits() != layer_anchor.2 {
            layer_anchor = (t.from, r.from, t.z.to_bits());
        }
        layer_sum += (t.to - layer_anchor.0).distance(r.to - layer_anchor.1);
    }
    let len_truth: f64 = truth.roads.iter().map(Road::length).sum();
    let len_rebuilt: f64 = rebuilt.roads.iter().map(Road::length).sum();
    ReconstructionReport {
        moves: truth.roads.len(),
        mean_position_error_mm: sum / truth.roads.len() as f64,
        max_position_error_mm: worst,
        length_error_ratio: if len_truth > 0.0 {
            (len_rebuilt - len_truth).abs() / len_truth
        } else {
            0.0
        },
        per_layer_error_mm: layer_sum / truth.roads.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_emissions, CaptureQuality};
    use am_cad::parts::{tensile_bar, TensileBarDims};
    use am_mesh::{tessellate_shells, Resolution};
    use am_slicer::{generate_toolpath, orient_shells, slice_shells, Orientation, SlicerConfig};

    fn bar_toolpath() -> ToolPath {
        let part = tensile_bar(&TensileBarDims::default()).unwrap().resolve().unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, Orientation::Xy);
        let sliced = slice_shells(&oriented, 0.3556);
        generate_toolpath(&sliced, &SlicerConfig::default())
    }

    #[test]
    fn lab_grade_capture_reconstructs_nearly_exactly() {
        let tp = bar_toolpath();
        let trace = record_emissions(&tp, 30.0, CaptureQuality::lab_grade(), 3);
        let rebuilt = reconstruct_toolpath(&trace);
        let report = compare_toolpaths(&tp, &rebuilt);
        assert!(report.moves > 100);
        assert!(
            report.mean_position_error_mm < 0.8,
            "mean error {}",
            report.mean_position_error_mm
        );
        assert!(report.length_error_ratio < 0.01);
    }

    #[test]
    fn smartphone_capture_has_small_but_growing_error() {
        let tp = bar_toolpath();
        let trace = record_emissions(&tp, 30.0, CaptureQuality::smartphone(), 3);
        let report = compare_toolpaths(&tp, &reconstruct_toolpath(&trace));
        // "relatively small error": the per-layer shape tracks closely even
        // though rare sign flips drift the global registration.
        assert!(report.per_layer_error_mm < 3.0, "{report:?}");
        assert!(report.mean_position_error_mm < 40.0, "{report:?}");
        assert!(report.length_error_ratio < 0.05);
    }

    #[test]
    fn capture_quality_ordering_holds() {
        let tp = bar_toolpath();
        let err = |q: CaptureQuality| {
            let trace = record_emissions(&tp, 30.0, q, 3);
            compare_toolpaths(&tp, &reconstruct_toolpath(&trace)).per_layer_error_mm
        };
        let lab = err(CaptureQuality::lab_grade());
        let phone = err(CaptureQuality::smartphone());
        let far = err(CaptureQuality::across_the_room());
        assert!(lab <= phone && phone < far, "lab {lab}, phone {phone}, far {far}");
    }

    #[test]
    fn reconstruction_preserves_layer_structure() {
        let tp = bar_toolpath();
        let trace = record_emissions(&tp, 30.0, CaptureQuality::smartphone(), 3);
        let rebuilt = reconstruct_toolpath(&trace);
        let layers_truth: std::collections::HashSet<u64> =
            tp.roads.iter().map(|r| r.z.to_bits()).collect();
        let layers_rebuilt: std::collections::HashSet<u64> =
            rebuilt.roads.iter().map(|r| r.z.to_bits()).collect();
        assert_eq!(layers_truth, layers_rebuilt);
    }
}
