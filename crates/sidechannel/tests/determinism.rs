//! The side channel's two seed-level contracts, pinned for the
//! detection subsystem that now consumes it (PR 10):
//!
//! 1. **Thread-count independence.** `record_emissions` is seeded and
//!    the pipeline's tool-path planning is bit-identical for every
//!    `Parallelism` budget — so the same (part, plan, seed, quality)
//!    must produce the *same trace and the same reconstruction* whether
//!    the tool path was planned on 1, 2, or 4 threads. Detection
//!    verdicts (and their cached reports) would otherwise depend on the
//!    daemon's worker layout.
//!
//! 2. **Round-trip error bounds per capture quality.** Recording and
//!    reconstructing a pipeline-planned tool path must land within a
//!    pinned error envelope per `CaptureQuality` preset — the envelopes
//!    the detectors' calibration margins are built on.

use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
use am_par::Parallelism;
use am_sidechannel::{
    compare_toolpaths, record_emissions, reconstruct_toolpath, CaptureQuality, EmissionFrame,
};
use am_slicer::ToolPath;
use obfuscade::{plan_toolpath, Deadline, FaultPlan, ProcessPlan, StageCache};
use proptest::prelude::*;

const THREAD_BUDGETS: &[usize] = &[1, 2, 4];

/// The capture presets under test, by the names the detection job layer
/// uses on the wire.
fn qualities() -> [(&'static str, CaptureQuality); 3] {
    [
        ("lab", CaptureQuality::lab_grade()),
        ("smartphone", CaptureQuality::smartphone()),
        ("room", CaptureQuality::across_the_room()),
    ]
}

/// Plans the spline-bar tool path through the real pipeline stages at
/// the given thread budget (fresh cache: nothing is served warm across
/// budgets, so equality below is recomputation equality).
fn planned_toolpath(threads: usize) -> ToolPath {
    let part = tensile_bar_with_spline(&TensileBarDims::default()).expect("bar");
    let plan = ProcessPlan::fdm(am_mesh::Resolution::Coarse, am_slicer::Orientation::Xy)
        .with_parallelism(Parallelism::threads(threads));
    let cache = StageCache::with_budget(StageCache::DEFAULT_BUDGET);
    plan_toolpath(&part, &plan, &FaultPlan::none(), &cache, Deadline::none())
        .expect("plan")
        .toolpath
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same seed + quality ⇒ bit-identical traces and reconstructions,
    /// no matter how many threads planned the tool path.
    #[test]
    fn traces_are_identical_across_thread_budgets(
        seed in 1..10_000u64,
        quality_idx in 0..3usize,
    ) {
        let (_, quality) = qualities()[quality_idx];
        let mut reference: Option<(Vec<EmissionFrame>, ToolPath)> = None;
        for &threads in THREAD_BUDGETS {
            let toolpath = planned_toolpath(threads);
            let trace = record_emissions(&toolpath, 30.0, quality, seed);
            let rebuilt = reconstruct_toolpath(&trace);
            match &reference {
                None => reference = Some((trace, rebuilt)),
                Some((ref_trace, ref_rebuilt)) => {
                    prop_assert_eq!(
                        &trace, ref_trace,
                        "trace diverged at {} threads (seed {})", threads, seed
                    );
                    prop_assert_eq!(
                        &rebuilt.roads, &ref_rebuilt.roads,
                        "reconstruction diverged at {} threads (seed {})", threads, seed
                    );
                }
            }
        }
    }
}

/// Round-trip error envelopes per capture preset, on the real
/// pipeline-planned tool path. The bounds are deliberately loose enough
/// to hold for every seed (spot-checked across several) while still
/// pinning the ordering the detectors rely on: a better capture never
/// reconstructs worse.
#[test]
fn round_trip_error_stays_within_per_quality_envelopes() {
    // (preset, per-layer shape error mm, global mean error mm, length error
    // ratio). Room-grade capture flips step signs, so its dead-reckoned
    // global drift is orders of magnitude above the per-layer shape error —
    // the pins below sit ~3x above the worst observed seed for each preset.
    let envelopes = [
        ("lab", 0.5, 8.0, 0.01),
        ("smartphone", 3.0, 48.0, 0.01),
        ("room", 150.0, 3000.0, 0.05),
    ];
    let toolpath = planned_toolpath(1);
    for seed in [3u64, 17, 1009] {
        let mut last_layer_err = 0.0f64;
        // Presets are iterated best-to-worst within each seed.
        for &(name, layer_mm, global_mm, len_ratio) in &envelopes {
            let quality = qualities()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, q)| q)
                .expect("preset");
            let trace = record_emissions(&toolpath, 30.0, quality, seed);
            let report = compare_toolpaths(&toolpath, &reconstruct_toolpath(&trace));
            assert!(report.moves > 100, "degenerate workload: {} moves", report.moves);
            assert!(
                report.per_layer_error_mm < layer_mm,
                "{name} seed {seed}: per-layer error {} above the {layer_mm} mm envelope",
                report.per_layer_error_mm
            );
            assert!(
                report.mean_position_error_mm < global_mm,
                "{name} seed {seed}: global error {} above the {global_mm} mm envelope",
                report.mean_position_error_mm
            );
            assert!(
                report.length_error_ratio < len_ratio,
                "{name} seed {seed}: length error {} above the {len_ratio} envelope",
                report.length_error_ratio
            );
            assert!(
                report.per_layer_error_mm + 1e-12 >= last_layer_err,
                "{name} seed {seed}: better preset reconstructed worse"
            );
            last_layer_err = report.per_layer_error_mm;
        }
    }
}
