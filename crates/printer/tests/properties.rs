//! Property-based tests for the deposition simulator.

use am_cad::{Feature, Part, SolidShape};
use am_geom::{Aabb3, Point3};
use am_mesh::{tessellate_shells, Resolution};
use am_printer::{check_limits, scan, BuildEnvelope, Material, PrintedPart, PrinterProfile};
use am_slicer::{
    build_transform, generate_toolpath, orient_shells, slice_shells, Orientation, SlicerConfig,
};
use proptest::prelude::*;

fn print_box(w: f64, h: f64, d: f64, seed: u64) -> PrintedPart {
    let part = Part::new("box")
        .with_feature(Feature::Base(SolidShape::Cuboid(Aabb3::new(
            Point3::ZERO,
            Point3::new(w, h, d),
        ))))
        .unwrap()
        .resolve()
        .unwrap();
    let shells = tessellate_shells(&part, &Resolution::Fine.params());
    let oriented = orient_shells(&shells, Orientation::Xy);
    let to_build = build_transform(&shells, Orientation::Xy);
    let sliced = slice_shells(&oriented, 0.3556);
    let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
    PrintedPart::from_toolpath(&toolpath, &PrinterProfile::dimension_elite(), to_build, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn printed_volume_tracks_design_volume(
        w in 8.0..30.0f64, h in 8.0..20.0f64, d in 3.0..12.0f64, seed in 0u64..50,
    ) {
        let printed = print_box(w, h, d, seed);
        let exact = w * h * d;
        let vol = printed.material_volume(Material::Model);
        prop_assert!((vol - exact).abs() / exact < 0.2, "vol {vol} vs {exact}");
    }

    #[test]
    fn solid_box_scans_clean(w in 8.0..25.0f64, h in 8.0..16.0f64, seed in 0u64..20) {
        let printed = print_box(w, h, 5.0, seed);
        let report = scan(&printed);
        prop_assert_eq!(report.cold_joint_area, 0.0);
        prop_assert!(report.internal_void_volume < 0.02 * w * h * 5.0);
    }

    #[test]
    fn model_frame_queries_respect_geometry(
        w in 8.0..25.0f64, h in 8.0..16.0f64, d in 3.0..10.0f64,
    ) {
        let printed = print_box(w, h, d, 1);
        prop_assert_eq!(
            printed.material_at_model(Point3::new(w / 2.0, h / 2.0, d / 2.0)),
            Material::Model
        );
        prop_assert_eq!(
            printed.material_at_model(Point3::new(-w, -h, -d)),
            Material::Empty
        );
    }

    #[test]
    fn weight_scales_linearly_with_volume(scale in 1.0..2.0f64) {
        let small = print_box(10.0, 10.0, 4.0, 3);
        let big = print_box(10.0 * scale, 10.0, 4.0, 3);
        let ratio = big.weight_g() / small.weight_g();
        prop_assert!((ratio - scale).abs() < 0.15 * scale, "ratio {ratio} vs {scale}");
    }

    #[test]
    fn benign_toolpaths_pass_firmware(w in 8.0..40.0f64, h in 8.0..20.0f64) {
        let part = Part::new("box")
            .with_feature(Feature::Base(SolidShape::Cuboid(Aabb3::new(
                Point3::ZERO,
                Point3::new(w, h, 4.0),
            ))))
            .unwrap()
            .resolve()
            .unwrap();
        let shells = tessellate_shells(&part, &Resolution::Fine.params());
        let oriented = orient_shells(&shells, Orientation::Xy);
        // Place with a bed margin, as the pipeline does.
        let margin = am_geom::Transform3::translation(am_geom::Vec3::new(5.0, 5.0, 0.0));
        let placed: Vec<_> = oriented.iter().map(|m| m.transformed(&margin)).collect();
        let sliced = slice_shells(&placed, 0.3556);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        prop_assert!(check_limits(&toolpath, &BuildEnvelope::dimension_elite()).is_empty());
    }
}
