//! Golden-fixture pins for the deposition kernels (ISSUE 7).
//!
//! Two reference toolpaths, both kernels, threads {1, 4}: every
//! combination must reproduce the pinned 128-bit grid digest exactly.
//! This is the cheap tripwire in front of the bit-identity proptest —
//! any stamper drift (a reordered RNG draw, a changed margin, a span
//! boundary off by one voxel) fails this in milliseconds without
//! rerunning the property suite. If a change is *supposed* to alter
//! deposition output, re-pin the digests in the same commit and say why.

use am_cad::parts::{intact_prism, prism_with_sphere, PrismDims};
use am_cad::{BodyKind, MaterialRemoval};
use am_mesh::{tessellate_shells, Resolution};
use am_par::Parallelism;
use am_printer::{PrintedPart, PrinterProfile};
use am_slicer::{
    build_transform, generate_toolpath, orient_shells, slice_shells, Orientation, SlicerConfig,
    ToolPath,
};
use am_geom::Transform3;

fn toolpath_for(part: &am_cad::ResolvedPart, orientation: Orientation) -> (ToolPath, Transform3) {
    let shells = tessellate_shells(part, &Resolution::Coarse.params());
    let oriented = orient_shells(&shells, orientation);
    let to_build = build_transform(&shells, orientation);
    let sliced = slice_shells(&oriented, 0.1778);
    (generate_toolpath(&sliced, &SlicerConfig::default()), to_build)
}

/// The two pinned reference workloads: a plain prism printed flat and a
/// support-heavy sphere cavity printed on edge (different layer mix,
/// support material, and body structure).
fn fixtures() -> Vec<(&'static str, ToolPath, Transform3)> {
    let dims = PrismDims::default();
    let prism = intact_prism(&dims).resolve().expect("prism");
    let (tp_a, to_a) = toolpath_for(&prism, Orientation::Xy);
    let sphere = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
        .expect("part")
        .resolve()
        .expect("resolve");
    let (tp_b, to_b) = toolpath_for(&sphere, Orientation::Xz);
    vec![("prism/xy", tp_a, to_a), ("sphere/xz", tp_b, to_b)]
}

const GOLDEN: [(&str, u128); 2] = [
    ("prism/xy", 0x8d47715e188a003adea1eb9e957fae8d),
    ("sphere/xz", 0x0dc20ba884ec9b277879833de475d43c),
];

#[test]
fn golden_grid_digests_are_stable() {
    let profile = PrinterProfile::dimension_elite();
    for (name, toolpath, to_build) in fixtures() {
        let expected = GOLDEN
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, d)| d)
            .expect("fixture has a pinned digest");
        let reference =
            PrintedPart::try_from_toolpath_reference(&toolpath, &profile, to_build, 42)
                .expect("reference print");
        assert_eq!(
            reference.grid_digest(),
            expected,
            "{name}: reference stamper drifted from pin ({:#034x})",
            reference.grid_digest()
        );
        for threads in [1, 4] {
            for (kernel, printed) in [
                (
                    "optimized",
                    PrintedPart::try_from_toolpath_with(
                        &toolpath,
                        &profile,
                        to_build,
                        42,
                        Parallelism::threads(threads),
                    )
                    .expect("optimized print"),
                ),
                (
                    "span-plan",
                    PrintedPart::try_from_toolpath_planned(
                        &toolpath,
                        &profile,
                        to_build,
                        42,
                        Parallelism::threads(threads),
                    )
                    .expect("planned print"),
                ),
            ] {
                assert_eq!(
                    printed.grid_digest(),
                    expected,
                    "{name}: {kernel} kernel at {threads} thread(s) drifted from pin"
                );
            }
        }
    }
}
