//! Artifact inspection: the "Testing" stage of the paper's process chain.
//!
//! Table 1 lists the defender's physical checks — weight/density
//! measurement, CT/ultrasound reconstruction, inspection of the printed
//! object. This module implements their simulated equivalents on the voxel
//! artifact, and the seam metrics behind Fig. 7b/8.

use std::collections::VecDeque;

use crate::{Material, PrintedPart};

/// Summary of an internal-structure scan (simulated CT).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScanReport {
    /// Internal voids: empty voxels unreachable from outside.
    pub internal_void_voxels: usize,
    /// Internal support voxels (undissolved or trapped).
    pub internal_support_voxels: usize,
    /// Internal void volume (mm³).
    pub internal_void_volume: f64,
    /// Cold-joint area (mm²): faces between model voxels of different
    /// bodies.
    pub cold_joint_area: f64,
}

/// Scans a printed part for internal defects.
///
/// Runs a 3-D flood fill from the exterior over non-model voxels; what the
/// flood cannot reach is *internal* — enclosed voids (a dissolved embedded
/// sphere), trapped support, or planted crack pockets. Also measures the
/// total cold-joint interface area between bodies (the split seam).
///
/// # Examples
///
/// ```no_run
/// use am_printer::{scan, PrintedPart};
/// # fn f(printed: &PrintedPart) {
/// let report = scan(printed);
/// if report.internal_void_volume > 1.0 {
///     println!("embedded feature detected: {} mm³", report.internal_void_volume);
/// }
/// # }
/// ```
pub fn scan(part: &PrintedPart) -> ScanReport {
    let (nx, ny, nz) = part.dims();
    let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    let mut outside = vec![false; nx * ny * nz];
    let mut queue = VecDeque::new();

    // Seed from all boundary voxels that are not model.
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let boundary = i == 0 || j == 0 || k == 0 || i == nx - 1 || j == ny - 1 || k == nz - 1;
                if boundary && part.at(i, j, k) != Material::Model {
                    let id = idx(i, j, k);
                    if !outside[id] {
                        outside[id] = true;
                        queue.push_back((i, j, k));
                    }
                }
            }
        }
    }
    while let Some((i, j, k)) = queue.pop_front() {
        let neighbors = [
            (i.wrapping_sub(1), j, k),
            (i + 1, j, k),
            (i, j.wrapping_sub(1), k),
            (i, j + 1, k),
            (i, j, k.wrapping_sub(1)),
            (i, j, k + 1),
        ];
        for (ii, jj, kk) in neighbors {
            if ii >= nx || jj >= ny || kk >= nz {
                continue;
            }
            let id = idx(ii, jj, kk);
            if !outside[id] && part.at(ii, jj, kk) != Material::Model {
                outside[id] = true;
                queue.push_back((ii, jj, kk));
            }
        }
    }

    let (vxy, vz) = part.voxel_size();
    let voxel_volume = vxy * vxy * vz;
    let mut report = ScanReport::default();
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                if outside[idx(i, j, k)] {
                    continue;
                }
                match part.at(i, j, k) {
                    Material::Empty => report.internal_void_voxels += 1,
                    Material::Support => report.internal_support_voxels += 1,
                    Material::Model => {}
                }
            }
        }
    }
    report.internal_void_volume = report.internal_void_voxels as f64 * voxel_volume;

    // Cold-joint area: model-model voxel faces with different body tags.
    let mut joint_faces_xy = 0usize;
    let mut joint_faces_z = 0usize;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                if part.at(i, j, k) != Material::Model {
                    continue;
                }
                let Some(b) = part.body_at(i, j, k) else { continue };
                if i + 1 < nx && part.at(i + 1, j, k) == Material::Model {
                    if let Some(b2) = part.body_at(i + 1, j, k) {
                        if b2 != b {
                            joint_faces_xy += 1;
                        }
                    }
                }
                if j + 1 < ny && part.at(i, j + 1, k) == Material::Model {
                    if let Some(b2) = part.body_at(i, j + 1, k) {
                        if b2 != b {
                            joint_faces_xy += 1;
                        }
                    }
                }
                if k + 1 < nz && part.at(i, j, k + 1) == Material::Model {
                    if let Some(b2) = part.body_at(i, j, k + 1) {
                        if b2 != b {
                            joint_faces_z += 1;
                        }
                    }
                }
            }
        }
    }
    report.cold_joint_area = joint_faces_xy as f64 * vxy * vz + joint_faces_z as f64 * vxy * vxy;
    report
}

/// Cross-section model area (mm²) per slab along the build x axis — the
/// necking/defect profile a quality engineer would plot.
pub fn cross_section_profile(part: &PrintedPart, slabs: usize) -> Vec<f64> {
    assert!(slabs > 0, "need at least one slab");
    let (nx, ny, nz) = part.dims();
    let (vxy, vz) = part.voxel_size();
    let mut areas = vec![0.0; slabs];
    let mut columns = vec![0usize; slabs];
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                if part.at(i, j, k) == Material::Model {
                    let s = (i * slabs) / nx;
                    areas[s] += vxy * vz;
                    columns[s] += 1;
                }
            }
        }
    }
    // Normalize each slab by the number of voxel columns it spans in x.
    let per_slab_cols = (nx as f64 / slabs as f64).max(1.0);
    for a in &mut areas {
        *a /= per_slab_cols;
    }
    areas
}

/// Density of the printed part relative to a fully dense part of the same
/// bounding volume of model material — the "measure weight/density" check
/// of Table 1.
pub fn relative_density(part: &PrintedPart, reference: &PrintedPart) -> f64 {
    let w = part.weight_g();
    let r = reference.weight_g();
    if r == 0.0 {
        0.0
    } else {
        w / r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{intact_prism, prism_with_sphere, PrismDims};
    use am_cad::{BodyKind, MaterialRemoval};
    use am_mesh::{tessellate_shells, Resolution};
    use self::am_printer_test_util::print_with;
    use am_slicer::Orientation;

    // Small local helper namespace to avoid duplicating the print pipeline
    // in every test below.
    mod am_printer_test_util {
        use super::*;
        use crate::PrinterProfile;
        use am_slicer::{
            build_transform, generate_toolpath, orient_shells, slice_shells, SlicerConfig,
        };

        pub fn print_with(part: &am_cad::ResolvedPart, orientation: Orientation) -> PrintedPart {
            let shells = tessellate_shells(part, &Resolution::Coarse.params());
            let oriented = orient_shells(&shells, orientation);
            let to_build = build_transform(&shells, orientation);
            let sliced = slice_shells(&oriented, 0.1778);
            let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
            PrintedPart::from_toolpath(
                &toolpath,
                &PrinterProfile::dimension_elite(),
                to_build,
                11,
            )
        }
    }

    #[test]
    fn intact_prism_scan_is_clean() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let printed = print_with(&part, Orientation::Xy);
        let report = scan(&printed);
        assert_eq!(report.internal_support_voxels, 0);
        assert!(report.internal_void_volume < 10.0, "{report:?}");
        assert_eq!(report.cold_joint_area, 0.0);
    }

    #[test]
    fn dissolved_sphere_leaves_detectable_void() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Surface, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let mut printed = print_with(&part, Orientation::Xy);
        let before = scan(&printed);
        assert!(before.internal_support_voxels > 0, "support fills the sphere");
        printed.dissolve_support();
        let after = scan(&printed);
        let sphere_vol = 4.0 / 3.0 * std::f64::consts::PI * dims.sphere_radius.powi(3);
        assert!(
            (after.internal_void_volume - sphere_vol).abs() / sphere_vol < 0.6,
            "void {} vs sphere {sphere_vol}",
            after.internal_void_volume
        );
    }

    #[test]
    fn removal_solid_scan_matches_intact() {
        let dims = PrismDims::default();
        let solid = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let mut printed = print_with(&solid, Orientation::Xy);
        printed.dissolve_support();
        let report = scan(&printed);
        assert!(report.internal_void_volume < 10.0, "{report:?}");
    }

    #[test]
    fn cross_section_profile_flat_for_prism() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let printed = print_with(&part, Orientation::Xy);
        let profile = cross_section_profile(&printed, 10);
        let mid = profile[5];
        for (s, a) in profile.iter().enumerate().skip(1).take(8) {
            assert!((a - mid).abs() / mid < 0.2, "slab {s}: {a} vs {mid}");
        }
    }

    #[test]
    fn relative_density_near_one_for_same_part() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let a = print_with(&part, Orientation::Xy);
        let b = print_with(&part, Orientation::Xy);
        let d = relative_density(&a, &b);
        assert!((d - 1.0).abs() < 0.02, "density ratio {d}");
    }
}
