//! FDM and PolyJet process simulators: voxel deposition, support
//! dissolution and artifact inspection.
//!
//! This crate is the physical-printer stand-in of the ObfusCADe
//! reproduction (see DESIGN.md §2):
//!
//! * [`PrinterProfile`] — machine presets for the paper's two printers, the
//!   Stratasys Dimension Elite (FDM, ABS + soluble support, 178 µm layers)
//!   and the Objet30 Pro (PolyJet, VeroClear, 16 µm layers).
//! * [`PrintedPart`] — a voxel artifact deposited from a
//!   [tool path](am_slicer::ToolPath), with seeded process noise, support
//!   dissolution, and model-frame sampling for downstream testing.
//! * [`scan`]/[`cross_section_profile`]/[`relative_density`] — the
//!   inspection toolbox of the paper's "Testing" stage (Table 1):
//!   simulated CT detects enclosed voids, trapped support and cold-joint
//!   seam area.
//!
//! # Examples
//!
//! See [`PrintedPart`] for the full print pipeline example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod firmware;
mod inspect;
mod machine;
mod material;

pub use artifact::{stamp_counters, PrintError, PrintedPart, PrintedPartRaw, StampCounters};
pub use firmware::{check_limits, check_limits_at_feed, BuildEnvelope, LimitViolation};
pub use inspect::{cross_section_profile, relative_density, scan, ScanReport};
pub use machine::{PrinterProfile, Process, ProfileError};
pub use material::{Material, MaterialSpec};
