//! Printer machine profiles.

use std::fmt;

use crate::MaterialSpec;

/// The deposition process family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Process {
    /// Fused deposition modeling (extruded thermoplastic roads).
    Fdm,
    /// Material jetting (PolyJet): jetted photopolymer, UV-cured per layer.
    PolyJet,
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Process::Fdm => write!(f, "FDM"),
            Process::PolyJet => write!(f, "PolyJet"),
        }
    }
}

/// A printer machine profile: geometry, kinematics and bonding physics of
/// the deposition process.
///
/// The bond factors scale the lattice-spring strengths in the virtual
/// tensile tester: FDM roads fuse imperfectly (anisotropy between roads and
/// layers); PolyJet's jetted micro-droplets cure into a nearly isotropic
/// solid. Planted seams — roads of *different bodies* that merely abut — get
/// the `joint_bond` factor and the brittle `joint_ductility`, which is the
/// mechanical heart of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct PrinterProfile {
    /// Machine name.
    pub name: &'static str,
    /// Process family.
    pub process: Process,
    /// Layer height (mm).
    pub layer_height: f64,
    /// Road / jet swath width (mm).
    pub road_width: f64,
    /// Head feed rate (mm/s) for time estimates.
    pub feed_mm_per_s: f64,
    /// Build material.
    pub model_material: MaterialSpec,
    /// Whether support material is soluble (washes away).
    pub soluble_support: bool,
    /// Relative strength of the bond between adjacent roads in one layer.
    pub road_bond: f64,
    /// Relative strength of the bond between stacked layers.
    pub layer_bond: f64,
    /// Relative strength of the cold joint between abutting *bodies*.
    pub joint_bond: f64,
    /// Ductility fraction of a cold joint relative to bulk material.
    pub joint_ductility: f64,
    /// Relative deposition noise (road-width modulation, 1σ).
    pub noise_sigma: f64,
}

impl PrinterProfile {
    /// The Stratasys Dimension Elite FDM printer of the paper: ABS model
    /// material, soluble SR-10 support, 178 µm layers.
    pub fn dimension_elite() -> Self {
        PrinterProfile {
            name: "Stratasys Dimension Elite",
            process: Process::Fdm,
            layer_height: 0.1778,
            road_width: 0.5,
            feed_mm_per_s: 30.0,
            model_material: MaterialSpec::abs(),
            soluble_support: true,
            road_bond: 0.92,
            layer_bond: 0.80,
            joint_bond: 0.93,
            joint_ductility: 0.22,
            noise_sigma: 0.03,
        }
    }

    /// The Stratasys Objet30 Pro PolyJet printer of the paper: VeroClear
    /// resin, 16 µm minimum layer thickness.
    pub fn objet30_pro() -> Self {
        PrinterProfile {
            name: "Stratasys Objet30 Pro",
            process: Process::PolyJet,
            layer_height: 0.016,
            road_width: 0.1,
            feed_mm_per_s: 80.0,
            model_material: MaterialSpec::vero_clear(),
            soluble_support: true,
            road_bond: 0.98,
            layer_bond: 0.96,
            joint_bond: 0.95,
            joint_ductility: 0.30,
            noise_sigma: 0.01,
        }
    }

    /// Checks the profile parameters, returning a typed error instead of
    /// panicking — the panic-free entry point for pipeline code vetting a
    /// possibly-corrupted machine profile.
    pub fn validate(&self) -> Result<(), ProfileError> {
        for (name, v) in [("layer_height", self.layer_height), ("road_width", self.road_width)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ProfileError::NonPositive { name, value: v });
            }
        }
        if !(self.feed_mm_per_s.is_finite() && self.feed_mm_per_s > 0.0) {
            return Err(ProfileError::NonPositive { name: "feed_mm_per_s", value: self.feed_mm_per_s });
        }
        for (name, v) in [
            ("road_bond", self.road_bond),
            ("layer_bond", self.layer_bond),
            ("joint_bond", self.joint_bond),
            ("joint_ductility", self.joint_ductility),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(ProfileError::BondOutOfRange { name, value: v });
            }
        }
        if !(0.0..0.5).contains(&self.noise_sigma) {
            return Err(ProfileError::NoiseOutOfRange { value: self.noise_sigma });
        }
        Ok(())
    }

    /// Validates the profile parameters.
    ///
    /// # Panics
    ///
    /// Panics with the [`ProfileError`] message on non-positive geometry or
    /// bond factors outside `(0, 1]`. Prefer [`PrinterProfile::validate`]
    /// in library code.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// A [`PrinterProfile`] field rejected by [`PrinterProfile::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A geometry or kinematics field is zero, negative, or non-finite.
    NonPositive {
        /// Field name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A bond factor is outside `(0, 1]`.
    BondOutOfRange {
        /// Field name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Deposition noise outside `[0, 0.5)`.
    NoiseOutOfRange {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NonPositive { name, value } => match *name {
                // Keep the historical assert messages stable for callers
                // matching on them.
                "feed_mm_per_s" => write!(f, "feed must be positive, got {value}"),
                _ => write!(f, "geometry must be positive: {name} = {value}"),
            },
            ProfileError::BondOutOfRange { name, value } => {
                write!(f, "{name} must be in (0, 1], got {value}")
            }
            ProfileError::NoiseOutOfRange { value } => {
                write!(f, "noise_sigma out of range: {value}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machines_validate() {
        PrinterProfile::dimension_elite().assert_valid();
        PrinterProfile::objet30_pro().assert_valid();
    }

    #[test]
    fn polyjet_has_finer_layers_than_fdm() {
        // The paper: 16 µm vs 178 µm.
        let fdm = PrinterProfile::dimension_elite();
        let pj = PrinterProfile::objet30_pro();
        assert!(pj.layer_height < fdm.layer_height / 10.0);
        assert_eq!(fdm.process, Process::Fdm);
        assert_eq!(pj.process, Process::PolyJet);
    }

    #[test]
    fn polyjet_more_isotropic_than_fdm() {
        let fdm = PrinterProfile::dimension_elite();
        let pj = PrinterProfile::objet30_pro();
        assert!(pj.layer_bond > fdm.layer_bond);
        assert!(pj.noise_sigma < fdm.noise_sigma);
    }
}
