//! Printer firmware safety checks.
//!
//! Table 1 of the paper lists "damage to printer actuators using malicious
//! coordinates" as a slicing/G-code-stage attack, mitigated by an "actuator
//! limit switch preventing physical damage". This module is that limit
//! switch: it vets an incoming part program against the machine's build
//! volume and kinematic limits before any motor moves.

use std::fmt;

use am_geom::{Aabb3, Point3};
use am_slicer::ToolPath;

/// The machine's physical work envelope and kinematic limits.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildEnvelope {
    /// Reachable volume (build-plate coordinates, mm).
    pub volume: Aabb3,
    /// Maximum commandable feed rate (mm/s).
    pub max_feed_mm_per_s: f64,
}

impl BuildEnvelope {
    /// The Dimension Elite's 203 × 203 × 305 mm envelope.
    pub fn dimension_elite() -> Self {
        BuildEnvelope {
            volume: Aabb3::new(Point3::ZERO, Point3::new(203.0, 203.0, 305.0)),
            max_feed_mm_per_s: 100.0,
        }
    }

    /// The Objet30 Pro's 294 × 192 × 148 mm envelope.
    pub fn objet30_pro() -> Self {
        BuildEnvelope {
            volume: Aabb3::new(Point3::ZERO, Point3::new(294.0, 192.0, 148.0)),
            max_feed_mm_per_s: 200.0,
        }
    }
}

/// One firmware-level violation found in a part program.
#[derive(Debug, Clone, PartialEq)]
pub enum LimitViolation {
    /// A commanded coordinate leaves the build volume.
    OutOfEnvelope {
        /// Index of the offending road.
        road: usize,
        /// The offending coordinate.
        at: Point3,
    },
    /// A coordinate is not a finite number (parser exploitation attempt).
    NonFinite {
        /// Index of the offending road.
        road: usize,
    },
    /// The commanded head feed rate exceeds the machine's kinematic limit
    /// (the Table 1 "firmware glitch" / feed-spike attack).
    FeedExceeded {
        /// Commanded feed (mm/s).
        commanded: f64,
        /// Machine maximum (mm/s).
        max: f64,
    },
}

impl fmt::Display for LimitViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitViolation::OutOfEnvelope { road, at } => {
                write!(f, "road {road} commands {at}, outside the build envelope")
            }
            LimitViolation::NonFinite { road } => {
                write!(f, "road {road} contains a non-finite coordinate")
            }
            LimitViolation::FeedExceeded { commanded, max } => {
                write!(f, "commanded feed {commanded} mm/s exceeds the machine limit {max} mm/s")
            }
        }
    }
}

/// Vets a part program against the machine envelope, returning every
/// violation (empty = safe to print).
///
/// # Examples
///
/// ```
/// use am_printer::{check_limits, BuildEnvelope};
/// use am_slicer::ToolPath;
///
/// let violations = check_limits(&ToolPath::default(), &BuildEnvelope::dimension_elite());
/// assert!(violations.is_empty());
/// ```
pub fn check_limits(toolpath: &ToolPath, envelope: &BuildEnvelope) -> Vec<LimitViolation> {
    check_limits_at_feed(toolpath, envelope, None)
}

/// Vets a part program like [`check_limits`], additionally checking the
/// commanded head feed rate against the machine's kinematic limit when one
/// is supplied. A non-finite commanded feed also violates.
pub fn check_limits_at_feed(
    toolpath: &ToolPath,
    envelope: &BuildEnvelope,
    feed_mm_per_s: Option<f64>,
) -> Vec<LimitViolation> {
    let mut violations = Vec::new();
    if let Some(feed) = feed_mm_per_s {
        if !feed.is_finite() || feed > envelope.max_feed_mm_per_s {
            violations.push(LimitViolation::FeedExceeded {
                commanded: feed,
                max: envelope.max_feed_mm_per_s,
            });
        }
    }
    for (i, road) in toolpath.roads.iter().enumerate() {
        let points = [road.from.to_3d(road.z), road.to.to_3d(road.z)];
        if points.iter().any(|p| !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite())) {
            violations.push(LimitViolation::NonFinite { road: i });
            continue;
        }
        for p in points {
            if !envelope.volume.contains(p) {
                violations.push(LimitViolation::OutOfEnvelope { road: i, at: p });
                break;
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::Point2;
    use am_slicer::{Road, RoadKind, ToolMaterial};

    fn road(x: f64, y: f64, z: f64) -> Road {
        Road {
            from: Point2::new(10.0, 10.0),
            to: Point2::new(x, y),
            z,
            material: ToolMaterial::Model,
            kind: RoadKind::Infill,
            body: None,
        }
    }

    fn toolpath(roads: Vec<Road>) -> ToolPath {
        ToolPath { roads, layer_height: 0.2, road_width: 0.5 }
    }

    #[test]
    fn benign_program_passes() {
        let tp = toolpath(vec![road(50.0, 50.0, 1.0), road(100.0, 20.0, 1.2)]);
        assert!(check_limits(&tp, &BuildEnvelope::dimension_elite()).is_empty());
    }

    #[test]
    fn malicious_coordinates_are_caught() {
        // The Table 1 attack: drive the head through the gantry.
        let tp = toolpath(vec![road(50.0, 50.0, 1.0), road(9999.0, 50.0, 1.0), road(-5.0, 0.0, 1.0)]);
        let violations = check_limits(&tp, &BuildEnvelope::dimension_elite());
        assert_eq!(violations.len(), 2);
        assert!(matches!(violations[0], LimitViolation::OutOfEnvelope { road: 1, .. }));
    }

    #[test]
    fn non_finite_coordinates_are_caught() {
        let tp = toolpath(vec![road(f64::NAN, 1.0, 0.2)]);
        let violations = check_limits(&tp, &BuildEnvelope::dimension_elite());
        assert_eq!(violations, vec![LimitViolation::NonFinite { road: 0 }]);
        assert!(violations[0].to_string().contains("non-finite"));
    }

    #[test]
    fn feed_spike_is_caught() {
        let tp = toolpath(vec![road(50.0, 50.0, 1.0)]);
        let env = BuildEnvelope::dimension_elite();
        assert!(check_limits_at_feed(&tp, &env, Some(30.0)).is_empty());
        let spiked = check_limits_at_feed(&tp, &env, Some(1e6));
        assert!(matches!(spiked[0], LimitViolation::FeedExceeded { .. }));
        let nan = check_limits_at_feed(&tp, &env, Some(f64::NAN));
        assert!(matches!(nan[0], LimitViolation::FeedExceeded { .. }));
    }

    #[test]
    fn envelopes_differ_by_machine() {
        let tall = toolpath(vec![road(50.0, 50.0, 200.0)]);
        assert!(check_limits(&tall, &BuildEnvelope::dimension_elite()).is_empty());
        assert!(!check_limits(&tall, &BuildEnvelope::objet30_pro()).is_empty());
    }
}
