//! Build materials and their mechanical parameters.

use std::fmt;

/// What occupies a voxel of the printed artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Material {
    /// Nothing (air / dissolved support).
    #[default]
    Empty,
    /// Build material.
    Model,
    /// Soluble support material.
    Support,
}

impl fmt::Display for Material {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Material::Empty => write!(f, "empty"),
            Material::Model => write!(f, "model"),
            Material::Support => write!(f, "support"),
        }
    }
}

/// Bulk mechanical parameters of a build material, used by the virtual
/// tensile tester to scale lattice springs.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialSpec {
    /// Material name.
    pub name: &'static str,
    /// Young's modulus (GPa).
    pub young_modulus_gpa: f64,
    /// Ultimate tensile strength (MPa).
    pub tensile_strength_mpa: f64,
    /// Elongation at break of a perfectly printed road (strain).
    pub elongation_at_break: f64,
    /// Density (g/cm³).
    pub density_g_cm3: f64,
}

impl MaterialSpec {
    /// Stratasys ABS model material (P430-class), the paper's FDM filament.
    pub fn abs() -> Self {
        MaterialSpec {
            name: "ABS",
            young_modulus_gpa: 2.1,
            tensile_strength_mpa: 33.0,
            elongation_at_break: 0.10,
            density_g_cm3: 1.04,
        }
    }

    /// Stratasys VeroClear rigid photopolymer, the paper's PolyJet resin.
    pub fn vero_clear() -> Self {
        MaterialSpec {
            name: "VeroClear",
            young_modulus_gpa: 2.5,
            tensile_strength_mpa: 58.0,
            elongation_at_break: 0.18,
            density_g_cm3: 1.18,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_physical() {
        for spec in [MaterialSpec::abs(), MaterialSpec::vero_clear()] {
            assert!(spec.young_modulus_gpa > 0.0);
            assert!(spec.tensile_strength_mpa > 0.0);
            assert!(spec.elongation_at_break > 0.0 && spec.elongation_at_break < 1.0);
            assert!(spec.density_g_cm3 > 0.5 && spec.density_g_cm3 < 2.0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Material::Model.to_string(), "model");
        assert_eq!(Material::Empty.to_string(), "empty");
    }
}
