//! The printed artifact: a voxel model built by simulated deposition.
//!
//! Deposition has two interchangeable kernels (pinned equal in tests):
//! the optimized kernel precomputes every road's jitter radius (same RNG
//! draw order as before), groups roads by their — single — layer, and
//! stamps whole layers concurrently with squared-distance tests; the
//! reference kernel ([`PrintedPart::try_from_toolpath_reference`]) is the
//! original road-at-a-time loop, kept as the benchmark baseline.

use am_geom::{Aabb3, Point3, Transform3};
use am_par::{Parallelism, Pool};
use am_slicer::{ToolMaterial, ToolPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Material, PrinterProfile, ProfileError};

/// Errors from [`PrintedPart::try_from_toolpath`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PrintError {
    /// The machine profile is invalid.
    Profile(ProfileError),
    /// The tool path has no roads.
    EmptyToolPath,
    /// The tool path carries no layer height / road width metadata (e.g. a
    /// G-code file with a stripped header).
    MissingLayerGeometry {
        /// Layer height found (mm).
        layer_height: f64,
        /// Road width found (mm).
        road_width: f64,
    },
    /// A road coordinate is NaN or infinite; the deposition grid cannot be
    /// sized. (Firmware vetting catches this earlier in the pipeline.)
    NonFiniteGeometry,
    /// The voxel grid implied by the road extents exceeds the supported
    /// size — a corrupted tool path cannot demand unbounded memory.
    GridTooLarge {
        /// Voxels the tool path would require.
        voxels: u128,
        /// Supported maximum.
        max: u64,
    },
}

impl std::fmt::Display for PrintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrintError::Profile(e) => write!(f, "invalid printer profile: {e}"),
            PrintError::EmptyToolPath => write!(f, "cannot print an empty tool path"),
            PrintError::MissingLayerGeometry { layer_height, road_width } => write!(
                f,
                "tool path missing layer geometry (layer_height {layer_height}, \
                 road_width {road_width})"
            ),
            PrintError::NonFiniteGeometry => {
                write!(f, "tool path contains non-finite coordinates")
            }
            PrintError::GridTooLarge { voxels, max } => {
                write!(f, "tool path spans {voxels} voxels, exceeding the supported {max}")
            }
        }
    }
}

impl std::error::Error for PrintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrintError::Profile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProfileError> for PrintError {
    fn from(e: ProfileError) -> Self {
        PrintError::Profile(e)
    }
}

/// A printed part: the voxelized result of running a tool path on a
/// [`PrinterProfile`].
///
/// Voxels live in **build** coordinates (xy = half a road width, z = one
/// layer). The part also keeps the model→build transform used by the
/// slicer, so inspection and the virtual test bench can sample material in
/// **model** coordinates regardless of print orientation.
///
/// # Examples
///
/// ```
/// use am_cad::parts::{intact_prism, PrismDims};
/// use am_mesh::{tessellate_shells, Resolution};
/// use am_printer::{Material, PrintedPart, PrinterProfile};
/// use am_slicer::{
///     build_transform, generate_toolpath, orient_shells, slice_shells, Orientation,
///     SlicerConfig,
/// };
///
/// let part = intact_prism(&PrismDims::default()).resolve()?;
/// let shells = tessellate_shells(&part, &Resolution::Fine.params());
/// let oriented = orient_shells(&shells, Orientation::Xy);
/// let to_build = build_transform(&shells, Orientation::Xy);
/// let sliced = slice_shells(&oriented, 0.1778);
/// let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
/// let printed = PrintedPart::from_toolpath(&toolpath, &PrinterProfile::dimension_elite(), to_build, 7);
/// assert!(printed.voxel_count(Material::Model) > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrintedPart {
    profile: PrinterProfile,
    origin: Point3,
    voxel_xy: f64,
    voxel_z: f64,
    nx: usize,
    ny: usize,
    nz: usize,
    material: Vec<Material>,
    body: Vec<u16>,
    to_build: Transform3,
    seed: u64,
}

/// The raw parts of a [`PrintedPart`], produced by
/// [`PrintedPart::to_raw`] and consumed by [`PrintedPart::from_raw`] —
/// the decomposed form a serialization layer round-trips through.
#[derive(Debug, Clone)]
pub struct PrintedPartRaw {
    /// Machine profile the part was printed on.
    pub profile: PrinterProfile,
    /// Build-frame position of voxel `(0, 0, 0)`'s minimum corner.
    pub origin: Point3,
    /// In-plane voxel size (mm).
    pub voxel_xy: f64,
    /// Vertical voxel size (mm).
    pub voxel_z: f64,
    /// Grid extent along x (voxels).
    pub nx: usize,
    /// Grid extent along y (voxels).
    pub ny: usize,
    /// Grid extent along z (voxels).
    pub nz: usize,
    /// Per-voxel material, row-major `(k * ny + j) * nx + i`.
    pub material: Vec<Material>,
    /// Per-voxel body index (meaningful for model voxels only).
    pub body: Vec<u16>,
    /// The model→build transform the slicer used.
    pub to_build: Transform3,
    /// Deposition noise seed.
    pub seed: u64,
}

impl PrintedPart {
    /// Deposits a tool path on the given machine.
    ///
    /// `to_build` is the model→build transform the slicer used (see
    /// [`am_slicer::build_transform`]); `seed` drives the machine's
    /// deposition noise and downstream specimen-to-specimen scatter.
    ///
    /// # Panics
    ///
    /// Panics if the tool path is empty or its layer geometry is invalid.
    /// Prefer [`PrintedPart::try_from_toolpath`] in library code.
    pub fn from_toolpath(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
    ) -> Self {
        match Self::try_from_toolpath(toolpath, profile, to_build, seed) {
            Ok(part) => part,
            Err(e) => panic!("{e}"),
        }
    }

    /// Largest supported deposition grid (voxels). At 3 bytes per voxel
    /// this caps the build at ~400 MB; every real part in the paper's
    /// envelopes is orders of magnitude below it.
    pub const MAX_VOXELS: u64 = 1 << 27;

    /// Deposits a tool path on the given machine, returning a typed error
    /// instead of panicking on invalid input.
    ///
    /// # Errors
    ///
    /// [`PrintError::Profile`] for a bad machine profile,
    /// [`PrintError::EmptyToolPath`] / [`PrintError::MissingLayerGeometry`]
    /// for part programs with nothing to deposit,
    /// [`PrintError::NonFiniteGeometry`] for NaN/infinite coordinates, and
    /// [`PrintError::GridTooLarge`] when the road extents would demand an
    /// unreasonable voxel grid.
    pub fn try_from_toolpath(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
    ) -> Result<Self, PrintError> {
        Self::try_from_toolpath_with(toolpath, profile, to_build, seed, Parallelism::serial())
    }

    /// [`PrintedPart::try_from_toolpath`] with an explicit thread budget.
    ///
    /// Output is bit-identical for every `parallelism` value: every road
    /// lands in exactly one voxel layer, so layers partition the writes;
    /// jitter radii are drawn serially in road order (preserving the RNG
    /// stream) and roads stamp in road order within each layer.
    ///
    /// # Errors
    ///
    /// Same as [`PrintedPart::try_from_toolpath`].
    pub fn try_from_toolpath_with(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
        parallelism: Parallelism,
    ) -> Result<Self, PrintError> {
        let mut part = Self::empty_grid(toolpath, profile, to_build, seed)?;

        let mut rng = StdRng::seed_from_u64(seed);
        let radii: Vec<f64> = toolpath
            .roads
            .iter()
            .map(|_| {
                // Road-width modulation noise: under/over-extrusion.
                let jitter: f64 = 1.0 + profile.noise_sigma * rng.gen_range(-1.5..1.5);
                (toolpath.road_width / 2.0) * jitter.clamp(0.6, 1.4)
            })
            .collect();

        // Group road indices by voxel layer (order-preserving, so each
        // layer stamps its roads in the same order the serial loop would).
        let mut layer_roads: Vec<Vec<u32>> = vec![Vec::new(); part.nz];
        for (ri, road) in toolpath.roads.iter().enumerate() {
            let k = ((road.z - part.origin.z) / part.voxel_z).floor();
            if k >= 0.0 && (k as usize) < part.nz {
                layer_roads[k as usize].push(ri as u32);
            }
        }

        // Each road's squared radius is used once per voxel-row test;
        // compute it once per road, up front.
        let radii_sq: Vec<f64> = radii.iter().map(|r| r * r).collect();

        let plane = part.nx * part.ny;
        let (origin, voxel_xy, nx, ny) = (part.origin, part.voxel_xy, part.nx, part.ny);
        // Hand each worker a contiguous *range* of layers rather than one
        // layer at a time: most parts have hundreds of thin layers, and
        // per-layer work items made the distribution overhead (one mutex
        // cell per layer) comparable to the stamping itself. Four chunks
        // per worker keeps load balancing without the per-layer traffic.
        let workers = parallelism.thread_count().min(part.nz.max(1));
        let chunk_layers = part.nz.div_ceil(workers * 4).max(1);
        let work: Vec<(usize, &mut [Material], &mut [u16])> = part
            .material
            .chunks_mut(plane * chunk_layers)
            .zip(part.body.chunks_mut(plane * chunk_layers))
            .enumerate()
            .map(|(c, (m, b))| (c * chunk_layers, m, b))
            .collect();
        let pool = Pool::new(parallelism);
        pool.par_consume(work, |(k0, chunk_mat, chunk_body)| {
            for (dk, (layer_mat, layer_body)) in
                chunk_mat.chunks_mut(plane).zip(chunk_body.chunks_mut(plane)).enumerate()
            {
                for &ri in &layer_roads[k0 + dk] {
                    stamp_road_layer(
                        layer_mat,
                        layer_body,
                        &toolpath.roads[ri as usize],
                        radii[ri as usize],
                        radii_sq[ri as usize],
                        origin,
                        voxel_xy,
                        nx,
                        ny,
                    );
                }
            }
        });
        Ok(part)
    }

    /// The original road-at-a-time deposition loop: serial, one RNG draw
    /// then one stamp per road, exact (square-root) distance tests. Kept as
    /// the benchmark baseline the optimized kernel is measured against.
    ///
    /// # Errors
    ///
    /// Same as [`PrintedPart::try_from_toolpath`].
    pub fn try_from_toolpath_reference(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
    ) -> Result<Self, PrintError> {
        let mut part = Self::empty_grid(toolpath, profile, to_build, seed)?;
        let mut rng = StdRng::seed_from_u64(seed);
        for road in &toolpath.roads {
            // Road-width modulation noise: under/over-extrusion.
            let jitter: f64 = 1.0 + profile.noise_sigma * rng.gen_range(-1.5..1.5);
            let radius = (toolpath.road_width / 2.0) * jitter.clamp(0.6, 1.4);
            part.stamp_road(road, radius);
        }
        Ok(part)
    }

    /// Validates inputs and allocates the empty deposition grid.
    fn empty_grid(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
    ) -> Result<Self, PrintError> {
        profile.validate()?;
        if toolpath.roads.is_empty() {
            return Err(PrintError::EmptyToolPath);
        }
        let (h, w) = (toolpath.layer_height, toolpath.road_width);
        if !(h.is_finite() && h > 0.0 && w.is_finite() && w > 0.0) {
            return Err(PrintError::MissingLayerGeometry { layer_height: h, road_width: w });
        }

        let voxel_xy = toolpath.road_width / 2.0;
        let voxel_z = toolpath.layer_height;
        let mut min = Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut max = Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for r in &toolpath.roads {
            if !(r.from.x.is_finite()
                && r.from.y.is_finite()
                && r.to.x.is_finite()
                && r.to.y.is_finite()
                && r.z.is_finite())
            {
                return Err(PrintError::NonFiniteGeometry);
            }
            for p in [r.from, r.to] {
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
            }
            min.z = min.z.min(r.z);
            max.z = max.z.max(r.z);
        }
        let margin = toolpath.road_width;
        let origin = Point3::new(min.x - margin, min.y - margin, min.z - voxel_z / 2.0);
        // Size the grid in f64 first: with finite extents and positive voxel
        // sizes the counts are finite, but a corrupted tool path can still
        // demand an absurd grid — bound it before allocating.
        let fx = ((max.x - min.x) + 2.0 * margin) / voxel_xy;
        let fy = ((max.y - min.y) + 2.0 * margin) / voxel_xy;
        let fz = (max.z - min.z) / voxel_z;
        if !(fx.is_finite() && fy.is_finite() && fz.is_finite()) {
            return Err(PrintError::NonFiniteGeometry);
        }
        let nx = fx.ceil().clamp(0.0, 1e18) as u128 + 1;
        let ny = fy.ceil().clamp(0.0, 1e18) as u128 + 1;
        let nz = fz.round().clamp(0.0, 1e18) as u128 + 1;
        let voxels = nx * ny * nz;
        if voxels > u128::from(Self::MAX_VOXELS) {
            return Err(PrintError::GridTooLarge { voxels, max: Self::MAX_VOXELS });
        }
        let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);

        Ok(PrintedPart {
            profile: profile.clone(),
            origin,
            voxel_xy,
            voxel_z,
            nx,
            ny,
            nz,
            material: vec![Material::Empty; nx * ny * nz],
            body: vec![u16::MAX; nx * ny * nz],
            to_build,
            seed,
        })
    }

    /// Reference stamping: exact distance test, whole-grid indexing.
    fn stamp_road(&mut self, road: &am_slicer::Road, radius: f64) {
        let k = ((road.z - self.origin.z) / self.voxel_z).floor();
        if k < 0.0 || k as usize >= self.nz {
            return;
        }
        let k = k as usize;
        let material = match road.material {
            ToolMaterial::Model => Material::Model,
            ToolMaterial::Support => Material::Support,
        };
        let (a, b) = (road.from, road.to);
        let lo_x = (a.x.min(b.x) - radius - self.origin.x) / self.voxel_xy;
        let hi_x = (a.x.max(b.x) + radius - self.origin.x) / self.voxel_xy;
        let lo_y = (a.y.min(b.y) - radius - self.origin.y) / self.voxel_xy;
        let hi_y = (a.y.max(b.y) + radius - self.origin.y) / self.voxel_xy;
        let i0 = lo_x.floor().max(0.0) as usize;
        let i1 = (hi_x.ceil() as usize).min(self.nx - 1);
        let j0 = lo_y.floor().max(0.0) as usize;
        let j1 = (hi_y.ceil() as usize).min(self.ny - 1);
        let seg = am_geom::Segment2::new(a, b);
        for j in j0..=j1 {
            for i in i0..=i1 {
                let c = am_geom::Point2::new(
                    self.origin.x + (i as f64 + 0.5) * self.voxel_xy,
                    self.origin.y + (j as f64 + 0.5) * self.voxel_xy,
                );
                if seg.distance_to_point(c) <= radius {
                    let idx = (k * self.ny + j) * self.nx + i;
                    // Model never gets overwritten by support.
                    if material == Material::Model || self.material[idx] == Material::Empty {
                        self.material[idx] = material;
                    }
                    if material == Material::Model {
                        if let Some(body) = road.body {
                            self.body[idx] = body;
                        }
                    }
                }
            }
        }
    }

    /// Decomposes the artifact into its raw parts — everything a
    /// serialization layer (the stage-cache spill tier) needs to rebuild
    /// a bit-identical copy with [`PrintedPart::from_raw`].
    pub fn to_raw(&self) -> PrintedPartRaw {
        PrintedPartRaw {
            profile: self.profile.clone(),
            origin: self.origin,
            voxel_xy: self.voxel_xy,
            voxel_z: self.voxel_z,
            nx: self.nx,
            ny: self.ny,
            nz: self.nz,
            material: self.material.clone(),
            body: self.body.clone(),
            to_build: self.to_build,
            seed: self.seed,
        }
    }

    /// Rebuilds an artifact from [`PrintedPart::to_raw`] parts.
    ///
    /// # Errors
    ///
    /// A description of the first structural inconsistency: non-positive
    /// voxel sizes, a grid above [`PrintedPart::MAX_VOXELS`], or voxel
    /// arrays whose length disagrees with the grid dimensions.
    pub fn from_raw(raw: PrintedPartRaw) -> Result<Self, String> {
        if !(raw.voxel_xy > 0.0 && raw.voxel_z > 0.0) {
            return Err(format!(
                "non-positive voxel sizes ({} × {})",
                raw.voxel_xy, raw.voxel_z
            ));
        }
        let voxels = (raw.nx as u128) * (raw.ny as u128) * (raw.nz as u128);
        if voxels > u128::from(Self::MAX_VOXELS) {
            return Err(format!("grid of {voxels} voxels exceeds the {} cap", Self::MAX_VOXELS));
        }
        if raw.material.len() as u128 != voxels || raw.body.len() as u128 != voxels {
            return Err(format!(
                "voxel arrays ({} material, {} body) disagree with the {}×{}×{} grid",
                raw.material.len(),
                raw.body.len(),
                raw.nx,
                raw.ny,
                raw.nz
            ));
        }
        Ok(PrintedPart {
            profile: raw.profile,
            origin: raw.origin,
            voxel_xy: raw.voxel_xy,
            voxel_z: raw.voxel_z,
            nx: raw.nx,
            ny: raw.ny,
            nz: raw.nz,
            material: raw.material,
            body: raw.body,
            to_build: raw.to_build,
            seed: raw.seed,
        })
    }

    /// The machine profile this part was printed on.
    pub fn profile(&self) -> &PrinterProfile {
        &self.profile
    }

    /// Deposition noise seed (drives downstream specimen scatter too).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Voxel grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Voxel sizes `(xy, z)` in millimetres.
    pub fn voxel_size(&self) -> (f64, f64) {
        (self.voxel_xy, self.voxel_z)
    }

    /// Build-frame bounding box of the voxel grid.
    pub fn bounds(&self) -> Aabb3 {
        Aabb3::new(
            self.origin,
            self.origin
                + am_geom::Vec3::new(
                    self.nx as f64 * self.voxel_xy,
                    self.ny as f64 * self.voxel_xy,
                    self.nz as f64 * self.voxel_z,
                ),
        )
    }

    /// The model→build transform.
    pub fn to_build(&self) -> &Transform3 {
        &self.to_build
    }

    /// Material of voxel `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, i: usize, j: usize, k: usize) -> Material {
        assert!(i < self.nx && j < self.ny && k < self.nz, "voxel out of range");
        self.material[(k * self.ny + j) * self.nx + i]
    }

    /// Body tag of voxel `(i, j, k)` (model voxels only).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn body_at(&self, i: usize, j: usize, k: usize) -> Option<u16> {
        assert!(i < self.nx && j < self.ny && k < self.nz, "voxel out of range");
        let b = self.body[(k * self.ny + j) * self.nx + i];
        (b != u16::MAX).then_some(b)
    }

    fn voxel_of(&self, p: Point3) -> Option<(usize, usize, usize)> {
        let i = ((p.x - self.origin.x) / self.voxel_xy).floor();
        let j = ((p.y - self.origin.y) / self.voxel_xy).floor();
        let k = ((p.z - self.origin.z) / self.voxel_z).floor();
        if i < 0.0 || j < 0.0 || k < 0.0 {
            return None;
        }
        let (i, j, k) = (i as usize, j as usize, k as usize);
        (i < self.nx && j < self.ny && k < self.nz).then_some((i, j, k))
    }

    /// Material at a build-frame point (`Empty` outside the grid).
    pub fn material_at_build(&self, p: Point3) -> Material {
        match self.voxel_of(p) {
            Some((i, j, k)) => self.at(i, j, k),
            None => Material::Empty,
        }
    }

    /// Material at a **model**-frame point.
    pub fn material_at_model(&self, p: Point3) -> Material {
        self.material_at_build(self.to_build.apply(p))
    }

    /// Body tag at a model-frame point.
    pub fn body_at_model(&self, p: Point3) -> Option<u16> {
        match self.voxel_of(self.to_build.apply(p)) {
            Some((i, j, k)) => self.body_at(i, j, k),
            None => None,
        }
    }

    /// Number of voxels of the given material.
    pub fn voxel_count(&self, material: Material) -> usize {
        self.material.iter().filter(|&&m| m == material).count()
    }

    /// Volume (mm³) of the given material.
    pub fn material_volume(&self, material: Material) -> f64 {
        self.voxel_count(material) as f64 * self.voxel_xy * self.voxel_xy * self.voxel_z
    }

    /// Estimated part weight in grams after support removal.
    pub fn weight_g(&self) -> f64 {
        self.material_volume(Material::Model) / 1000.0 * self.profile.model_material.density_g_cm3
    }

    /// Dissolves soluble support material (no-op for insoluble support).
    pub fn dissolve_support(&mut self) {
        if !self.profile.soluble_support {
            return;
        }
        for m in &mut self.material {
            if *m == Material::Support {
                *m = Material::Empty;
            }
        }
    }

    /// Raw voxel slice at layer `k` (row-major, `ny` rows × `nx` columns) —
    /// the simulated CT-scan image used by inspection and authentication.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn ct_slice(&self, k: usize) -> &[Material] {
        assert!(k < self.nz, "layer {k} out of range");
        &self.material[k * self.nx * self.ny..(k + 1) * self.nx * self.ny]
    }
}

/// Writes one voxel under the deposition overwrite rules: model never
/// gets overwritten by support, and only model roads claim a body id.
#[inline]
fn write_voxel(
    row: &mut [Material],
    body_row: &mut [u16],
    i: usize,
    material: Material,
    body: Option<u16>,
) {
    if material == Material::Model || row[i] == Material::Empty {
        row[i] = material;
    }
    if material == Material::Model {
        if let Some(b) = body {
            body_row[i] = b;
        }
    }
}

/// Proof margin (**mm², squared-distance units only**) separating
/// "provably inside/outside" from the exact per-voxel distance test in
/// [`stamp_road_layer`]'s axis-aligned fast paths.
///
/// Derivation of the error bound it must dominate: for an axis-aligned
/// segment the reference [`am_geom::Segment2::distance_squared_to_point`]
/// projects the voxel center onto the segment with the perpendicular
/// coordinate of the nearest point reproduced *exactly* (the projection
/// adds `t * 0.0 = 0.0` along the degenerate axis), so the reference
/// squared distance differs from the analytic `(cy − a.y)²` / `(cx − a.x)²`
/// only by the along-axis projection residual, squared. Build-volume
/// coordinates are below ~10³ mm, where one `f64` ulp is ≤ 2⁻⁴² mm ≈
/// 2.3·10⁻¹³ mm; a few ulps of residual squared is ≲ 10⁻²⁵ mm². Any voxel
/// whose analytic squared distance clears `radius_sq` by this margin
/// (19 orders of magnitude of headroom) is therefore guaranteed to land on
/// the same side of the comparison the reference test takes; voxels inside
/// the margin band fall back to that exact test. The margin is **never**
/// applied as a linear (mm) offset: span membership uses the exact
/// `x_min ≤ center ≤ x_max` / `seg_lo_y ≤ cy ≤ seg_hi_y` bounds, which are
/// safe without a margin because a center at exactly `x_min` projects at
/// `t = 0` with squared distance exactly `(cy − a.y)²`.
const STAMP_PROOF_MARGIN: f64 = 1e-6;

/// Stamps one road into its layer's material/body planes (row-major,
/// `ny` rows × `nx` columns). Same AABB clamping and overwrite rules as
/// [`PrintedPart::stamp_road`], but radius tests compare squared distances
/// (no per-voxel square root), indexing is 2-D, and each row only visits
/// the voxels whose centers can actually lie within `radius` of the
/// segment: the segment is clipped to the row's y-slab and only the
/// clipped span's x-extent (± radius) is scanned.
///
/// Axis-aligned roads — the entire raster infill and most perimeter
/// segments — additionally take a span-fill fast path: along the interior
/// of a horizontal road the squared distance to the segment is the row's
/// constant `(cy − a.y)²`, so when that clears `radius_sq` by
/// [`STAMP_PROOF_MARGIN`] the whole interior span is stamped with **no
/// per-voxel distance test at all** (and symmetric per-voxel `(cx − a.x)²`
/// comparisons handle vertical roads). Endpoint caps and margin-borderline
/// rows run the reference test, so the stamped result is bit-identical to
/// the full-AABB per-voxel scan.
#[allow(clippy::too_many_arguments)]
fn stamp_road_layer(
    layer_mat: &mut [Material],
    layer_body: &mut [u16],
    road: &am_slicer::Road,
    radius: f64,
    radius_sq: f64,
    origin: Point3,
    voxel_xy: f64,
    nx: usize,
    ny: usize,
) {
    let material = match road.material {
        ToolMaterial::Model => Material::Model,
        ToolMaterial::Support => Material::Support,
    };
    let (a, b) = (road.from, road.to);
    let seg_lo_y = a.y.min(b.y);
    let seg_hi_y = a.y.max(b.y);
    let lo_x = (a.x.min(b.x) - radius - origin.x) / voxel_xy;
    let hi_x = (a.x.max(b.x) + radius - origin.x) / voxel_xy;
    let lo_y = (seg_lo_y - radius - origin.y) / voxel_xy;
    let hi_y = (seg_hi_y + radius - origin.y) / voxel_xy;
    let i0 = lo_x.floor().max(0.0) as usize;
    let i1 = (hi_x.ceil() as usize).min(nx - 1);
    let j0 = lo_y.floor().max(0.0) as usize;
    let j1 = (hi_y.ceil() as usize).min(ny - 1);
    let seg = am_geom::Segment2::new(a, b);
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len2 = dx * dx + dy * dy;
    let horizontal = dy == 0.0 && len2 > 0.0;
    let vertical = dx == 0.0 && len2 > 0.0;
    for j in j0..=j1 {
        let cy = origin.y + (j as f64 + 0.5) * voxel_xy;
        // Any voxel center farther than `radius` from the segment's y-range
        // is farther than `radius` from every segment point: skip the row.
        if cy < seg_lo_y - radius || cy > seg_hi_y + radius {
            continue;
        }
        // Clip the segment to the row's reachable y-slab [cy−r, cy+r]; the
        // nearest segment point to any voxel this row stamps has its y in
        // the slab, hence its x in the clipped span. Scan only that span
        // (± radius), widened a voxel each side for rounding headroom.
        // Worth it only for diagonal segments: a vertical road's clipped
        // span is its (already minimal) x-AABB — the ±half-voxel widening
        // makes the clip a provable no-op there, so skip its two
        // divisions per row.
        let (mut ri0, mut ri1) = (i0, i1);
        if dy != 0.0 && dx != 0.0 {
            let t_at = |y: f64| ((y - a.y) / dy).clamp(0.0, 1.0);
            let (t_lo, t_hi) = (t_at(cy - radius), t_at(cy + radius));
            let (x_lo, x_hi) = {
                let xa = a.x + t_lo * (b.x - a.x);
                let xb = a.x + t_hi * (b.x - a.x);
                (xa.min(xb), xa.max(xb))
            };
            let span_lo = ((x_lo - radius - origin.x) / voxel_xy - 0.5).floor();
            let span_hi = ((x_hi + radius - origin.x) / voxel_xy + 0.5).ceil();
            ri0 = ri0.max(span_lo.max(0.0) as usize);
            ri1 = ri1.min(span_hi.max(0.0) as usize);
        }
        let row = &mut layer_mat[j * nx..(j + 1) * nx];
        let body_row = &mut layer_body[j * nx..(j + 1) * nx];

        if horizontal {
            // Along a horizontal road every interior voxel (center x inside
            // the segment's x-range) sits at squared distance (cy − a.y)²
            // exactly: the reference computation projects it onto the
            // segment with zero y displacement, so its x error term is far
            // below the proof margin.
            let wy = cy - a.y;
            let wy2 = wy * wy;
            if wy2 > radius_sq + STAMP_PROOF_MARGIN {
                // Every voxel in the row is provably outside.
                continue;
            }
            if wy2 <= radius_sq - STAMP_PROOF_MARGIN {
                // Interior span: provably inside, stamp without testing.
                // Exact center-in-span bounds — no linear margin: a center
                // at exactly x_min projects at t = 0 with squared distance
                // exactly wy², and a bound-computation rounding error can
                // push a selected center at most a few ulps outside the
                // span, adding a squared x-term ≲ 1e-25 mm² — absorbed by
                // the ≥ STAMP_PROOF_MARGIN headroom wy² already clears.
                let x_min = a.x.min(b.x);
                let x_max = a.x.max(b.x);
                let fl = ((x_min - origin.x) / voxel_xy - 0.5)
                    .ceil()
                    .max(ri0 as f64) as usize;
                let fh = ((x_max - origin.x) / voxel_xy - 0.5)
                    .floor()
                    .min(ri1 as f64);
                if fh >= fl as f64 {
                    let fh = fh as usize;
                    for i in ri0..fl {
                        let c = am_geom::Point2::new(origin.x + (i as f64 + 0.5) * voxel_xy, cy);
                        if seg.distance_squared_to_point(c) <= radius_sq {
                            write_voxel(row, body_row, i, material, road.body);
                        }
                    }
                    for i in fl..=fh {
                        write_voxel(row, body_row, i, material, road.body);
                    }
                    for i in (fh + 1)..=ri1 {
                        let c = am_geom::Point2::new(origin.x + (i as f64 + 0.5) * voxel_xy, cy);
                        if seg.distance_squared_to_point(c) <= radius_sq {
                            write_voxel(row, body_row, i, material, road.body);
                        }
                    }
                    continue;
                }
            }
            // Margin-borderline row (or no interior span): exact test below.
        } else if vertical && cy >= seg_lo_y && cy <= seg_hi_y {
            // Interior row of a vertical road (exact y-range test — at the
            // endpoints the projection clamps and the nearest y equals cy
            // exactly): the squared distance is (cx − a.x)² up to a
            // sub-margin projection residual, so a single comparison
            // replaces the reference computation except inside the margin
            // band.
            for i in ri0..=ri1 {
                let cx = origin.x + (i as f64 + 0.5) * voxel_xy;
                let wx = cx - a.x;
                let wx2 = wx * wx;
                let inside = if wx2 <= radius_sq - STAMP_PROOF_MARGIN {
                    true
                } else if wx2 >= radius_sq + STAMP_PROOF_MARGIN {
                    false
                } else {
                    seg.distance_squared_to_point(am_geom::Point2::new(cx, cy)) <= radius_sq
                };
                if inside {
                    write_voxel(row, body_row, i, material, road.body);
                }
            }
            continue;
        }

        for i in ri0..=ri1 {
            let c = am_geom::Point2::new(origin.x + (i as f64 + 0.5) * voxel_xy, cy);
            if seg.distance_squared_to_point(c) <= radius_sq {
                write_voxel(row, body_row, i, material, road.body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{intact_prism, prism_with_sphere, PrismDims};
    use am_cad::{BodyKind, MaterialRemoval};
    use am_mesh::{tessellate_shells, Resolution};
    use am_slicer::{
        build_transform, generate_toolpath, orient_shells, slice_shells, Orientation,
        SlicerConfig,
    };

    fn print_part(part: &am_cad::ResolvedPart, orientation: Orientation) -> PrintedPart {
        let shells = tessellate_shells(part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, orientation);
        let to_build = build_transform(&shells, orientation);
        let sliced = slice_shells(&oriented, 0.1778);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        PrintedPart::from_toolpath(&toolpath, &PrinterProfile::dimension_elite(), to_build, 42)
    }

    #[test]
    fn printed_prism_volume_close_to_cad() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let printed = print_part(&part, Orientation::Xy);
        let vol = printed.material_volume(Material::Model);
        let exact = 25.4 * 12.7 * 12.7;
        assert!((vol - exact).abs() / exact < 0.15, "vol = {vol} vs {exact}");
    }

    #[test]
    fn embedded_sphere_prints_support_then_dissolves_to_void() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let mut printed = print_part(&part, Orientation::Xy);
        let center = dims.size * 0.5;
        assert_eq!(printed.material_at_model(center), Material::Support);
        printed.dissolve_support();
        assert_eq!(printed.material_at_model(center), Material::Empty);
        assert_eq!(printed.voxel_count(Material::Support), 0);
    }

    #[test]
    fn removal_solid_prints_model_at_center() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let printed = print_part(&part, Orientation::Xy);
        assert_eq!(printed.material_at_model(dims.size * 0.5), Material::Model);
    }

    #[test]
    fn model_frame_sampling_survives_reorientation() {
        let dims = PrismDims::default();
        let part = intact_prism(&dims).resolve().unwrap();
        let printed = print_part(&part, Orientation::Xz);
        // A model-frame point well inside the prism must be model material
        // even though the build frame is rotated.
        assert_eq!(printed.material_at_model(dims.size * 0.5), Material::Model);
        // And a point outside is empty.
        assert_eq!(
            printed.material_at_model(Point3::new(-5.0, -5.0, -5.0)),
            Material::Empty
        );
    }

    #[test]
    fn weight_is_plausible() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let printed = print_part(&part, Orientation::Xy);
        // 4.1 cm³ of ABS ≈ 4.3 g.
        let w = printed.weight_g();
        assert!(w > 3.0 && w < 6.0, "weight {w} g");
    }

    #[test]
    fn deterministic_given_seed() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let a = print_part(&part, Orientation::Xy);
        let b = print_part(&part, Orientation::Xy);
        assert_eq!(a.voxel_count(Material::Model), b.voxel_count(Material::Model));
    }

    #[test]
    fn parallel_stamp_is_bit_identical_to_serial() {
        let part = prism_with_sphere(&PrismDims::default(), BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, Orientation::Xy);
        let to_build = build_transform(&shells, Orientation::Xy);
        let sliced = slice_shells(&oriented, 0.1778);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        let profile = PrinterProfile::dimension_elite();
        let serial = PrintedPart::try_from_toolpath_with(
            &toolpath,
            &profile,
            to_build,
            42,
            am_par::Parallelism::serial(),
        )
        .unwrap();
        for threads in [2, 8] {
            let par = PrintedPart::try_from_toolpath_with(
                &toolpath,
                &profile,
                to_build,
                42,
                am_par::Parallelism::threads(threads),
            )
            .unwrap();
            assert_eq!(serial.material, par.material, "threads = {threads}");
            assert_eq!(serial.body, par.body, "threads = {threads}");
        }
    }

    #[test]
    fn optimized_kernel_matches_reference() {
        // The squared-distance test can only disagree with the exact
        // distance test on voxels whose centre sits within rounding error
        // of the road boundary; none occur on this workload, and the two
        // kernels must otherwise share every RNG draw and write order.
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, Orientation::Xy);
        let to_build = build_transform(&shells, Orientation::Xy);
        let sliced = slice_shells(&oriented, 0.1778);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        let profile = PrinterProfile::dimension_elite();
        let reference =
            PrintedPart::try_from_toolpath_reference(&toolpath, &profile, to_build, 42).unwrap();
        let optimized =
            PrintedPart::try_from_toolpath(&toolpath, &profile, to_build, 42).unwrap();
        assert_eq!(reference.material, optimized.material);
        assert_eq!(reference.body, optimized.body);
    }

    #[test]
    #[should_panic(expected = "empty tool path")]
    fn empty_toolpath_rejected() {
        let tp = am_slicer::ToolPath {
            layer_height: 0.1,
            road_width: 0.5,
            ..Default::default()
        };
        let _ = PrintedPart::from_toolpath(
            &tp,
            &PrinterProfile::dimension_elite(),
            Transform3::identity(),
            0,
        );
    }
}
