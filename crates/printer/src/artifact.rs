//! The printed artifact: a voxel model built by simulated deposition.
//!
//! Deposition has three interchangeable kernels (pinned bit-identical in
//! tests):
//!
//! * the **span-plan** kernel ([`PrintedPart::try_from_toolpath_planned`],
//!   the pipeline default) runs a two-phase scanline pipeline per layer —
//!   a *plan* phase compiling the layer's roads into per-row span plans
//!   (merged `[x_start, x_end)` fill intervals with per-voxel distance
//!   tests only at the span-end caps) and an *execute* phase stamping
//!   whole spans as slice fills (see DESIGN.md §13);
//! * the **stamper** ([`PrintedPart::try_from_toolpath_with`]) precomputes
//!   every road's jitter radius (same RNG draw order as the original
//!   loop), groups roads by their — single — layer, and stamps whole
//!   layers concurrently with squared-distance tests — retained as the
//!   span-plan kernel's oracle;
//! * the **reference** kernel
//!   ([`PrintedPart::try_from_toolpath_reference`]) is the original
//!   road-at-a-time loop, kept as the benchmark baseline.

use std::sync::atomic::{AtomicU64, Ordering};

use am_geom::{Aabb3, Point2, Point3, Transform3};
use am_par::{Parallelism, Pool};
use am_slicer::{Road, ToolMaterial, ToolPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Material, PrinterProfile, ProfileError};

/// Errors from [`PrintedPart::try_from_toolpath`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PrintError {
    /// The machine profile is invalid.
    Profile(ProfileError),
    /// The tool path has no roads.
    EmptyToolPath,
    /// The tool path carries no layer height / road width metadata (e.g. a
    /// G-code file with a stripped header).
    MissingLayerGeometry {
        /// Layer height found (mm).
        layer_height: f64,
        /// Road width found (mm).
        road_width: f64,
    },
    /// A road coordinate is NaN or infinite; the deposition grid cannot be
    /// sized. (Firmware vetting catches this earlier in the pipeline.)
    NonFiniteGeometry,
    /// The voxel grid implied by the road extents exceeds the supported
    /// size — a corrupted tool path cannot demand unbounded memory.
    GridTooLarge {
        /// Voxels the tool path would require.
        voxels: u128,
        /// Supported maximum.
        max: u64,
    },
    /// [`PrintedPart::from_raw`] rejected raw parts with a non-positive
    /// voxel size — a decoded (spilled/wire) artifact that cannot describe
    /// a physical grid.
    RawVoxelSize {
        /// In-plane voxel size found (mm).
        voxel_xy: f64,
        /// Vertical voxel size found (mm).
        voxel_z: f64,
    },
    /// [`PrintedPart::from_raw`] rejected raw parts whose voxel arrays
    /// disagree with the declared grid dimensions — a torn or corrupted
    /// serialized artifact.
    RawGridMismatch {
        /// Length of the material array.
        material: usize,
        /// Length of the body array.
        body: usize,
        /// Declared grid dimensions `(nx, ny, nz)`.
        dims: (usize, usize, usize),
    },
}

impl std::fmt::Display for PrintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrintError::Profile(e) => write!(f, "invalid printer profile: {e}"),
            PrintError::EmptyToolPath => write!(f, "cannot print an empty tool path"),
            PrintError::MissingLayerGeometry { layer_height, road_width } => write!(
                f,
                "tool path missing layer geometry (layer_height {layer_height}, \
                 road_width {road_width})"
            ),
            PrintError::NonFiniteGeometry => {
                write!(f, "tool path contains non-finite coordinates")
            }
            PrintError::GridTooLarge { voxels, max } => {
                write!(f, "tool path spans {voxels} voxels, exceeding the supported {max}")
            }
            PrintError::RawVoxelSize { voxel_xy, voxel_z } => {
                write!(f, "non-positive voxel sizes ({voxel_xy} × {voxel_z})")
            }
            PrintError::RawGridMismatch { material, body, dims: (nx, ny, nz) } => write!(
                f,
                "voxel arrays ({material} material, {body} body) disagree with the \
                 {nx}×{ny}×{nz} grid"
            ),
        }
    }
}

impl std::error::Error for PrintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrintError::Profile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProfileError> for PrintError {
    fn from(e: ProfileError) -> Self {
        PrintError::Profile(e)
    }
}

/// A printed part: the voxelized result of running a tool path on a
/// [`PrinterProfile`].
///
/// Voxels live in **build** coordinates (xy = half a road width, z = one
/// layer). The part also keeps the model→build transform used by the
/// slicer, so inspection and the virtual test bench can sample material in
/// **model** coordinates regardless of print orientation.
///
/// # Examples
///
/// ```
/// use am_cad::parts::{intact_prism, PrismDims};
/// use am_mesh::{tessellate_shells, Resolution};
/// use am_printer::{Material, PrintedPart, PrinterProfile};
/// use am_slicer::{
///     build_transform, generate_toolpath, orient_shells, slice_shells, Orientation,
///     SlicerConfig,
/// };
///
/// let part = intact_prism(&PrismDims::default()).resolve()?;
/// let shells = tessellate_shells(&part, &Resolution::Fine.params());
/// let oriented = orient_shells(&shells, Orientation::Xy);
/// let to_build = build_transform(&shells, Orientation::Xy);
/// let sliced = slice_shells(&oriented, 0.1778);
/// let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
/// let printed = PrintedPart::from_toolpath(&toolpath, &PrinterProfile::dimension_elite(), to_build, 7);
/// assert!(printed.voxel_count(Material::Model) > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrintedPart {
    profile: PrinterProfile,
    origin: Point3,
    voxel_xy: f64,
    voxel_z: f64,
    nx: usize,
    ny: usize,
    nz: usize,
    material: Vec<Material>,
    body: Vec<u16>,
    to_build: Transform3,
    seed: u64,
}

/// The raw parts of a [`PrintedPart`], produced by
/// [`PrintedPart::to_raw`] and consumed by [`PrintedPart::from_raw`] —
/// the decomposed form a serialization layer round-trips through.
#[derive(Debug, Clone)]
pub struct PrintedPartRaw {
    /// Machine profile the part was printed on.
    pub profile: PrinterProfile,
    /// Build-frame position of voxel `(0, 0, 0)`'s minimum corner.
    pub origin: Point3,
    /// In-plane voxel size (mm).
    pub voxel_xy: f64,
    /// Vertical voxel size (mm).
    pub voxel_z: f64,
    /// Grid extent along x (voxels).
    pub nx: usize,
    /// Grid extent along y (voxels).
    pub ny: usize,
    /// Grid extent along z (voxels).
    pub nz: usize,
    /// Per-voxel material, row-major `(k * ny + j) * nx + i`.
    pub material: Vec<Material>,
    /// Per-voxel body index (meaningful for model voxels only).
    pub body: Vec<u16>,
    /// The model→build transform the slicer used.
    pub to_build: Transform3,
    /// Deposition noise seed.
    pub seed: u64,
}

impl PrintedPart {
    /// Deposits a tool path on the given machine.
    ///
    /// `to_build` is the model→build transform the slicer used (see
    /// [`am_slicer::build_transform`]); `seed` drives the machine's
    /// deposition noise and downstream specimen-to-specimen scatter.
    ///
    /// # Panics
    ///
    /// Panics if the tool path is empty or its layer geometry is invalid.
    /// Prefer [`PrintedPart::try_from_toolpath`] in library code.
    pub fn from_toolpath(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
    ) -> Self {
        match Self::try_from_toolpath(toolpath, profile, to_build, seed) {
            Ok(part) => part,
            Err(e) => panic!("{e}"),
        }
    }

    /// Largest supported deposition grid (voxels). At 3 bytes per voxel
    /// this caps the build at ~400 MB; every real part in the paper's
    /// envelopes is orders of magnitude below it.
    pub const MAX_VOXELS: u64 = 1 << 27;

    /// Deposits a tool path on the given machine, returning a typed error
    /// instead of panicking on invalid input.
    ///
    /// # Errors
    ///
    /// [`PrintError::Profile`] for a bad machine profile,
    /// [`PrintError::EmptyToolPath`] / [`PrintError::MissingLayerGeometry`]
    /// for part programs with nothing to deposit,
    /// [`PrintError::NonFiniteGeometry`] for NaN/infinite coordinates, and
    /// [`PrintError::GridTooLarge`] when the road extents would demand an
    /// unreasonable voxel grid.
    pub fn try_from_toolpath(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
    ) -> Result<Self, PrintError> {
        Self::try_from_toolpath_with(toolpath, profile, to_build, seed, Parallelism::serial())
    }

    /// [`PrintedPart::try_from_toolpath`] with an explicit thread budget.
    ///
    /// Output is bit-identical for every `parallelism` value: every road
    /// lands in exactly one voxel layer, so layers partition the writes;
    /// jitter radii are drawn serially in road order (preserving the RNG
    /// stream) and roads stamp in road order within each layer.
    ///
    /// # Errors
    ///
    /// Same as [`PrintedPart::try_from_toolpath`].
    pub fn try_from_toolpath_with(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
        parallelism: Parallelism,
    ) -> Result<Self, PrintError> {
        let mut part = Self::empty_grid(toolpath, profile, to_build, seed)?;

        let mut rng = StdRng::seed_from_u64(seed);
        let radii: Vec<f64> = toolpath
            .roads
            .iter()
            .map(|_| {
                // Road-width modulation noise: under/over-extrusion.
                let jitter: f64 = 1.0 + profile.noise_sigma * rng.gen_range(-1.5..1.5);
                (toolpath.road_width / 2.0) * jitter.clamp(0.6, 1.4)
            })
            .collect();

        // Group road indices by voxel layer (order-preserving, so each
        // layer stamps its roads in the same order the serial loop would).
        let mut layer_roads: Vec<Vec<u32>> = vec![Vec::new(); part.nz];
        for (ri, road) in toolpath.roads.iter().enumerate() {
            let k = ((road.z - part.origin.z) / part.voxel_z).floor();
            if k >= 0.0 && (k as usize) < part.nz {
                layer_roads[k as usize].push(ri as u32);
            }
        }

        // Each road's squared radius is used once per voxel-row test;
        // compute it once per road, up front.
        let radii_sq: Vec<f64> = radii.iter().map(|r| r * r).collect();

        let plane = part.nx * part.ny;
        let (origin, voxel_xy, nx, ny) = (part.origin, part.voxel_xy, part.nx, part.ny);
        // Hand each worker a contiguous *range* of layers rather than one
        // layer at a time: most parts have hundreds of thin layers, and
        // per-layer work items made the distribution overhead (one mutex
        // cell per layer) comparable to the stamping itself. Four chunks
        // per worker keeps load balancing without the per-layer traffic.
        let workers = parallelism.thread_count().min(part.nz.max(1));
        let chunk_layers = part.nz.div_ceil(workers * 4).max(1);
        let work: Vec<(usize, &mut [Material], &mut [u16])> = part
            .material
            .chunks_mut(plane * chunk_layers)
            .zip(part.body.chunks_mut(plane * chunk_layers))
            .enumerate()
            .map(|(c, (m, b))| (c * chunk_layers, m, b))
            .collect();
        let pool = Pool::new(parallelism);
        pool.par_consume(work, |(k0, chunk_mat, chunk_body)| {
            for (dk, (layer_mat, layer_body)) in
                chunk_mat.chunks_mut(plane).zip(chunk_body.chunks_mut(plane)).enumerate()
            {
                for &ri in &layer_roads[k0 + dk] {
                    stamp_road_layer(
                        layer_mat,
                        layer_body,
                        &toolpath.roads[ri as usize],
                        radii[ri as usize],
                        radii_sq[ri as usize],
                        origin,
                        voxel_xy,
                        nx,
                        ny,
                    );
                }
            }
        });
        Ok(part)
    }

    /// The original road-at-a-time deposition loop: serial, one RNG draw
    /// then one stamp per road, exact (square-root) distance tests. Kept as
    /// the benchmark baseline the optimized kernel is measured against.
    ///
    /// # Errors
    ///
    /// Same as [`PrintedPart::try_from_toolpath`].
    pub fn try_from_toolpath_reference(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
    ) -> Result<Self, PrintError> {
        let mut part = Self::empty_grid(toolpath, profile, to_build, seed)?;
        let mut rng = StdRng::seed_from_u64(seed);
        for road in &toolpath.roads {
            // Road-width modulation noise: under/over-extrusion.
            let jitter: f64 = 1.0 + profile.noise_sigma * rng.gen_range(-1.5..1.5);
            let radius = (toolpath.road_width / 2.0) * jitter.clamp(0.6, 1.4);
            part.stamp_road(road, radius);
        }
        Ok(part)
    }

    /// Scanline span-plan deposition (DESIGN.md §13): per layer, a **plan**
    /// phase compiles the roads — in road order — into per-row span plans
    /// (merged `[x_start, x_end)` fill intervals proven inside the road by
    /// the squared-distance margin argument of [`STAMP_PROOF_MARGIN`], with
    /// per-voxel distance tests deferred to the span-end caps), then an
    /// **execute** phase stamps each row's spans as contiguous slice fills.
    /// Layers are chunked on the same `am-par` pool as
    /// [`PrintedPart::try_from_toolpath_with`], which is retained as this
    /// kernel's oracle: the output grid (material, body attribution and
    /// support alike) is bit-identical across both kernels and every
    /// thread count, because the plan replays exactly the write sequence
    /// the stamper would issue — only batched into spans.
    ///
    /// # Errors
    ///
    /// Same as [`PrintedPart::try_from_toolpath`].
    pub fn try_from_toolpath_planned(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
        parallelism: Parallelism,
    ) -> Result<Self, PrintError> {
        let mut part = Self::empty_grid(toolpath, profile, to_build, seed)?;

        // One pass over the roads builds both shared tables: the per-road
        // context (one jitter draw per road, serially in road order — the
        // exact RNG stream of the reference loop) and the order-preserving
        // layer grouping, so each layer plans its roads in the same order
        // the serial loop would stamp them. For the layer index,
        // `q >= 0 ⇒ trunc ≡ floor`, and a negative quotient fails the
        // reference's `floor(q) >= 0` gate either way — same assignment
        // without the libm floor call; roads arrive layer-ordered, so the
        // layer quotient is memoized on the (bit-exact) z value: the
        // division — the reference formula, which multiplication by a
        // reciprocal would NOT reproduce at layer-boundary z values — runs
        // once per distinct z, not per road.
        let mut rng = StdRng::seed_from_u64(seed);
        let half_width = toolpath.road_width / 2.0;
        let mut ctx: Vec<RoadCtx> = Vec::with_capacity(toolpath.roads.len());
        let mut layer_roads: Vec<Vec<u32>> = vec![Vec::new(); part.nz];
        let mut memo_z = f64::NAN;
        let mut memo_k = usize::MAX;
        for (ri, road) in toolpath.roads.iter().enumerate() {
            let jitter: f64 = 1.0 + profile.noise_sigma * rng.gen_range(-1.5..1.5);
            let radius = half_width * jitter.clamp(0.6, 1.4);
            let material = match road.material {
                ToolMaterial::Model => Material::Model,
                ToolMaterial::Support => Material::Support,
            };
            ctx.push(RoadCtx {
                radius,
                radius_sq: radius * radius,
                key: SpanKey::new(material, road.body),
            });
            if road.z.to_bits() != memo_z.to_bits() {
                memo_z = road.z;
                let q = (road.z - part.origin.z) / part.voxel_z;
                memo_k = if q >= 0.0 && (q as usize) < part.nz { q as usize } else { usize::MAX };
            }
            if memo_k != usize::MAX {
                layer_roads[memo_k].push(ri as u32);
            }
        }

        let plane = part.nx * part.ny;
        let (origin, voxel_xy, nx, ny) = (part.origin, part.voxel_xy, part.nx, part.ny);
        let inv_voxel_xy = 1.0 / voxel_xy;
        let roads: &[Road] = &toolpath.roads;
        let workers = parallelism.thread_count().min(part.nz.max(1));
        let chunk_layers = part.nz.div_ceil(workers * 4).max(1);
        let work: Vec<(usize, &mut [Material], &mut [u16])> = part
            .material
            .chunks_mut(plane * chunk_layers)
            .zip(part.body.chunks_mut(plane * chunk_layers))
            .enumerate()
            .map(|(c, (m, b))| (c * chunk_layers, m, b))
            .collect();
        let pool = Pool::new(parallelism);
        pool.par_consume(work, |(k0, chunk_mat, chunk_body)| {
            // Per-chunk scratch: row buckets reused across the chunk's
            // layers (cleared between layers, capacity kept) and counters
            // accumulated locally — one atomic add per chunk, not per span.
            let mut rows: Vec<Vec<PlannedSpan>> = vec![Vec::new(); ny];
            let mut planned = 0u64;
            let mut filled = 0u64;
            for (dk, (layer_mat, layer_body)) in
                chunk_mat.chunks_mut(plane).zip(chunk_body.chunks_mut(plane)).enumerate()
            {
                for bucket in &mut rows {
                    bucket.clear();
                }
                let mut run = VertRun::idle();
                for &ri in &layer_roads[k0 + dk] {
                    plan_road_layer(
                        &mut rows,
                        &mut run,
                        ri,
                        roads,
                        &ctx,
                        origin,
                        voxel_xy,
                        inv_voxel_xy,
                        nx,
                        ny,
                    );
                }
                flush_vrun(&mut rows, &mut run);
                planned += rows.iter().map(|b| b.len() as u64).sum::<u64>();
                filled += execute_layer(&rows, layer_mat, layer_body, roads, &ctx, origin, voxel_xy, nx);
            }
            SPANS_PLANNED.fetch_add(planned, Ordering::Relaxed);
            SPAN_FILL_VOXELS.fetch_add(filled, Ordering::Relaxed);
        });
        Ok(part)
    }

    /// Order-stable 128-bit digest of the full voxel grid: dimensions,
    /// origin, voxel sizes, then every material and body value in storage
    /// order. Two grids digest equal iff the golden-fixture comparison
    /// of the deposition kernels would pass — used to pin stamper output
    /// without shipping megabytes of fixture.
    pub fn grid_digest(&self) -> u128 {
        // Two independent FNV-1a lanes (different offset bases) over the
        // same byte stream; 2×64 bits makes an accidental collision across
        // kernel drift practically impossible.
        let mut h0: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h1: u64 = 0x6c62_272e_07bb_0142;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h0 = (h0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
                h1 = (h1 ^ u64::from(b ^ 0x5a)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for dim in [self.nx as u64, self.ny as u64, self.nz as u64] {
            eat(&dim.to_le_bytes());
        }
        for f in [
            self.origin.x,
            self.origin.y,
            self.origin.z,
            self.voxel_xy,
            self.voxel_z,
        ] {
            eat(&f.to_bits().to_le_bytes());
        }
        for m in &self.material {
            eat(&[match m {
                Material::Empty => 0u8,
                Material::Model => 1,
                Material::Support => 2,
            }]);
        }
        for b in &self.body {
            eat(&b.to_le_bytes());
        }
        (u128::from(h0) << 64) | u128::from(h1)
    }

    /// Validates inputs and allocates the empty deposition grid.
    fn empty_grid(
        toolpath: &ToolPath,
        profile: &PrinterProfile,
        to_build: Transform3,
        seed: u64,
    ) -> Result<Self, PrintError> {
        profile.validate()?;
        if toolpath.roads.is_empty() {
            return Err(PrintError::EmptyToolPath);
        }
        let (h, w) = (toolpath.layer_height, toolpath.road_width);
        if !(h.is_finite() && h > 0.0 && w.is_finite() && w > 0.0) {
            return Err(PrintError::MissingLayerGeometry { layer_height: h, road_width: w });
        }

        let voxel_xy = toolpath.road_width / 2.0;
        let voxel_z = toolpath.layer_height;
        let mut min = Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut max = Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for r in &toolpath.roads {
            if !(r.from.x.is_finite()
                && r.from.y.is_finite()
                && r.to.x.is_finite()
                && r.to.y.is_finite()
                && r.z.is_finite())
            {
                return Err(PrintError::NonFiniteGeometry);
            }
            for p in [r.from, r.to] {
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
            }
            min.z = min.z.min(r.z);
            max.z = max.z.max(r.z);
        }
        let margin = toolpath.road_width;
        let origin = Point3::new(min.x - margin, min.y - margin, min.z - voxel_z / 2.0);
        // Size the grid in f64 first: with finite extents and positive voxel
        // sizes the counts are finite, but a corrupted tool path can still
        // demand an absurd grid — bound it before allocating.
        let fx = ((max.x - min.x) + 2.0 * margin) / voxel_xy;
        let fy = ((max.y - min.y) + 2.0 * margin) / voxel_xy;
        let fz = (max.z - min.z) / voxel_z;
        if !(fx.is_finite() && fy.is_finite() && fz.is_finite()) {
            return Err(PrintError::NonFiniteGeometry);
        }
        let nx = fx.ceil().clamp(0.0, 1e18) as u128 + 1;
        let ny = fy.ceil().clamp(0.0, 1e18) as u128 + 1;
        let nz = fz.round().clamp(0.0, 1e18) as u128 + 1;
        let voxels = nx * ny * nz;
        if voxels > u128::from(Self::MAX_VOXELS) {
            return Err(PrintError::GridTooLarge { voxels, max: Self::MAX_VOXELS });
        }
        let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);

        Ok(PrintedPart {
            profile: profile.clone(),
            origin,
            voxel_xy,
            voxel_z,
            nx,
            ny,
            nz,
            material: vec![Material::Empty; nx * ny * nz],
            body: vec![u16::MAX; nx * ny * nz],
            to_build,
            seed,
        })
    }

    /// Reference stamping: exact distance test, whole-grid indexing.
    fn stamp_road(&mut self, road: &am_slicer::Road, radius: f64) {
        let k = ((road.z - self.origin.z) / self.voxel_z).floor();
        if k < 0.0 || k as usize >= self.nz {
            return;
        }
        let k = k as usize;
        let material = match road.material {
            ToolMaterial::Model => Material::Model,
            ToolMaterial::Support => Material::Support,
        };
        let (a, b) = (road.from, road.to);
        let lo_x = (a.x.min(b.x) - radius - self.origin.x) / self.voxel_xy;
        let hi_x = (a.x.max(b.x) + radius - self.origin.x) / self.voxel_xy;
        let lo_y = (a.y.min(b.y) - radius - self.origin.y) / self.voxel_xy;
        let hi_y = (a.y.max(b.y) + radius - self.origin.y) / self.voxel_xy;
        let i0 = lo_x.floor().max(0.0) as usize;
        let i1 = (hi_x.ceil() as usize).min(self.nx - 1);
        let j0 = lo_y.floor().max(0.0) as usize;
        let j1 = (hi_y.ceil() as usize).min(self.ny - 1);
        let seg = am_geom::Segment2::new(a, b);
        for j in j0..=j1 {
            for i in i0..=i1 {
                let c = am_geom::Point2::new(
                    self.origin.x + (i as f64 + 0.5) * self.voxel_xy,
                    self.origin.y + (j as f64 + 0.5) * self.voxel_xy,
                );
                if seg.distance_to_point(c) <= radius {
                    let idx = (k * self.ny + j) * self.nx + i;
                    // Model never gets overwritten by support.
                    if material == Material::Model || self.material[idx] == Material::Empty {
                        self.material[idx] = material;
                    }
                    if material == Material::Model {
                        if let Some(body) = road.body {
                            self.body[idx] = body;
                        }
                    }
                }
            }
        }
    }

    /// Decomposes the artifact into its raw parts — everything a
    /// serialization layer (the stage-cache spill tier) needs to rebuild
    /// a bit-identical copy with [`PrintedPart::from_raw`].
    pub fn to_raw(&self) -> PrintedPartRaw {
        PrintedPartRaw {
            profile: self.profile.clone(),
            origin: self.origin,
            voxel_xy: self.voxel_xy,
            voxel_z: self.voxel_z,
            nx: self.nx,
            ny: self.ny,
            nz: self.nz,
            material: self.material.clone(),
            body: self.body.clone(),
            to_build: self.to_build,
            seed: self.seed,
        }
    }

    /// Rebuilds an artifact from [`PrintedPart::to_raw`] parts.
    ///
    /// # Errors
    ///
    /// The first structural inconsistency, typed into the §7 error
    /// taxonomy: [`PrintError::RawVoxelSize`] for non-positive voxel
    /// sizes, [`PrintError::GridTooLarge`] for a grid above
    /// [`PrintedPart::MAX_VOXELS`], or [`PrintError::RawGridMismatch`]
    /// for voxel arrays whose length disagrees with the grid dimensions.
    pub fn from_raw(raw: PrintedPartRaw) -> Result<Self, PrintError> {
        if !(raw.voxel_xy > 0.0 && raw.voxel_z > 0.0) {
            return Err(PrintError::RawVoxelSize {
                voxel_xy: raw.voxel_xy,
                voxel_z: raw.voxel_z,
            });
        }
        let voxels = (raw.nx as u128) * (raw.ny as u128) * (raw.nz as u128);
        if voxels > u128::from(Self::MAX_VOXELS) {
            return Err(PrintError::GridTooLarge { voxels, max: Self::MAX_VOXELS });
        }
        if raw.material.len() as u128 != voxels || raw.body.len() as u128 != voxels {
            return Err(PrintError::RawGridMismatch {
                material: raw.material.len(),
                body: raw.body.len(),
                dims: (raw.nx, raw.ny, raw.nz),
            });
        }
        Ok(PrintedPart {
            profile: raw.profile,
            origin: raw.origin,
            voxel_xy: raw.voxel_xy,
            voxel_z: raw.voxel_z,
            nx: raw.nx,
            ny: raw.ny,
            nz: raw.nz,
            material: raw.material,
            body: raw.body,
            to_build: raw.to_build,
            seed: raw.seed,
        })
    }

    /// The machine profile this part was printed on.
    pub fn profile(&self) -> &PrinterProfile {
        &self.profile
    }

    /// Deposition noise seed (drives downstream specimen scatter too).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Voxel grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Voxel sizes `(xy, z)` in millimetres.
    pub fn voxel_size(&self) -> (f64, f64) {
        (self.voxel_xy, self.voxel_z)
    }

    /// Build-frame bounding box of the voxel grid.
    pub fn bounds(&self) -> Aabb3 {
        Aabb3::new(
            self.origin,
            self.origin
                + am_geom::Vec3::new(
                    self.nx as f64 * self.voxel_xy,
                    self.ny as f64 * self.voxel_xy,
                    self.nz as f64 * self.voxel_z,
                ),
        )
    }

    /// The model→build transform.
    pub fn to_build(&self) -> &Transform3 {
        &self.to_build
    }

    /// Material of voxel `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, i: usize, j: usize, k: usize) -> Material {
        assert!(i < self.nx && j < self.ny && k < self.nz, "voxel out of range");
        self.material[(k * self.ny + j) * self.nx + i]
    }

    /// Body tag of voxel `(i, j, k)` (model voxels only).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn body_at(&self, i: usize, j: usize, k: usize) -> Option<u16> {
        assert!(i < self.nx && j < self.ny && k < self.nz, "voxel out of range");
        let b = self.body[(k * self.ny + j) * self.nx + i];
        (b != u16::MAX).then_some(b)
    }

    fn voxel_of(&self, p: Point3) -> Option<(usize, usize, usize)> {
        let i = ((p.x - self.origin.x) / self.voxel_xy).floor();
        let j = ((p.y - self.origin.y) / self.voxel_xy).floor();
        let k = ((p.z - self.origin.z) / self.voxel_z).floor();
        if i < 0.0 || j < 0.0 || k < 0.0 {
            return None;
        }
        let (i, j, k) = (i as usize, j as usize, k as usize);
        (i < self.nx && j < self.ny && k < self.nz).then_some((i, j, k))
    }

    /// Material at a build-frame point (`Empty` outside the grid).
    pub fn material_at_build(&self, p: Point3) -> Material {
        match self.voxel_of(p) {
            Some((i, j, k)) => self.at(i, j, k),
            None => Material::Empty,
        }
    }

    /// Material at a **model**-frame point.
    pub fn material_at_model(&self, p: Point3) -> Material {
        self.material_at_build(self.to_build.apply(p))
    }

    /// Body tag at a model-frame point.
    pub fn body_at_model(&self, p: Point3) -> Option<u16> {
        match self.voxel_of(self.to_build.apply(p)) {
            Some((i, j, k)) => self.body_at(i, j, k),
            None => None,
        }
    }

    /// Number of voxels of the given material.
    pub fn voxel_count(&self, material: Material) -> usize {
        self.material.iter().filter(|&&m| m == material).count()
    }

    /// Volume (mm³) of the given material.
    pub fn material_volume(&self, material: Material) -> f64 {
        self.voxel_count(material) as f64 * self.voxel_xy * self.voxel_xy * self.voxel_z
    }

    /// Estimated part weight in grams after support removal.
    pub fn weight_g(&self) -> f64 {
        self.material_volume(Material::Model) / 1000.0 * self.profile.model_material.density_g_cm3
    }

    /// Dissolves soluble support material (no-op for insoluble support).
    pub fn dissolve_support(&mut self) {
        if !self.profile.soluble_support {
            return;
        }
        for m in &mut self.material {
            if *m == Material::Support {
                *m = Material::Empty;
            }
        }
    }

    /// Raw voxel slice at layer `k` (row-major, `ny` rows × `nx` columns) —
    /// the simulated CT-scan image used by inspection and authentication.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn ct_slice(&self, k: usize) -> &[Material] {
        assert!(k < self.nz, "layer {k} out of range");
        &self.material[k * self.nx * self.ny..(k + 1) * self.nx * self.ny]
    }
}

/// Writes one voxel under the deposition overwrite rules: model never
/// gets overwritten by support, and only model roads claim a body id.
#[inline]
fn write_voxel(
    row: &mut [Material],
    body_row: &mut [u16],
    i: usize,
    material: Material,
    body: Option<u16>,
) {
    if material == Material::Model || row[i] == Material::Empty {
        row[i] = material;
    }
    if material == Material::Model {
        if let Some(b) = body {
            body_row[i] = b;
        }
    }
}

/// Proof margin (**mm², squared-distance units only**) separating
/// "provably inside/outside" from the exact per-voxel distance test in
/// [`stamp_road_layer`]'s axis-aligned fast paths.
///
/// Derivation of the error bound it must dominate: for an axis-aligned
/// segment the reference [`am_geom::Segment2::distance_squared_to_point`]
/// projects the voxel center onto the segment with the perpendicular
/// coordinate of the nearest point reproduced *exactly* (the projection
/// adds `t * 0.0 = 0.0` along the degenerate axis), so the reference
/// squared distance differs from the analytic `(cy − a.y)²` / `(cx − a.x)²`
/// only by the along-axis projection residual, squared. Build-volume
/// coordinates are below ~10³ mm, where one `f64` ulp is ≤ 2⁻⁴² mm ≈
/// 2.3·10⁻¹³ mm; a few ulps of residual squared is ≲ 10⁻²⁵ mm². Any voxel
/// whose analytic squared distance clears `radius_sq` by this margin
/// (19 orders of magnitude of headroom) is therefore guaranteed to land on
/// the same side of the comparison the reference test takes; voxels inside
/// the margin band fall back to that exact test. The margin is **never**
/// applied as a linear (mm) offset: span membership uses the exact
/// `x_min ≤ center ≤ x_max` / `seg_lo_y ≤ cy ≤ seg_hi_y` bounds, which are
/// safe without a margin because a center at exactly `x_min` projects at
/// `t = 0` with squared distance exactly `(cy − a.y)²`.
const STAMP_PROOF_MARGIN: f64 = 1e-6;

/// Stamps one road into its layer's material/body planes (row-major,
/// `ny` rows × `nx` columns). Same AABB clamping and overwrite rules as
/// [`PrintedPart::stamp_road`], but radius tests compare squared distances
/// (no per-voxel square root), indexing is 2-D, and each row only visits
/// the voxels whose centers can actually lie within `radius` of the
/// segment: the segment is clipped to the row's y-slab and only the
/// clipped span's x-extent (± radius) is scanned.
///
/// Axis-aligned roads — the entire raster infill and most perimeter
/// segments — additionally take a span-fill fast path: along the interior
/// of a horizontal road the squared distance to the segment is the row's
/// constant `(cy − a.y)²`, so when that clears `radius_sq` by
/// [`STAMP_PROOF_MARGIN`] the whole interior span is stamped with **no
/// per-voxel distance test at all** (and symmetric per-voxel `(cx − a.x)²`
/// comparisons handle vertical roads). Endpoint caps and margin-borderline
/// rows run the reference test, so the stamped result is bit-identical to
/// the full-AABB per-voxel scan.
#[allow(clippy::too_many_arguments)]
fn stamp_road_layer(
    layer_mat: &mut [Material],
    layer_body: &mut [u16],
    road: &am_slicer::Road,
    radius: f64,
    radius_sq: f64,
    origin: Point3,
    voxel_xy: f64,
    nx: usize,
    ny: usize,
) {
    let material = match road.material {
        ToolMaterial::Model => Material::Model,
        ToolMaterial::Support => Material::Support,
    };
    let (a, b) = (road.from, road.to);
    let seg_lo_y = a.y.min(b.y);
    let seg_hi_y = a.y.max(b.y);
    let lo_x = (a.x.min(b.x) - radius - origin.x) / voxel_xy;
    let hi_x = (a.x.max(b.x) + radius - origin.x) / voxel_xy;
    let lo_y = (seg_lo_y - radius - origin.y) / voxel_xy;
    let hi_y = (seg_hi_y + radius - origin.y) / voxel_xy;
    let i0 = lo_x.floor().max(0.0) as usize;
    let i1 = (hi_x.ceil() as usize).min(nx - 1);
    let j0 = lo_y.floor().max(0.0) as usize;
    let j1 = (hi_y.ceil() as usize).min(ny - 1);
    let seg = am_geom::Segment2::new(a, b);
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len2 = dx * dx + dy * dy;
    let horizontal = dy == 0.0 && len2 > 0.0;
    let vertical = dx == 0.0 && len2 > 0.0;
    for j in j0..=j1 {
        let cy = origin.y + (j as f64 + 0.5) * voxel_xy;
        // Any voxel center farther than `radius` from the segment's y-range
        // is farther than `radius` from every segment point: skip the row.
        if cy < seg_lo_y - radius || cy > seg_hi_y + radius {
            continue;
        }
        // Clip the segment to the row's reachable y-slab [cy−r, cy+r]; the
        // nearest segment point to any voxel this row stamps has its y in
        // the slab, hence its x in the clipped span. Scan only that span
        // (± radius), widened a voxel each side for rounding headroom.
        // Worth it only for diagonal segments: a vertical road's clipped
        // span is its (already minimal) x-AABB — the ±half-voxel widening
        // makes the clip a provable no-op there, so skip its two
        // divisions per row.
        let (mut ri0, mut ri1) = (i0, i1);
        if dy != 0.0 && dx != 0.0 {
            let t_at = |y: f64| ((y - a.y) / dy).clamp(0.0, 1.0);
            let (t_lo, t_hi) = (t_at(cy - radius), t_at(cy + radius));
            let (x_lo, x_hi) = {
                let xa = a.x + t_lo * (b.x - a.x);
                let xb = a.x + t_hi * (b.x - a.x);
                (xa.min(xb), xa.max(xb))
            };
            let span_lo = ((x_lo - radius - origin.x) / voxel_xy - 0.5).floor();
            let span_hi = ((x_hi + radius - origin.x) / voxel_xy + 0.5).ceil();
            ri0 = ri0.max(span_lo.max(0.0) as usize);
            ri1 = ri1.min(span_hi.max(0.0) as usize);
        }
        let row = &mut layer_mat[j * nx..(j + 1) * nx];
        let body_row = &mut layer_body[j * nx..(j + 1) * nx];

        if horizontal {
            // Along a horizontal road every interior voxel (center x inside
            // the segment's x-range) sits at squared distance (cy − a.y)²
            // exactly: the reference computation projects it onto the
            // segment with zero y displacement, so its x error term is far
            // below the proof margin.
            let wy = cy - a.y;
            let wy2 = wy * wy;
            if wy2 > radius_sq + STAMP_PROOF_MARGIN {
                // Every voxel in the row is provably outside.
                continue;
            }
            if wy2 <= radius_sq - STAMP_PROOF_MARGIN {
                // Interior span: provably inside, stamp without testing.
                // Exact center-in-span bounds — no linear margin: a center
                // at exactly x_min projects at t = 0 with squared distance
                // exactly wy², and a bound-computation rounding error can
                // push a selected center at most a few ulps outside the
                // span, adding a squared x-term ≲ 1e-25 mm² — absorbed by
                // the ≥ STAMP_PROOF_MARGIN headroom wy² already clears.
                let x_min = a.x.min(b.x);
                let x_max = a.x.max(b.x);
                let fl = ((x_min - origin.x) / voxel_xy - 0.5)
                    .ceil()
                    .max(ri0 as f64) as usize;
                let fh = ((x_max - origin.x) / voxel_xy - 0.5)
                    .floor()
                    .min(ri1 as f64);
                if fh >= fl as f64 {
                    let fh = fh as usize;
                    for i in ri0..fl {
                        let c = am_geom::Point2::new(origin.x + (i as f64 + 0.5) * voxel_xy, cy);
                        if seg.distance_squared_to_point(c) <= radius_sq {
                            write_voxel(row, body_row, i, material, road.body);
                        }
                    }
                    for i in fl..=fh {
                        write_voxel(row, body_row, i, material, road.body);
                    }
                    for i in (fh + 1)..=ri1 {
                        let c = am_geom::Point2::new(origin.x + (i as f64 + 0.5) * voxel_xy, cy);
                        if seg.distance_squared_to_point(c) <= radius_sq {
                            write_voxel(row, body_row, i, material, road.body);
                        }
                    }
                    continue;
                }
            }
            // Margin-borderline row (or no interior span): exact test below.
        } else if vertical && cy >= seg_lo_y && cy <= seg_hi_y {
            // Interior row of a vertical road (exact y-range test — at the
            // endpoints the projection clamps and the nearest y equals cy
            // exactly): the squared distance is (cx − a.x)² up to a
            // sub-margin projection residual, so a single comparison
            // replaces the reference computation except inside the margin
            // band.
            for i in ri0..=ri1 {
                let cx = origin.x + (i as f64 + 0.5) * voxel_xy;
                let wx = cx - a.x;
                let wx2 = wx * wx;
                let inside = if wx2 <= radius_sq - STAMP_PROOF_MARGIN {
                    true
                } else if wx2 >= radius_sq + STAMP_PROOF_MARGIN {
                    false
                } else {
                    seg.distance_squared_to_point(am_geom::Point2::new(cx, cy)) <= radius_sq
                };
                if inside {
                    write_voxel(row, body_row, i, material, road.body);
                }
            }
            continue;
        }

        for i in ri0..=ri1 {
            let c = am_geom::Point2::new(origin.x + (i as f64 + 0.5) * voxel_xy, cy);
            if seg.distance_squared_to_point(c) <= radius_sq {
                write_voxel(row, body_row, i, material, road.body);
            }
        }
    }
}

static SPANS_PLANNED: AtomicU64 = AtomicU64::new(0);
static SPAN_FILL_VOXELS: AtomicU64 = AtomicU64::new(0);
/// Cumulative process-global counters of the span-plan deposition kernel
/// ([`PrintedPart::try_from_toolpath_planned`]); the bench harness reads
/// them before/after a run and reports the delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StampCounters {
    /// Span records the plan phase compiled (counted after merging).
    pub spans_planned: u64,
    /// Voxels the execute phase wrote through unconditional span fills
    /// (cap cells resolved by exact tests are not counted).
    pub span_fill_voxels: u64,
}

/// Reads the cumulative [`StampCounters`]. Monotone within a process; the
/// other deposition kernels never touch them.
pub fn stamp_counters() -> StampCounters {
    StampCounters {
        spans_planned: SPANS_PLANNED.load(Ordering::Relaxed),
        span_fill_voxels: SPAN_FILL_VOXELS.load(Ordering::Relaxed),
    }
}

/// Per-road immutable context shared by the span-plan kernel's phases:
/// the jittered stamp radius (linear and squared) and the packed
/// deposition key. Endpoints stay in the borrowed road slice — keeping
/// this at 24 bytes makes the serial context build mostly RNG.
struct RoadCtx {
    radius: f64,
    radius_sq: f64,
    key: SpanKey,
}

/// One planned span in a grid row, all bounds half-open cell indices with
/// the invariant `lo ≤ fill_lo ≤ fill_hi ≤ hi`:
///
/// * `[fill_lo, fill_hi)` — the **fill** interval, proven inside the road
///   (stamped with no per-voxel test);
/// * `[lo, fill_lo)` and `[fill_hi, hi)` — the **cap** cells, resolved by
///   the exact squared-distance test against `road`'s segment (a pure
///   exact span — a diagonal road's row, a radius-borderline row — sets
///   `fill_lo = fill_hi = hi`).
///
/// Buckets hold a row's spans in road order, which is the write-order
/// invariant body attribution (last model road wins) depends on.
#[derive(Clone, Copy)]
struct PlannedSpan {
    lo: u32,
    fill_lo: u32,
    fill_hi: u32,
    hi: u32,
    road: u32,
    key: SpanKey,
}

/// The deposition key of a span, packed for branch-free comparisons:
/// material discriminant in bits 18‥17, a body-present flag in bit 16 and
/// the body id in the low 16 bits. Spans carry it so the execute phase's
/// fill path and the merge check never have to chase `ctx[road]` through
/// the cache — only cap cells (which need the segment geometry for the
/// exact test) dereference the road context.
#[derive(Clone, Copy, PartialEq, Eq)]
struct SpanKey(u32);

impl SpanKey {
    fn new(material: Material, body: Option<u16>) -> Self {
        let m = match material {
            Material::Empty => 0u32,
            Material::Model => 1,
            Material::Support => 2,
        };
        Self((m << 17) | (u32::from(body.is_some()) << 16) | u32::from(body.unwrap_or(0)))
    }

    fn material(self) -> Material {
        match self.0 >> 17 {
            1 => Material::Model,
            2 => Material::Support,
            _ => Material::Empty,
        }
    }

    fn body(self) -> Option<u16> {
        (self.0 & 0x1_0000 != 0).then_some(self.0 as u16)
    }
}

/// Appends a span to a row bucket, merging it into the bucket's last span
/// when that is provably write-order equivalent (DESIGN.md §13): the two
/// spans share one (material, body) key, the earlier span is cap-free on
/// its high side, the later span is entirely cap-free, and the fill
/// intervals overlap or touch with the later one starting inside the
/// earlier one's fill. Same-key fills are idempotent, so executing the
/// fused interval at the earlier span's slot writes the same final state.
#[inline]
fn push_span(bucket: &mut Vec<PlannedSpan>, s: PlannedSpan) {
    if let Some(prev) = bucket.last_mut() {
        // Non-short-circuiting `&`: the six u32 tests are cheaper than
        // five conditional branches on this call's hot path.
        if (prev.key == s.key)
            & (prev.fill_hi == prev.hi)
            & (s.lo == s.fill_lo)
            & (s.fill_hi == s.hi)
            & (s.fill_lo >= prev.fill_lo)
            & (s.fill_lo <= prev.fill_hi)
        {
            prev.fill_hi = prev.fill_hi.max(s.fill_hi);
            prev.hi = prev.fill_hi;
            return;
        }
    }
    bucket.push(s);
}

/// Exact `x.floor().max(0.0) as usize` without the libm `floor` call (the
/// x86-64 baseline has no round instruction, so `f64::floor` is an actual
/// function call): for non-negative values truncation IS floor, and both
/// forms send negatives to 0.
#[inline]
fn floor_clamp0(x: f64) -> usize {
    x.max(0.0) as usize
}

/// Exact `x.ceil() as usize` (saturating at 0 for negatives, as the `as`
/// cast does) without the libm `ceil` call: truncate, then bump by one
/// when truncation lost a fractional part.
#[inline]
fn ceil_clamp0(x: f64) -> usize {
    let x = x.max(0.0);
    let t = x as usize;
    t.saturating_add(usize::from((t as f64) < x))
}

/// Assembles the [`PlannedSpan`] of one classified row scan: touch bounds
/// become the span extent, fill bounds the cap-free core (`hi, hi` when no
/// cell was provably inside).
#[inline]
fn build_span(
    first_touch: Option<usize>,
    last_touch: usize,
    first_fill: Option<usize>,
    last_fill: usize,
    road: u32,
    key: SpanKey,
) -> Option<PlannedSpan> {
    first_touch.map(|lo| {
        let hi = last_touch + 1;
        let (fill_lo, fill_hi) = match first_fill {
            Some(f) => (f, last_fill + 1),
            None => (hi, hi),
        };
        PlannedSpan {
            lo: lo as u32,
            fill_lo: fill_lo as u32,
            fill_hi: fill_hi as u32,
            hi: hi as u32,
            road,
            key,
        }
    })
}

/// Margin-classifies the cells `i_lo..=i_hi` of one grid row against an
/// axis-aligned road whose x-extent is `[x_min, x_max]` and whose squared
/// y-offset for this row is `d2_extra`: each cell's conservative squared
/// distance is `clamp(cx − [x_min, x_max])² + d2_extra`, which matches the
/// reference segment distance to within a few ulps — far inside the
/// `STAMP_PROOF_MARGIN` band — so `≤ r² − margin` proves the cell inside
/// (fill), `≥ r² + margin` proves it outside (skip), and only band cells
/// are left as exact caps. The clamped offset is unimodal over the
/// monotone cell centres, so fills form one interval flanked by bands.
#[allow(clippy::too_many_arguments)]
#[inline]
fn scan_span(
    i_lo: usize,
    i_hi: usize,
    x_min: f64,
    x_max: f64,
    d2_extra: f64,
    radius_sq: f64,
    origin_x: f64,
    voxel_xy: f64,
    road: u32,
    key: SpanKey,
) -> Option<PlannedSpan> {
    let mut first_touch = None;
    let mut last_touch = 0usize;
    let mut first_fill = None;
    let mut last_fill = 0usize;
    for i in i_lo..=i_hi {
        let cx = origin_x + (i as f64 + 0.5) * voxel_xy;
        let ddx = if cx < x_min {
            cx - x_min
        } else if cx > x_max {
            cx - x_max
        } else {
            0.0
        };
        let d2 = ddx * ddx + d2_extra;
        if d2 >= radius_sq + STAMP_PROOF_MARGIN {
            continue;
        }
        if first_touch.is_none() {
            first_touch = Some(i);
        }
        last_touch = i;
        if d2 <= radius_sq - STAMP_PROOF_MARGIN {
            if first_fill.is_none() {
                first_fill = Some(i);
            }
            last_fill = i;
        }
    }
    build_span(first_touch, last_touch, first_fill, last_fill, road, key)
}

/// Deferred fusion of a run of consecutive vertical roads (one per layer):
/// while successive roads share the deposition key, the interior row range
/// and a cap-free merge-compatible span, the per-row bucket pushes they
/// would all perform individually collapse into one fused span per row,
/// flushed when the run breaks. The fused result is exactly what the
/// per-road sequence of [`push_span`] merges would have left in each
/// bucket, because every merge input is row-independent.
struct VertRun {
    active: bool,
    /// Interior row range `[ja, jb_plus)` shared by every member.
    ja: usize,
    jb_plus: usize,
    acc: PlannedSpan,
}

impl VertRun {
    const fn idle() -> Self {
        Self {
            active: false,
            ja: 0,
            jb_plus: 0,
            acc: PlannedSpan { lo: 0, fill_lo: 0, fill_hi: 0, hi: 0, road: 0, key: SpanKey(0) },
        }
    }
}

/// Flushes a pending vertical run: one push of the fused span into each
/// interior row bucket.
fn flush_vrun(rows: &mut [Vec<PlannedSpan>], run: &mut VertRun) {
    if run.active {
        for bucket in &mut rows[run.ja..run.jb_plus] {
            push_span(bucket, run.acc);
        }
        run.active = false;
    }
}

/// Plan phase for one road: mirrors [`stamp_road_layer`]'s row iteration
/// and case analysis exactly, but instead of writing voxels it appends
/// [`PlannedSpan`]s to the layer's row buckets. The per-cell (vertical
/// roads) and per-row (horizontal roads) classifications are
/// row-independent — `(cx − a.x)²` does not involve the row, and the
/// horizontal fill bounds never see a diagonal clip — so both are
/// resolved once per road and replayed for every interior row; the
/// O(rows × cells) comparison loop the stamper pays collapses to
/// O(rows + cells).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn plan_road_layer(
    rows: &mut [Vec<PlannedSpan>],
    run: &mut VertRun,
    ri: u32,
    roads: &[Road],
    ctx: &[RoadCtx],
    origin: Point3,
    voxel_xy: f64,
    inv_voxel_xy: f64,
    nx: usize,
    ny: usize,
) {
    let rc = &ctx[ri as usize];
    let road = &roads[ri as usize];
    let (a, b) = (road.from, road.to);
    let (radius, radius_sq) = (rc.radius, rc.radius_sq);
    let key = rc.key;
    let seg_lo_y = a.y.min(b.y);
    let seg_hi_y = a.y.max(b.y);
    // Reciprocal multiplication is NOT the reference quotient, but these
    // bounds only have to be a superset of the rows/cells the reference
    // can write: a written row satisfies |cy − y| ≤ radius·(1+ε), which
    // sits ≥ 0.25 cells inside either quotient (they differ by ~2e-14
    // cells), so the clamped floor/ceil below never excludes one. Every
    // per-cell classification afterwards uses the reference comparisons.
    let lo_x = (a.x.min(b.x) - radius - origin.x) * inv_voxel_xy;
    let hi_x = (a.x.max(b.x) + radius - origin.x) * inv_voxel_xy;
    let lo_y = (seg_lo_y - radius - origin.y) * inv_voxel_xy;
    let hi_y = (seg_hi_y + radius - origin.y) * inv_voxel_xy;
    let i0 = floor_clamp0(lo_x);
    let i1 = ceil_clamp0(hi_x).min(nx - 1);
    let j0 = floor_clamp0(lo_y);
    let j1 = ceil_clamp0(hi_y).min(ny - 1);
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len2 = dx * dx + dy * dy;
    let horizontal = dy == 0.0 && len2 > 0.0;
    let vertical = dx == 0.0 && len2 > 0.0;

    if vertical {
        // Classify the (tiny) cell range once: the margin-band flanks
        // become cap cells; everything between is a proven fill. The
        // squared offsets are memoized so the end-cap rows below re-test
        // the same cells with one load + add each. Against `[a.x, a.x]`
        // the clamped offset is always `cx − a.x` (the in-range branch
        // yields exactly 0.0 there too), so this is [`scan_span`]'s value.
        const VMEMO: usize = 32;
        let mut dd2 = [0.0f64; VMEMO];
        let memoized = i1 - i0 < VMEMO;
        let vspan = if memoized {
            let mut first_touch = None;
            let mut last_touch = 0usize;
            let mut first_fill = None;
            let mut last_fill = 0usize;
            for i in i0..=i1 {
                let cx = origin.x + (i as f64 + 0.5) * voxel_xy;
                let ddx = cx - a.x;
                let d2 = ddx * ddx;
                dd2[i - i0] = d2;
                if d2 >= radius_sq + STAMP_PROOF_MARGIN {
                    continue;
                }
                if first_touch.is_none() {
                    first_touch = Some(i);
                }
                last_touch = i;
                if d2 <= radius_sq - STAMP_PROOF_MARGIN {
                    if first_fill.is_none() {
                        first_fill = Some(i);
                    }
                    last_fill = i;
                }
            }
            build_span(first_touch, last_touch, first_fill, last_fill, ri, key)
        } else {
            scan_span(i0, i1, a.x, a.x, 0.0, radius_sq, origin.x, voxel_xy, ri, key)
        };
        let Some(vspan) = vspan else {
            // No cell is even near the road: nothing would be pushed, so
            // the pending run can survive this road.
            return;
        };
        // Not-provably-outside cell range: end-cap rows rescan only those
        // cells (everything outside is out for every row, since its `wx²`
        // alone already clears `r² + margin`).
        let touch = (vspan.lo as usize, vspan.hi as usize - 1);
        // Interior rows [ja, jb_plus): exactly the rows whose centre
        // satisfies the reference band test `seg_lo_y ≤ cy ≤ seg_hi_y`
        // (found by walking the ≤ radius-wide fringes, so the comparisons
        // are the reference ones — no rounding re-derivation).
        let mut ja = j0;
        while ja <= j1 && origin.y + (ja as f64 + 0.5) * voxel_xy < seg_lo_y {
            ja += 1;
        }
        let mut jb_plus = j1 + 1;
        while jb_plus > ja && origin.y + ((jb_plus - 1) as f64 + 0.5) * voxel_xy > seg_hi_y {
            jb_plus -= 1;
        }
        let cap_free = vspan.lo == vspan.fill_lo && vspan.fill_hi == vspan.hi;
        let joins = run.active
            && run.ja == ja
            && run.jb_plus == jb_plus
            && cap_free
            && run.acc.key == vspan.key
            && vspan.fill_lo >= run.acc.fill_lo
            && vspan.fill_lo <= run.acc.fill_hi;
        if joins {
            run.acc.fill_hi = run.acc.fill_hi.max(vspan.fill_hi);
            run.acc.hi = run.acc.fill_hi;
        } else {
            flush_vrun(rows, run);
            if ja < jb_plus {
                if cap_free {
                    *run = VertRun { active: true, ja, jb_plus, acc: vspan };
                } else {
                    for bucket in &mut rows[ja..jb_plus] {
                        push_span(bucket, vspan);
                    }
                }
            }
        }
        // End-cap rows below and above the segment band (cy outside
        // [seg_lo_y, seg_hi_y] but inside the radius fringe): re-test the
        // touch cells with the end-cap offset `wx² + dy²` added. Walking
        // outward, `dy²` grows (exactly — f64 addition is
        // rounding-monotone), so each row's touch and fill sets are
        // subsets of the previous row's, and `ddx²` is exactly unimodal
        // over the monotone cell centres, so both sets stay contiguous:
        // instead of rescanning the whole touch range per row, four
        // pointers shrink inward by the very same per-cell comparisons
        // [`scan_span`] would make, skipping only cells whose outcome the
        // monotonicity already implies. An empty touch set ends the side —
        // every farther row tests empty too. The rows are disjoint from
        // every run member's interior rows, so pushing them immediately
        // preserves bucket order.
        if memoized {
            for (end_y, side_up) in [(seg_lo_y, false), (seg_hi_y, true)] {
                let (mut t_lo, mut t_hi) = (touch.0, touch.1);
                let (mut f_lo, mut f_hi) = match vspan.fill_lo < vspan.fill_hi {
                    true => (vspan.fill_lo as usize, vspan.fill_hi as usize - 1),
                    false => (1, 0),
                };
                let (mut j, step): (isize, isize) = if side_up {
                    (jb_plus as isize, 1)
                } else {
                    (ja as isize - 1, -1)
                };
                let j_end = if side_up { j1 as isize } else { j0 as isize };
                while if side_up { j <= j_end } else { j >= j_end } {
                    let cy = origin.y + (j as f64 + 0.5) * voxel_xy;
                    let dyv = cy - end_y;
                    if (side_up && dyv > radius) || (!side_up && dyv < -radius) {
                        break;
                    }
                    let dy2 = dyv * dyv;
                    while t_lo <= t_hi && dd2[t_lo - i0] + dy2 >= radius_sq + STAMP_PROOF_MARGIN
                    {
                        t_lo += 1;
                    }
                    if t_lo > t_hi {
                        break;
                    }
                    while dd2[t_hi - i0] + dy2 >= radius_sq + STAMP_PROOF_MARGIN {
                        t_hi -= 1;
                    }
                    while f_lo <= f_hi && dd2[f_lo - i0] + dy2 > radius_sq - STAMP_PROOF_MARGIN
                    {
                        f_lo += 1;
                    }
                    if f_lo <= f_hi {
                        while dd2[f_hi - i0] + dy2 > radius_sq - STAMP_PROOF_MARGIN {
                            f_hi -= 1;
                        }
                    }
                    let hi = t_hi as u32 + 1;
                    let (fill_lo, fill_hi) = if f_lo <= f_hi {
                        (f_lo as u32, f_hi as u32 + 1)
                    } else {
                        (hi, hi)
                    };
                    push_span(
                        &mut rows[j as usize],
                        PlannedSpan { lo: t_lo as u32, fill_lo, fill_hi, hi, road: ri, key },
                    );
                    j += step;
                }
            }
            return;
        }
        for j in (j0..ja).rev() {
            let cy = origin.y + (j as f64 + 0.5) * voxel_xy;
            if cy < seg_lo_y - radius {
                break;
            }
            let dyv = cy - seg_lo_y;
            let dy2 = dyv * dyv;
            let s = scan_span(touch.0, touch.1, a.x, a.x, dy2, radius_sq, origin.x, voxel_xy, ri, key);
            if let Some(s) = s {
                push_span(&mut rows[j], s);
            }
        }
        for (j, bucket) in rows.iter_mut().enumerate().take(j1 + 1).skip(jb_plus) {
            let cy = origin.y + (j as f64 + 0.5) * voxel_xy;
            if cy > seg_hi_y + radius {
                break;
            }
            let dyv = cy - seg_hi_y;
            let dy2 = dyv * dyv;
            let s = scan_span(touch.0, touch.1, a.x, a.x, dy2, radius_sq, origin.x, voxel_xy, ri, key);
            if let Some(s) = s {
                push_span(bucket, s);
            }
        }
        return;
    }

    // Any other road pushes (if anything) in plain road order: a pending
    // vertical run must land in the buckets first.
    flush_vrun(rows, run);

    // Horizontal road: the fill bounds are row-independent too (the
    // diagonal clip never fires when dy == 0, so ri0/ri1 stay i0/i1) —
    // hoist the four divisions out of the row loop. The end caps are
    // resolved per row below by the same margin classification.
    let (x_min, x_max) = (a.x.min(b.x), a.x.max(b.x));
    let (mut fl, mut fh) = (0usize, 0usize);
    let hspan = if horizontal {
        // Reciprocal again: the seed cells only have to start the walks
        // within one cell of the endpoint (a one-cell misplacement keeps
        // the seed's `(cx − x_end)²` at ~(2e-14·voxel)² ≪ the proof
        // margin, so its classification cannot differ from the walks').
        let flv = (x_min - origin.x) * inv_voxel_xy - 0.5;
        let fhv = (x_max - origin.x) * inv_voxel_xy - 0.5;
        let flc = ceil_clamp0(flv).max(i0);
        if fhv >= 0.0 {
            let fhc = floor_clamp0(fhv).min(i1);
            if fhc >= flc {
                (fl, fh) = (flc, fhc);
                true
            } else {
                false
            }
        } else {
            false
        }
    } else {
        false
    };

    // Memoized cap-candidate offsets for the row walks below: `ld2[t]` is
    // the exact `(cx − x_min)²` of cell `fl − t − 1`, `rd2[t]` the exact
    // `(cx − x_max)²` of cell `fh + t + 1` — the very products the walks
    // would recompute per row (the centre expressions differ only in
    // integer association, which is exact). A memo entry ≥ r² + margin is
    // a sentinel no row can walk past (`wy² ≥ 0`), so each side stops at
    // its sentinel, its grid bound, or — rarely — the capacity cap, where
    // the cold per-row loops take over.
    const HMEMO: usize = 12;
    let mut ld2 = [0.0f64; HMEMO];
    let mut rd2 = [0.0f64; HMEMO];
    let (mut depth_l, mut depth_r) = (0usize, 0usize);
    if hspan {
        let max_l = (fl - i0).min(HMEMO);
        while depth_l < max_l {
            let cx = origin.x + ((fl - depth_l - 1) as f64 + 0.5) * voxel_xy;
            let ddx = cx - x_min;
            let d2 = ddx * ddx;
            ld2[depth_l] = d2;
            depth_l += 1;
            if d2 >= radius_sq + STAMP_PROOF_MARGIN {
                break;
            }
        }
        let max_r = (i1 - fh).min(HMEMO);
        while depth_r < max_r {
            let cx = origin.x + ((fh + depth_r + 1) as f64 + 0.5) * voxel_xy;
            let ddx = cx - x_max;
            let d2 = ddx * ddx;
            rd2[depth_r] = d2;
            depth_r += 1;
            if d2 >= radius_sq + STAMP_PROOF_MARGIN {
                break;
            }
        }
    }

    for (j, bucket) in rows.iter_mut().enumerate().take(j1 + 1).skip(j0) {
        let cy = origin.y + (j as f64 + 0.5) * voxel_xy;
        if cy < seg_lo_y - radius || cy > seg_hi_y + radius {
            continue;
        }
        if horizontal {
            let wy = cy - a.y;
            let wy2 = wy * wy;
            if wy2 > radius_sq + STAMP_PROOF_MARGIN {
                continue;
            }
            if wy2 <= radius_sq - STAMP_PROOF_MARGIN && hspan {
                // End caps: for a cap cell the nearest segment point is
                // (within one rounding of the margin) the endpoint, so
                // `(cx − x_end)² + wy²` classifies it: provably-inside
                // cells extend the fill, the first provably-outside cell
                // ends the span (the offset grows monotonically outward),
                // and only margin-band cells stay for the exact test.
                let mut kl = 0usize;
                while kl < depth_l && ld2[kl] + wy2 <= radius_sq - STAMP_PROOF_MARGIN {
                    kl += 1;
                }
                let mut s_fill_lo = fl - kl;
                if kl == depth_l {
                    while s_fill_lo > i0 {
                        let cx = origin.x + (s_fill_lo as f64 - 0.5) * voxel_xy;
                        let ddx = cx - x_min;
                        if ddx * ddx + wy2 <= radius_sq - STAMP_PROOF_MARGIN {
                            s_fill_lo -= 1;
                        } else {
                            break;
                        }
                    }
                }
                let mut s_lo = s_fill_lo;
                let mut tl = kl;
                if kl < depth_l {
                    while tl < depth_l && ld2[tl] + wy2 < radius_sq + STAMP_PROOF_MARGIN {
                        tl += 1;
                    }
                    s_lo = fl - tl;
                }
                if tl == depth_l {
                    while s_lo > i0 {
                        let cx = origin.x + (s_lo as f64 - 0.5) * voxel_xy;
                        let ddx = cx - x_min;
                        if ddx * ddx + wy2 < radius_sq + STAMP_PROOF_MARGIN {
                            s_lo -= 1;
                        } else {
                            break;
                        }
                    }
                }
                let mut kr = 0usize;
                while kr < depth_r && rd2[kr] + wy2 <= radius_sq - STAMP_PROOF_MARGIN {
                    kr += 1;
                }
                let mut s_fill_hi = fh + 1 + kr;
                if kr == depth_r {
                    while s_fill_hi <= i1 {
                        let cx = origin.x + (s_fill_hi as f64 + 0.5) * voxel_xy;
                        let ddx = cx - x_max;
                        if ddx * ddx + wy2 <= radius_sq - STAMP_PROOF_MARGIN {
                            s_fill_hi += 1;
                        } else {
                            break;
                        }
                    }
                }
                let mut s_hi = s_fill_hi;
                let mut tr = kr;
                if kr < depth_r {
                    while tr < depth_r && rd2[tr] + wy2 < radius_sq + STAMP_PROOF_MARGIN {
                        tr += 1;
                    }
                    s_hi = fh + 1 + tr;
                }
                if tr == depth_r {
                    while s_hi <= i1 {
                        let cx = origin.x + (s_hi as f64 + 0.5) * voxel_xy;
                        let ddx = cx - x_max;
                        if ddx * ddx + wy2 < radius_sq + STAMP_PROOF_MARGIN {
                            s_hi += 1;
                        } else {
                            break;
                        }
                    }
                }
                push_span(
                    bucket,
                    PlannedSpan {
                        lo: s_lo as u32,
                        fill_lo: s_fill_lo as u32,
                        fill_hi: s_fill_hi as u32,
                        hi: s_hi as u32,
                        road: ri,
                        key,
                    },
                );
                continue;
            }
            // Borderline row (or sub-cell road): classify cell by cell.
            if let Some(s) =
                scan_span(i0, i1, x_min, x_max, wy2, radius_sq, origin.x, voxel_xy, ri, key)
            {
                push_span(bucket, s);
            }
            continue;
        }
        let (mut ri0, mut ri1) = (i0, i1);
        if dy != 0.0 && dx != 0.0 {
            let t_at = |y: f64| ((y - a.y) / dy).clamp(0.0, 1.0);
            let (t_lo, t_hi) = (t_at(cy - radius), t_at(cy + radius));
            let (x_lo, x_hi) = {
                let xa = a.x + t_lo * (b.x - a.x);
                let xb = a.x + t_hi * (b.x - a.x);
                (xa.min(xb), xa.max(xb))
            };
            let span_lo = ((x_lo - radius - origin.x) / voxel_xy - 0.5).floor();
            let span_hi = ((x_hi + radius - origin.x) / voxel_xy + 0.5).ceil();
            ri0 = ri0.max(span_lo.max(0.0) as usize);
            ri1 = ri1.min(span_hi.max(0.0) as usize);
        }
        if ri0 <= ri1 {
            let hi = ri1 as u32 + 1;
            push_span(
                bucket,
                PlannedSpan { lo: ri0 as u32, fill_lo: hi, fill_hi: hi, hi, road: ri, key },
            );
        }
    }
}

/// Execute phase for one layer: walks every row's planned spans in order,
/// resolving cap cells with the exact reference test and stamping fill
/// intervals as contiguous slice fills (`slice::fill` for model material;
/// a byte-compare/select loop for support, which must not overwrite
/// model). Returns the number of fill-written voxels.
#[allow(clippy::too_many_arguments)]
fn execute_layer(
    rows: &[Vec<PlannedSpan>],
    layer_mat: &mut [Material],
    layer_body: &mut [u16],
    roads: &[Road],
    ctx: &[RoadCtx],
    origin: Point3,
    voxel_xy: f64,
    nx: usize,
) -> u64 {
    let mut filled = 0u64;
    for (j, bucket) in rows.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let row = &mut layer_mat[j * nx..(j + 1) * nx];
        let body_row = &mut layer_body[j * nx..(j + 1) * nx];
        let cy = origin.y + (j as f64 + 0.5) * voxel_xy;
        for s in bucket {
            if s.lo < s.fill_lo {
                let r = s.road as usize;
                stamp_exact(row, body_row, s.lo as usize..s.fill_lo as usize, &roads[r], &ctx[r], cy, origin.x, voxel_xy);
            }
            let (fl, fh) = (s.fill_lo as usize, s.fill_hi as usize);
            if fl < fh {
                filled += (fh - fl) as u64;
                match s.key.material() {
                    Material::Model => {
                        // Explicit store loops: `slice::fill` lowers to a
                        // libc memset call, whose call overhead dominates
                        // at the ~40-cell spans this workload plans.
                        for m in &mut row[fl..fh] {
                            *m = Material::Model;
                        }
                        if let Some(b) = s.key.body() {
                            for bo in &mut body_row[fl..fh] {
                                *bo = b;
                            }
                        }
                    }
                    Material::Support => {
                        for m in &mut row[fl..fh] {
                            if *m == Material::Empty {
                                *m = Material::Support;
                            }
                        }
                    }
                    Material::Empty => {}
                }
            }
            if s.fill_hi < s.hi {
                let r = s.road as usize;
                stamp_exact(row, body_row, s.fill_hi as usize..s.hi as usize, &roads[r], &ctx[r], cy, origin.x, voxel_xy);
            }
        }
    }
    filled
}

/// Cap-cell resolution: the reference squared-distance test against the
/// road's segment, with the reference overwrite rules — exactly what the
/// stamper oracle computes for these cells.
#[allow(clippy::too_many_arguments)]
#[inline]
fn stamp_exact(
    row: &mut [Material],
    body_row: &mut [u16],
    range: std::ops::Range<usize>,
    road: &Road,
    rc: &RoadCtx,
    cy: f64,
    origin_x: f64,
    voxel_xy: f64,
) {
    let seg = am_geom::Segment2::new(road.from, road.to);
    let (material, body) = (rc.key.material(), rc.key.body());
    for i in range {
        let c = Point2::new(origin_x + (i as f64 + 0.5) * voxel_xy, cy);
        if seg.distance_squared_to_point(c) <= rc.radius_sq {
            write_voxel(row, body_row, i, material, body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{intact_prism, prism_with_sphere, PrismDims};
    use am_cad::{BodyKind, MaterialRemoval};
    use am_mesh::{tessellate_shells, Resolution};
    use am_slicer::{
        build_transform, generate_toolpath, orient_shells, slice_shells, Orientation,
        SlicerConfig,
    };

    fn print_part(part: &am_cad::ResolvedPart, orientation: Orientation) -> PrintedPart {
        let shells = tessellate_shells(part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, orientation);
        let to_build = build_transform(&shells, orientation);
        let sliced = slice_shells(&oriented, 0.1778);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        PrintedPart::from_toolpath(&toolpath, &PrinterProfile::dimension_elite(), to_build, 42)
    }

    #[test]
    fn printed_prism_volume_close_to_cad() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let printed = print_part(&part, Orientation::Xy);
        let vol = printed.material_volume(Material::Model);
        let exact = 25.4 * 12.7 * 12.7;
        assert!((vol - exact).abs() / exact < 0.15, "vol = {vol} vs {exact}");
    }

    #[test]
    fn embedded_sphere_prints_support_then_dissolves_to_void() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::Without)
            .unwrap()
            .resolve()
            .unwrap();
        let mut printed = print_part(&part, Orientation::Xy);
        let center = dims.size * 0.5;
        assert_eq!(printed.material_at_model(center), Material::Support);
        printed.dissolve_support();
        assert_eq!(printed.material_at_model(center), Material::Empty);
        assert_eq!(printed.voxel_count(Material::Support), 0);
    }

    #[test]
    fn removal_solid_prints_model_at_center() {
        let dims = PrismDims::default();
        let part = prism_with_sphere(&dims, BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let printed = print_part(&part, Orientation::Xy);
        assert_eq!(printed.material_at_model(dims.size * 0.5), Material::Model);
    }

    #[test]
    fn model_frame_sampling_survives_reorientation() {
        let dims = PrismDims::default();
        let part = intact_prism(&dims).resolve().unwrap();
        let printed = print_part(&part, Orientation::Xz);
        // A model-frame point well inside the prism must be model material
        // even though the build frame is rotated.
        assert_eq!(printed.material_at_model(dims.size * 0.5), Material::Model);
        // And a point outside is empty.
        assert_eq!(
            printed.material_at_model(Point3::new(-5.0, -5.0, -5.0)),
            Material::Empty
        );
    }

    #[test]
    fn weight_is_plausible() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let printed = print_part(&part, Orientation::Xy);
        // 4.1 cm³ of ABS ≈ 4.3 g.
        let w = printed.weight_g();
        assert!(w > 3.0 && w < 6.0, "weight {w} g");
    }

    #[test]
    fn deterministic_given_seed() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let a = print_part(&part, Orientation::Xy);
        let b = print_part(&part, Orientation::Xy);
        assert_eq!(a.voxel_count(Material::Model), b.voxel_count(Material::Model));
    }

    #[test]
    fn parallel_stamp_is_bit_identical_to_serial() {
        let part = prism_with_sphere(&PrismDims::default(), BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, Orientation::Xy);
        let to_build = build_transform(&shells, Orientation::Xy);
        let sliced = slice_shells(&oriented, 0.1778);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        let profile = PrinterProfile::dimension_elite();
        let serial = PrintedPart::try_from_toolpath_with(
            &toolpath,
            &profile,
            to_build,
            42,
            am_par::Parallelism::serial(),
        )
        .unwrap();
        for threads in [2, 8] {
            let par = PrintedPart::try_from_toolpath_with(
                &toolpath,
                &profile,
                to_build,
                42,
                am_par::Parallelism::threads(threads),
            )
            .unwrap();
            assert_eq!(serial.material, par.material, "threads = {threads}");
            assert_eq!(serial.body, par.body, "threads = {threads}");
        }
    }

    #[test]
    fn optimized_kernel_matches_reference() {
        // The squared-distance test can only disagree with the exact
        // distance test on voxels whose centre sits within rounding error
        // of the road boundary; none occur on this workload, and the two
        // kernels must otherwise share every RNG draw and write order.
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, Orientation::Xy);
        let to_build = build_transform(&shells, Orientation::Xy);
        let sliced = slice_shells(&oriented, 0.1778);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        let profile = PrinterProfile::dimension_elite();
        let reference =
            PrintedPart::try_from_toolpath_reference(&toolpath, &profile, to_build, 42).unwrap();
        let optimized =
            PrintedPart::try_from_toolpath(&toolpath, &profile, to_build, 42).unwrap();
        assert_eq!(reference.material, optimized.material);
        assert_eq!(reference.body, optimized.body);
    }

    #[test]
    fn span_plan_kernel_matches_stamper_oracle() {
        let part = prism_with_sphere(&PrismDims::default(), BodyKind::Solid, MaterialRemoval::With)
            .unwrap()
            .resolve()
            .unwrap();
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, Orientation::Xy);
        let to_build = build_transform(&shells, Orientation::Xy);
        let sliced = slice_shells(&oriented, 0.1778);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        let profile = PrinterProfile::dimension_elite();
        let oracle =
            PrintedPart::try_from_toolpath_reference(&toolpath, &profile, to_build, 42).unwrap();
        for threads in [1, 2, 4, 8] {
            let planned = PrintedPart::try_from_toolpath_planned(
                &toolpath,
                &profile,
                to_build,
                42,
                am_par::Parallelism::threads(threads),
            )
            .unwrap();
            assert_eq!(oracle.material, planned.material, "threads = {threads}");
            assert_eq!(oracle.body, planned.body, "threads = {threads}");
        }
    }

    #[test]
    fn from_raw_rejections_are_typed() {
        let part = intact_prism(&PrismDims::default()).resolve().unwrap();
        let printed = print_part(&part, Orientation::Xy);
        let good = printed.to_raw();

        let mut bad_voxel = good.clone();
        bad_voxel.voxel_xy = 0.0;
        assert_eq!(
            PrintedPart::from_raw(bad_voxel).unwrap_err(),
            PrintError::RawVoxelSize { voxel_xy: 0.0, voxel_z: good.voxel_z },
        );

        let mut torn = good.clone();
        torn.material.pop();
        assert_eq!(
            PrintedPart::from_raw(torn).unwrap_err(),
            PrintError::RawGridMismatch {
                material: good.material.len() - 1,
                body: good.body.len(),
                dims: (good.nx, good.ny, good.nz),
            },
        );

        assert!(PrintedPart::from_raw(good).is_ok());
    }

    #[test]
    #[should_panic(expected = "empty tool path")]
    fn empty_toolpath_rejected() {
        let tp = am_slicer::ToolPath {
            layer_height: 0.1,
            road_width: 0.5,
            ..Default::default()
        };
        let _ = PrintedPart::from_toolpath(
            &tp,
            &PrinterProfile::dimension_elite(),
            Transform3::identity(),
            0,
        );
    }
}
