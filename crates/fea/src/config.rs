//! Virtual tensile test configuration.

use std::fmt;
use std::str::FromStr;

use am_slicer::Orientation;

/// Equilibrium solver used by the optimized tensile kernel.
///
/// Both solvers share the constitutive law and the force-residual
/// convergence tolerance, so they land on the same equilibrium to within
/// the solver tolerance; they differ only in how they get there (and how
/// fast). The reference kernel in [`crate::run_tensile_test_reference`] is
/// selected one level up (via `KernelMode` in the pipeline crate) and is
/// not part of this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeaSolver {
    /// Matrix-free Newton–PCG: outer Newton iterations over the
    /// piecewise-linear constitutive law, inner Jacobi-preconditioned
    /// conjugate gradient with deterministic Hessian-vector products. The
    /// default since it converges in a handful of force evaluations per
    /// strain step where relaxation needs hundreds.
    #[default]
    NewtonPcg,
    /// Mass-scaled damped dynamic relaxation (the PR 2 kernel). Kept as a
    /// selectable fallback and as the Newton solver's safety net when a
    /// Newton step stalls.
    Relaxation,
}

impl FeaSolver {
    /// Every solver variant, for sweeps and CLI listings.
    pub const ALL: [FeaSolver; 2] = [FeaSolver::NewtonPcg, FeaSolver::Relaxation];

    /// Stable kebab-case name (the CLI `--solver` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            FeaSolver::NewtonPcg => "newton-pcg",
            FeaSolver::Relaxation => "relaxation",
        }
    }
}

impl fmt::Display for FeaSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FeaSolver {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "newton-pcg" | "newton_pcg" | "newton" => Ok(FeaSolver::NewtonPcg),
            "relaxation" | "relax" => Ok(FeaSolver::Relaxation),
            other => Err(format!("unknown FEA solver '{other}' (expected newton-pcg or relaxation)")),
        }
    }
}

/// A [`TensileConfig`] field that failed validation.
///
/// Mirrors the slicer/printer config error taxonomy: every variant names
/// the offending field and carries the rejected value so diagnostics can be
/// surfaced without string matching.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FeaConfigError {
    /// A field that must be strictly positive (and finite) was not.
    NonPositive {
        /// Field name.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A factor fell outside its admissible half-open range.
    OutOfRange {
        /// Field name.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Exclusive upper bound.
        max: f64,
    },
    /// `node_spacing` is too large to resolve the gauge cross-section
    /// (must be < `gauge_width / 4`).
    LatticeTooCoarse {
        /// Rejected node spacing (mm).
        node_spacing: f64,
        /// Gauge width it failed to resolve (mm).
        gauge_width: f64,
    },
}

impl fmt::Display for FeaConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeaConfigError::NonPositive { name, value } => {
                write!(f, "{name} must be positive and finite, got {value}")
            }
            FeaConfigError::OutOfRange { name, value, min, max } => {
                write!(f, "{name} out of range [{min}, {max}): {value}")
            }
            FeaConfigError::LatticeTooCoarse { node_spacing, gauge_width } => {
                write!(
                    f,
                    "lattice too coarse for the gauge: node_spacing {node_spacing} must be < gauge_width / 4 = {}",
                    gauge_width / 4.0
                )
            }
        }
    }
}

impl std::error::Error for FeaConfigError {}

/// Configuration of the virtual tensile test: gauge sampling geometry plus
/// the bond-quality calibration of the deposition process.
///
/// The road/layer factors encode FDM meso-structure the 2-D lattice cannot
/// resolve directly (road continuity along the load axis, inter-road joints
/// in cross-hatched layers). They are calibrated once per process ×
/// orientation against the paper's intact-specimen columns of Table 2 and
/// then held fixed for every protected specimen — so the *spline* columns
/// are predictions, not fits.
#[derive(Debug, Clone, PartialEq)]
pub struct TensileConfig {
    /// Lattice node spacing (mm).
    pub node_spacing: f64,
    /// Gauge length between grips (mm).
    pub gauge_length: f64,
    /// Gauge width (mm).
    pub gauge_width: f64,
    /// Specimen thickness (mm).
    pub thickness: f64,
    /// Maximum applied engineering strain.
    pub max_strain: f64,
    /// Strain increment per load step.
    pub strain_step: f64,
    /// Strength factor of in-plane (road) bonds.
    pub road_strength: f64,
    /// Ductility factor of in-plane (road) bonds.
    pub road_ductility: f64,
    /// Ductility factor of stacking-direction (layer) bonds.
    pub layer_ductility: f64,
    /// Cold-joint contact fraction (1.0 = perfect seam contact); supplied
    /// by the pipeline from the tessellation-gap analysis.
    pub joint_contact: f64,
    /// Relative 1σ jitter applied to bond strength/ductility (specimen
    /// scatter).
    pub noise: f64,
    /// Post-yield tangent stiffness as a fraction of the elastic stiffness
    /// (linear hardening keeps plastic flow stable until bonds break).
    pub hardening_ratio: f64,
    /// Homogenization correction mapping bond yield level to the lattice's
    /// engineering yield stress (calibrated once on the intact x-y
    /// specimen).
    pub yield_calibration: f64,
    /// Homogenization correction mapping bond stiffness to the lattice's
    /// engineering modulus (the sampled lattice is ~0.6× as stiff as the
    /// continuum; calibrated once on the intact x-y specimen).
    pub modulus_calibration: f64,
    /// Equilibrium solver for the optimized kernel. Does not affect the
    /// lattice model — both solvers converge to the same equilibrium within
    /// the solver tolerance — but it *is* part of the result's provenance
    /// and keys the pipeline's stage cache.
    pub solver: FeaSolver,
}

impl TensileConfig {
    /// Calibration for FDM prints laid flat (x-y): every layer's roads lie
    /// in the load plane, alternating 0°/90°, so the load path crosses
    /// inter-road joints — moderate ductility.
    pub fn fdm_xy() -> Self {
        TensileConfig {
            node_spacing: 0.4,
            gauge_length: 33.0,
            gauge_width: 6.0,
            thickness: 3.2,
            max_strain: 0.12,
            strain_step: 0.0005,
            road_strength: 0.88,
            road_ductility: 0.48,
            layer_ductility: 0.45,
            joint_contact: 1.0,
            noise: 0.04,
            hardening_ratio: 0.02,
            yield_calibration: 1.45,
            modulus_calibration: 1.60,
            solver: FeaSolver::NewtonPcg,
        }
    }

    /// Calibration for FDM prints standing on edge (x-z): the long roads
    /// run along the load axis without cross-hatching joints — high
    /// ductility; the width direction carries the (weaker) layer bonds.
    pub fn fdm_xz() -> Self {
        TensileConfig {
            road_strength: 0.88,
            road_ductility: 1.45,
            layer_ductility: 0.70,
            ..TensileConfig::fdm_xy()
        }
    }

    /// Calibration for the given FDM orientation.
    pub fn fdm(orientation: Orientation) -> Self {
        match orientation {
            Orientation::Xy => TensileConfig::fdm_xy(),
            Orientation::Xz => TensileConfig::fdm_xz(),
        }
    }

    /// Validates the configuration, reporting the first offending field.
    ///
    /// Replaces the old panicking `assert_valid`: same checks, same order,
    /// but typed — the pipeline maps the error into its staged diagnostics
    /// instead of unwinding.
    pub fn validate(&self) -> Result<(), FeaConfigError> {
        for (name, v) in [
            ("node_spacing", self.node_spacing),
            ("gauge_length", self.gauge_length),
            ("gauge_width", self.gauge_width),
            ("thickness", self.thickness),
            ("max_strain", self.max_strain),
            ("strain_step", self.strain_step),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(FeaConfigError::NonPositive { name, value: v });
            }
        }
        for (name, v) in [
            ("road_strength", self.road_strength),
            ("road_ductility", self.road_ductility),
            ("layer_ductility", self.layer_ductility),
            ("joint_contact", self.joint_contact),
        ] {
            if !(v > 0.0 && v <= 2.0) {
                return Err(FeaConfigError::OutOfRange { name, value: v, min: 0.0, max: 2.0 });
            }
        }
        if !(0.0..0.5).contains(&self.noise) {
            return Err(FeaConfigError::OutOfRange { name: "noise", value: self.noise, min: 0.0, max: 0.5 });
        }
        if !(0.0..1.0).contains(&self.hardening_ratio) {
            return Err(FeaConfigError::OutOfRange {
                name: "hardening_ratio",
                value: self.hardening_ratio,
                min: 0.0,
                max: 1.0,
            });
        }
        for (name, v) in
            [("yield_calibration", self.yield_calibration), ("modulus_calibration", self.modulus_calibration)]
        {
            if !(v > 0.0 && v.is_finite()) {
                return Err(FeaConfigError::NonPositive { name, value: v });
            }
        }
        if self.node_spacing >= self.gauge_width / 4.0 {
            return Err(FeaConfigError::LatticeTooCoarse {
                node_spacing: self.node_spacing,
                gauge_width: self.gauge_width,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TensileConfig::fdm_xy().validate().expect("xy preset");
        TensileConfig::fdm_xz().validate().expect("xz preset");
    }

    #[test]
    fn xz_is_more_ductile_than_xy() {
        assert!(TensileConfig::fdm_xz().road_ductility > TensileConfig::fdm_xy().road_ductility);
    }

    #[test]
    fn coarse_lattice_rejected() {
        let err = TensileConfig { node_spacing: 5.0, ..TensileConfig::fdm_xy() }
            .validate()
            .expect_err("coarse lattice must fail");
        assert_eq!(err, FeaConfigError::LatticeTooCoarse { node_spacing: 5.0, gauge_width: 6.0 });
    }

    #[test]
    fn bad_fields_report_typed_errors() {
        let err = TensileConfig { gauge_length: f64::NAN, ..TensileConfig::fdm_xy() }
            .validate()
            .expect_err("NaN gauge length must fail");
        assert!(matches!(err, FeaConfigError::NonPositive { name: "gauge_length", .. }));

        let err = TensileConfig { noise: 0.9, ..TensileConfig::fdm_xy() }
            .validate()
            .expect_err("noise above range must fail");
        assert!(matches!(err, FeaConfigError::OutOfRange { name: "noise", .. }));
        assert!(err.to_string().contains("noise"), "display names the field: {err}");
    }

    #[test]
    fn solver_round_trips_through_names() {
        for solver in FeaSolver::ALL {
            assert_eq!(solver.name().parse::<FeaSolver>().expect("round trip"), solver);
        }
        assert!("fancy".parse::<FeaSolver>().is_err());
        assert_eq!(FeaSolver::default(), FeaSolver::NewtonPcg);
    }
}
