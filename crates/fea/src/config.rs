//! Virtual tensile test configuration.

use am_slicer::Orientation;

/// Configuration of the virtual tensile test: gauge sampling geometry plus
/// the bond-quality calibration of the deposition process.
///
/// The road/layer factors encode FDM meso-structure the 2-D lattice cannot
/// resolve directly (road continuity along the load axis, inter-road joints
/// in cross-hatched layers). They are calibrated once per process ×
/// orientation against the paper's intact-specimen columns of Table 2 and
/// then held fixed for every protected specimen — so the *spline* columns
/// are predictions, not fits.
#[derive(Debug, Clone, PartialEq)]
pub struct TensileConfig {
    /// Lattice node spacing (mm).
    pub node_spacing: f64,
    /// Gauge length between grips (mm).
    pub gauge_length: f64,
    /// Gauge width (mm).
    pub gauge_width: f64,
    /// Specimen thickness (mm).
    pub thickness: f64,
    /// Maximum applied engineering strain.
    pub max_strain: f64,
    /// Strain increment per load step.
    pub strain_step: f64,
    /// Strength factor of in-plane (road) bonds.
    pub road_strength: f64,
    /// Ductility factor of in-plane (road) bonds.
    pub road_ductility: f64,
    /// Ductility factor of stacking-direction (layer) bonds.
    pub layer_ductility: f64,
    /// Cold-joint contact fraction (1.0 = perfect seam contact); supplied
    /// by the pipeline from the tessellation-gap analysis.
    pub joint_contact: f64,
    /// Relative 1σ jitter applied to bond strength/ductility (specimen
    /// scatter).
    pub noise: f64,
    /// Post-yield tangent stiffness as a fraction of the elastic stiffness
    /// (linear hardening keeps plastic flow stable until bonds break).
    pub hardening_ratio: f64,
    /// Homogenization correction mapping bond yield level to the lattice's
    /// engineering yield stress (calibrated once on the intact x-y
    /// specimen).
    pub yield_calibration: f64,
    /// Homogenization correction mapping bond stiffness to the lattice's
    /// engineering modulus (the sampled lattice is ~0.6× as stiff as the
    /// continuum; calibrated once on the intact x-y specimen).
    pub modulus_calibration: f64,
}

impl TensileConfig {
    /// Calibration for FDM prints laid flat (x-y): every layer's roads lie
    /// in the load plane, alternating 0°/90°, so the load path crosses
    /// inter-road joints — moderate ductility.
    pub fn fdm_xy() -> Self {
        TensileConfig {
            node_spacing: 0.4,
            gauge_length: 33.0,
            gauge_width: 6.0,
            thickness: 3.2,
            max_strain: 0.12,
            strain_step: 0.0005,
            road_strength: 0.88,
            road_ductility: 0.48,
            layer_ductility: 0.45,
            joint_contact: 1.0,
            noise: 0.04,
            hardening_ratio: 0.02,
            yield_calibration: 1.45,
            modulus_calibration: 1.60,
        }
    }

    /// Calibration for FDM prints standing on edge (x-z): the long roads
    /// run along the load axis without cross-hatching joints — high
    /// ductility; the width direction carries the (weaker) layer bonds.
    pub fn fdm_xz() -> Self {
        TensileConfig {
            road_strength: 0.88,
            road_ductility: 1.45,
            layer_ductility: 0.70,
            ..TensileConfig::fdm_xy()
        }
    }

    /// Calibration for the given FDM orientation.
    pub fn fdm(orientation: Orientation) -> Self {
        match orientation {
            Orientation::Xy => TensileConfig::fdm_xy(),
            Orientation::Xz => TensileConfig::fdm_xz(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive geometry or out-of-range factors.
    pub fn assert_valid(&self) {
        for (name, v) in [
            ("node_spacing", self.node_spacing),
            ("gauge_length", self.gauge_length),
            ("gauge_width", self.gauge_width),
            ("thickness", self.thickness),
            ("max_strain", self.max_strain),
            ("strain_step", self.strain_step),
        ] {
            assert!(v > 0.0 && v.is_finite(), "{name} must be positive, got {v}");
        }
        for (name, v) in [
            ("road_strength", self.road_strength),
            ("road_ductility", self.road_ductility),
            ("layer_ductility", self.layer_ductility),
            ("joint_contact", self.joint_contact),
        ] {
            assert!(v > 0.0 && v <= 2.0, "{name} out of range: {v}");
        }
        assert!((0.0..0.5).contains(&self.noise), "noise out of range");
        assert!((0.0..1.0).contains(&self.hardening_ratio), "hardening_ratio out of range");
        assert!(self.yield_calibration > 0.0, "yield_calibration must be positive");
        assert!(self.modulus_calibration > 0.0, "modulus_calibration must be positive");
        assert!(self.node_spacing < self.gauge_width / 4.0, "lattice too coarse for the gauge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TensileConfig::fdm_xy().assert_valid();
        TensileConfig::fdm_xz().assert_valid();
    }

    #[test]
    fn xz_is_more_ductile_than_xy() {
        assert!(TensileConfig::fdm_xz().road_ductility > TensileConfig::fdm_xy().road_ductility);
    }

    #[test]
    #[should_panic(expected = "lattice too coarse")]
    fn coarse_lattice_rejected() {
        TensileConfig { node_spacing: 5.0, ..TensileConfig::fdm_xy() }.assert_valid();
    }
}
