//! Tensile test results, solver telemetry, and summary statistics.

use am_geom::Point2;

/// Snapshot of the process-wide optimized-solver work counters (see
/// [`crate::solver_counters`] / [`crate::reset_solver_counters`]).
///
/// Pure telemetry: the counters never feed back into the simulation, so
/// they can be read (or ignored) without perturbing bit-identical results.
/// The bench harness brackets timed runs with reset/snapshot to report
/// per-kernel inner-iteration and residual-evaluation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverCounters {
    /// Accepted Newton steps (outer iterations).
    pub newton_iters: u64,
    /// PCG iterations — one deterministic Hessian-vector product each.
    pub pcg_iters: u64,
    /// Dynamic-relaxation iterations (the `Relaxation` solver, or the
    /// Newton solver's fallback path).
    pub relax_iters: u64,
    /// Full nodal force/residual evaluations across both solver families.
    pub force_evals: u64,
}

impl SolverCounters {
    /// Inner iterations across both solver families (PCG + relaxation) —
    /// the bench report's `inner_iters` column.
    pub fn inner_iters(&self) -> u64 {
        self.pcg_iters + self.relax_iters
    }

    /// Counter-wise difference since an earlier snapshot (saturating, so a
    /// concurrent reset cannot underflow).
    pub fn since(&self, earlier: &SolverCounters) -> SolverCounters {
        SolverCounters {
            newton_iters: self.newton_iters.saturating_sub(earlier.newton_iters),
            pcg_iters: self.pcg_iters.saturating_sub(earlier.pcg_iters),
            relax_iters: self.relax_iters.saturating_sub(earlier.relax_iters),
            force_evals: self.force_evals.saturating_sub(earlier.force_evals),
        }
    }
}

/// The outcome of one virtual tensile test.
#[derive(Debug, Clone, PartialEq)]
pub struct TensileResult {
    /// Engineering stress–strain curve: `(strain, stress MPa)`.
    pub curve: Vec<(f64, f64)>,
    /// Young's modulus (GPa) from the initial slope.
    pub young_modulus_gpa: f64,
    /// Ultimate tensile strength (MPa).
    pub uts_mpa: f64,
    /// Engineering strain at failure.
    pub failure_strain: f64,
    /// Toughness — the area under the curve (kJ/m³).
    pub toughness_kj_m3: f64,
    /// Model-frame location of the first bond failure (the fracture
    /// origin, Fig. 9 of the paper).
    pub fracture_origin: Option<Point2>,
    /// Midpoints of every broken bond, in breaking order — the crack path.
    pub fracture_path: Vec<Point2>,
    /// Whether the specimen fully ruptured within the test window.
    pub ruptured: bool,
}

impl TensileResult {
    /// Derives the scalar metrics from a stress–strain curve.
    pub(crate) fn from_curve(
        curve: Vec<(f64, f64)>,
        fracture_path: Vec<Point2>,
        ruptured: bool,
    ) -> TensileResult {
        let fracture_origin = fracture_path.first().copied();
        let uts_mpa = curve.iter().map(|&(_, s)| s).fold(0.0, f64::max);

        // Young's modulus: least-squares slope over the initial segment
        // (stress below 40 % of UTS, at least 3 points).
        let early: Vec<(f64, f64)> = curve
            .iter()
            .copied()
            .take_while(|&(_, s)| s <= 0.4 * uts_mpa.max(1e-9))
            .collect();
        let pts: &[(f64, f64)] = if early.len() >= 3 { &early } else { &curve[..curve.len().min(4)] };
        let n = pts.len() as f64;
        let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |acc, &(x, y)| (acc.0 + x, acc.1 + y));
        let (sxx, sxy): (f64, f64) = pts
            .iter()
            .fold((0.0, 0.0), |acc, &(x, y)| (acc.0 + x * x, acc.1 + x * y));
        let denom = n * sxx - sx * sx;
        let slope_mpa = if denom.abs() < 1e-18 { 0.0 } else { (n * sxy - sx * sy) / denom };
        let young_modulus_gpa = slope_mpa / 1000.0;

        // Failure strain: last strain at which stress holds ≥ 25 % of UTS.
        let failure_strain = curve
            .iter()
            .rev()
            .find(|&&(_, s)| s >= 0.25 * uts_mpa)
            .map(|&(e, _)| e)
            .unwrap_or(0.0);

        // Toughness: trapezoidal area under the curve up to failure.
        // MPa × strain = MJ/m³ = 1000 kJ/m³.
        let mut toughness = 0.0;
        for w in curve.windows(2) {
            let (e0, s0) = w[0];
            let (e1, s1) = w[1];
            if e0 >= failure_strain {
                break;
            }
            toughness += 0.5 * (s0 + s1) * (e1 - e0);
        }
        let toughness_kj_m3 = toughness * 1000.0;

        TensileResult {
            curve,
            young_modulus_gpa,
            uts_mpa,
            failure_strain,
            toughness_kj_m3,
            fracture_origin,
            fracture_path,
            ruptured,
        }
    }
}

/// Mean ± standard deviation of one property across replicate specimens.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n ≤ 1).
    pub std: f64,
}

impl Stat {
    /// Computes a statistic over samples.
    pub fn from_samples(samples: &[f64]) -> Stat {
        if samples.is_empty() {
            return Stat::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let std = if samples.len() > 1 {
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        Stat { mean, std }
    }
}

impl std::fmt::Display for Stat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.prec$}±{:.prec$}", self.mean, self.std)
        } else {
            write!(f, "{:.3}±{:.3}", self.mean, self.std)
        }
    }
}

/// Tensile-property summary across replicate specimens — one column of the
/// paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TensileSummary {
    /// Young's modulus (GPa).
    pub young_modulus_gpa: Stat,
    /// Ultimate tensile strength (MPa).
    pub uts_mpa: Stat,
    /// Failure strain.
    pub failure_strain: Stat,
    /// Toughness (kJ/m³).
    pub toughness_kj_m3: Stat,
    /// Number of specimens.
    pub specimens: usize,
}

impl TensileSummary {
    /// Summarizes a batch of replicate results.
    pub fn from_results(results: &[TensileResult]) -> TensileSummary {
        let collect = |f: fn(&TensileResult) -> f64| -> Vec<f64> { results.iter().map(f).collect() };
        TensileSummary {
            young_modulus_gpa: Stat::from_samples(&collect(|r| r.young_modulus_gpa)),
            uts_mpa: Stat::from_samples(&collect(|r| r.uts_mpa)),
            failure_strain: Stat::from_samples(&collect(|r| r.failure_strain)),
            toughness_kj_m3: Stat::from_samples(&collect(|r| r.toughness_kj_m3)),
            specimens: results.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_from_ideal_elastic_plastic_curve() {
        // Linear to (0.01, 30), plateau to (0.05, 30), rupture.
        let mut curve = vec![(0.0, 0.0)];
        for i in 1..=10 {
            curve.push((0.001 * i as f64, 3.0 * i as f64));
        }
        for i in 1..=40 {
            curve.push((0.01 + 0.001 * i as f64, 30.0));
        }
        curve.push((0.051, 0.0));
        let r = TensileResult::from_curve(curve, Vec::new(), true);
        assert!((r.young_modulus_gpa - 3.0).abs() < 0.3, "E = {}", r.young_modulus_gpa);
        assert_eq!(r.uts_mpa, 30.0);
        assert!((r.failure_strain - 0.05).abs() < 1e-9);
        // Area ≈ 30 × (0.05 − 0.005) = 1.35 MJ/m³ = 1350 kJ/m³.
        assert!((r.toughness_kj_m3 - 1350.0).abs() < 60.0, "U = {}", r.toughness_kj_m3);
    }

    #[test]
    fn stat_mean_and_std() {
        let s = Stat::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(Stat::from_samples(&[5.0]).std, 0.0);
        assert_eq!(Stat::from_samples(&[]).mean, 0.0);
    }

    #[test]
    fn stat_display_respects_precision() {
        let s = Stat { mean: 1.23456, std: 0.04321 };
        assert_eq!(format!("{s:.2}"), "1.23±0.04");
    }

    #[test]
    fn summary_counts_specimens() {
        let r = TensileResult::from_curve(vec![(0.0, 0.0), (0.01, 20.0)], Vec::new(), false);
        let summary = TensileSummary::from_results(&[r.clone(), r]);
        assert_eq!(summary.specimens, 2);
        assert_eq!(summary.uts_mpa.std, 0.0);
    }
}
