//! Bond-lattice construction from a printed artifact.

use am_geom::{Point2, Point3, Vec3};
use am_printer::{Material, PrintedPart};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TensileConfig;

/// Grip condition of a lattice node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grip {
    /// Clamped in the fixed grip (zero displacement).
    Fixed,
    /// Clamped in the moving grip (prescribed displacement).
    Moving,
    /// Free interior node.
    Free,
}

/// One lattice node.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Reference (undeformed) position in the model frame, mm.
    pub pos: Point2,
    /// Grip condition.
    pub grip: Grip,
}

/// Deformation state of a bond.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BondState {
    /// Elastic (or plastic) and load-bearing.
    Intact,
    /// Broken — carries no load.
    Broken,
}

/// One lattice bond: an elastic–perfectly-plastic–brittle spring.
#[derive(Debug, Clone, Copy)]
pub struct Bond {
    /// Endpoint node indices.
    pub nodes: [u32; 2],
    /// Reference length (mm).
    pub rest_length: f64,
    /// Axial stiffness (N/mm per mm of thickness — scaled at solve time).
    pub stiffness: f64,
    /// Yield force cap, same units as `stiffness × strain`.
    pub yield_force: f64,
    /// Breaking strain of the bond.
    pub breaking_strain: f64,
    /// Post-yield tangent stiffness (fraction of `stiffness`).
    pub hardening: f64,
    /// Whether this bond crosses a cold joint between bodies.
    pub is_joint: bool,
    /// Current state.
    pub state: BondState,
}

/// A 2-D bond lattice sampled from the mid-plane of a printed gauge
/// section.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Nodes in model-frame coordinates.
    pub nodes: Vec<Node>,
    /// Bonds (4-neighbour axial + diagonals).
    pub bonds: Vec<Bond>,
    /// Nominal cross-section area (mm²): gauge width × thickness.
    pub section_area: f64,
    /// Gauge length between the grips (mm).
    pub gauge_length: f64,
    /// Node spacing (mm).
    pub spacing: f64,
}

impl Lattice {
    /// Samples the printed part's gauge section at mid-thickness and builds
    /// the bond lattice.
    ///
    /// Bond anisotropy comes from the printer profile and the **build
    /// direction mapped into the model frame**: bonds aligned with the
    /// build (stacking) direction get the profile's `layer_bond`; in-plane
    /// bonds get `road_bond`-derived factors. Bonds whose endpoints carry
    /// different body tags are cold joints: their strength is additionally
    /// scaled by `joint_contact` (the seam contact fraction the tessellation
    /// gaps left — see the pipeline crate) and their ductility drops to the
    /// profile's `joint_ductility`.
    ///
    /// `seed` drives per-bond property jitter (specimen-to-specimen
    /// scatter).
    ///
    /// # Panics
    ///
    /// Panics on an invalid `config`; use [`Lattice::try_from_printed`] for
    /// a typed error.
    pub fn from_printed(printed: &PrintedPart, config: &TensileConfig, seed: u64) -> Lattice {
        match Lattice::try_from_printed(printed, config, seed) {
            Ok(lattice) => lattice,
            Err(e) => panic!("invalid tensile config: {e}"),
        }
    }

    /// Panic-free variant of [`Lattice::from_printed`]: validates the
    /// config and reports a typed [`crate::FeaConfigError`] instead of
    /// unwinding.
    pub fn try_from_printed(
        printed: &PrintedPart,
        config: &TensileConfig,
        seed: u64,
    ) -> Result<Lattice, crate::FeaConfigError> {
        config.validate()?;
        let s = config.node_spacing;
        let half_len = config.gauge_length / 2.0;
        let half_width = config.gauge_width / 2.0 + s;
        let z_mid = config.thickness / 2.0;

        let nx = (config.gauge_length / s).round() as usize + 1;
        let ny = (2.0 * half_width / s).round() as usize + 1;

        // Sample nodes on the model-frame grid.
        let mut index = vec![u32::MAX; nx * ny];
        let mut nodes: Vec<Node> = Vec::new();
        let mut bodies: Vec<Option<u16>> = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                let p = Point2::new(-half_len + i as f64 * s, -half_width + j as f64 * s);
                let p3 = Point3::new(p.x, p.y, z_mid);
                if printed.material_at_model(p3) != Material::Model {
                    continue;
                }
                let grip = if i == 0 {
                    Grip::Fixed
                } else if i == nx - 1 {
                    Grip::Moving
                } else {
                    Grip::Free
                };
                index[j * nx + i] = nodes.len() as u32;
                nodes.push(Node { pos: p, grip });
                bodies.push(printed.body_at_model(p3));
            }
        }

        // Build direction in the model frame decides anisotropy axes.
        let build_z_model = printed.to_build().inverse().apply_vector(Vec3::Z);
        let profile = printed.profile();
        let bulk = &profile.model_material;
        // Force units: stress in MPa × area in mm² = N. Stiffness per bond:
        // E (MPa) × s (mm) × t (mm) / rest_length — assembled per direction
        // below with a lattice correction so the homogenized modulus is ~E.
        let e_mpa = bulk.young_modulus_gpa * 1000.0;
        let t = config.thickness;

        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bf5_cade);
        let mut bonds: Vec<Bond> = Vec::new();
        let push_bond = |a: u32, b: u32, dir: BondDir, bonds: &mut Vec<Bond>, rng: &mut StdRng| {
            let (na, nb) = (nodes[a as usize], nodes[b as usize]);
            let rest = na.pos.distance(nb.pos);
            // Orientation-dependent bond quality: project the bond direction
            // onto the build (stacking) axis.
            let d = ((nb.pos - na.pos) / rest).to_3d(0.0);
            let along_build = d.dot(build_z_model).abs();
            // Interpolate between in-plane (road) and stacking (layer) bond
            // quality.
            let strength_aniso =
                config.road_strength * (1.0 - along_build) + profile.layer_bond * along_build;
            let ductility_aniso = config.road_ductility * (1.0 - along_build)
                + config.layer_ductility * along_build;

            let is_joint = match (bodies[a as usize], bodies[b as usize]) {
                (Some(x), Some(y)) => x != y,
                _ => false,
            };
            let (strength, ductility) = if is_joint {
                (
                    profile.joint_bond * config.joint_contact,
                    profile.joint_ductility,
                )
            } else {
                (strength_aniso, ductility_aniso)
            };

            let jitter = |rng: &mut StdRng| 1.0 + config.noise * rng.gen_range(-1.0..1.0f64);
            // Diagonals are longer and shared: half the axial weight keeps
            // the homogenized modulus close to E.
            let k_geom = config.modulus_calibration
                * match dir {
                    BondDir::Axial => e_mpa * s * t / rest / 2.0,
                    BondDir::Diagonal => e_mpa * s * t / rest / 4.0,
                };
            let sigma_y =
                bulk.tensile_strength_mpa * strength * config.yield_calibration * jitter(rng);
            let eps_y = sigma_y / e_mpa;
            // Cold joints are elastic-brittle: reduced contact area lowers
            // the strain they survive. Bulk bonds yield first and break
            // plastically; joints may legitimately break below yield.
            let contact = if is_joint { config.joint_contact } else { 1.0 };
            let eps_b = (bulk.elongation_at_break * ductility * contact * jitter(rng)).max(1e-4);
            let k_nominal = k_geom / config.modulus_calibration;
            bonds.push(Bond {
                nodes: [a, b],
                rest_length: rest,
                stiffness: k_geom,
                yield_force: k_nominal * eps_y * rest,
                breaking_strain: eps_b,
                hardening: config.hardening_ratio,
                is_joint,
                state: BondState::Intact,
            });
        };

        for j in 0..ny {
            for i in 0..nx {
                let a = index[j * nx + i];
                if a == u32::MAX {
                    continue;
                }
                let link = |ii: usize, jj: usize, dir: BondDir, bonds: &mut Vec<Bond>, rng: &mut StdRng| {
                    if ii >= nx || jj >= ny {
                        return;
                    }
                    let b = index[jj * nx + ii];
                    if b != u32::MAX {
                        push_bond(a, b, dir, bonds, rng);
                    }
                };
                link(i + 1, j, BondDir::Axial, &mut bonds, &mut rng);
                link(i, j + 1, BondDir::Axial, &mut bonds, &mut rng);
                link(i + 1, j + 1, BondDir::Diagonal, &mut bonds, &mut rng);
                if i > 0 {
                    link(i - 1, j + 1, BondDir::Diagonal, &mut bonds, &mut rng);
                }
            }
        }

        Ok(Lattice {
            nodes,
            bonds,
            section_area: config.gauge_width * config.thickness,
            gauge_length: config.gauge_length,
            spacing: s,
        })
    }

    /// Number of cold-joint bonds.
    pub fn joint_bond_count(&self) -> usize {
        self.bonds.iter().filter(|b| b.is_joint).count()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BondDir {
    Axial,
    Diagonal,
}
