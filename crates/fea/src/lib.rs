//! Virtual tensile testing of printed parts: a 2-D bond-lattice fracture
//! simulator.
//!
//! This crate replaces the paper's physical tensile tests (Table 2, Fig. 9)
//! with a transparent mechanical model:
//!
//! 1. [`Lattice::from_printed`] samples the printed artifact's gauge
//!    section at mid-thickness into a node grid; bonds inherit strength and
//!    ductility from the printer profile (road vs. layer anisotropy mapped
//!    through the build orientation) and become brittle **cold joints**
//!    wherever the voxels' body tags change — i.e. exactly along a planted
//!    spline split.
//! 2. [`run_tensile_test`] pulls the gauge apart in strain steps with
//!    elastic–perfectly-plastic–brittle springs and damped dynamic
//!    relaxation; breaking cascades propagate cracks.
//! 3. [`TensileResult`] reports the stress–strain curve, Young's modulus,
//!    UTS, failure strain, toughness, and the fracture origin.
//!
//! The mechanism the paper describes emerges rather than being scripted:
//! after yield, deformation localizes in the weak seam bonds, which snap at
//! their reduced ductility — so a protected specimen keeps its modulus and
//! (mostly) its strength but loses half or more of its failure strain and
//! toughness, with the crack starting at the spline tip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod kernel;
mod lattice;
mod newton;
mod result;
mod solve;

pub use config::{FeaConfigError, FeaSolver, TensileConfig};
pub use kernel::{
    reset_solver_counters, run_tensile_test_with, solver_counters, try_run_tensile_test_in,
    try_run_tensile_test_with, SolverPool, SolverPoolStats, SolverScratch,
};
pub use lattice::{Bond, BondState, Grip, Lattice, Node};
pub use result::{SolverCounters, Stat, TensileResult, TensileSummary};
pub use solve::{run_tensile_test, run_tensile_test_reference, try_run_tensile_test_reference};

#[cfg(test)]
mod tests {
    use super::*;
    use am_cad::parts::{tensile_bar, tensile_bar_with_spline, TensileBarDims};
    use am_mesh::{tessellate_shells, Resolution};
    use am_printer::{PrintedPart, PrinterProfile};
    use am_slicer::{
        build_transform, generate_toolpath, orient_shells, slice_shells, Orientation,
        SlicerConfig,
    };

    fn print_bar(split: bool, orientation: Orientation, seed: u64) -> PrintedPart {
        let dims = TensileBarDims::default();
        let part = if split {
            tensile_bar_with_spline(&dims).unwrap().resolve().unwrap()
        } else {
            tensile_bar(&dims).unwrap().resolve().unwrap()
        };
        let shells = tessellate_shells(&part, &Resolution::Coarse.params());
        let oriented = orient_shells(&shells, orientation);
        let to_build = build_transform(&shells, orientation);
        let sliced = slice_shells(&oriented, 0.1778);
        let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
        PrintedPart::from_toolpath(&toolpath, &PrinterProfile::dimension_elite(), to_build, seed)
    }

    pub(crate) fn test_bar(split: bool, orientation: Orientation, seed: u64) -> TensileResult {
        let printed = print_bar(split, orientation, seed);
        // Coarser strain steps than the default keep the test suite quick;
        // the experiment binaries use the fine default.
        let config =
            TensileConfig { strain_step: 0.0015, ..TensileConfig::fdm(orientation) };
        let mut lattice = Lattice::from_printed(&printed, &config, seed);
        run_tensile_test(&mut lattice, &config)
    }

    #[test]
    fn intact_xy_is_in_calibration_band() {
        let r = test_bar(false, Orientation::Xy, 1);
        assert!((1.5..2.6).contains(&r.young_modulus_gpa), "E = {}", r.young_modulus_gpa);
        assert!((24.0..36.0).contains(&r.uts_mpa), "UTS = {}", r.uts_mpa);
        assert!((0.018..0.045).contains(&r.failure_strain), "εf = {}", r.failure_strain);
    }

    #[test]
    fn intact_xz_is_most_ductile() {
        let xz = test_bar(false, Orientation::Xz, 1);
        let xy = test_bar(false, Orientation::Xy, 1);
        assert!(
            xz.failure_strain > 1.8 * xy.failure_strain,
            "xz {} vs xy {}",
            xz.failure_strain,
            xy.failure_strain
        );
        assert!(xz.toughness_kj_m3 > 2.0 * xy.toughness_kj_m3);
    }

    #[test]
    fn spline_split_halves_ductility() {
        for orientation in Orientation::ALL {
            let intact = test_bar(false, orientation, 8);
            let spline = test_bar(true, orientation, 8);
            // The paper's headline Table 2 shape: comparable stiffness,
            // collapsed failure strain and toughness. Seed and thresholds are
            // calibrated against the vendored deterministic RNG; the x-y
            // orientation is the tight case because the coarse test
            // strain_step quantizes εf to 1.5e-3 increments.
            assert!(
                (spline.young_modulus_gpa - intact.young_modulus_gpa).abs()
                    < 0.35 * intact.young_modulus_gpa,
                "{orientation}: E {} vs {}",
                spline.young_modulus_gpa,
                intact.young_modulus_gpa
            );
            assert!(
                spline.failure_strain < 0.72 * intact.failure_strain,
                "{orientation}: εf {} vs {}",
                spline.failure_strain,
                intact.failure_strain
            );
            assert!(
                spline.toughness_kj_m3 < 0.60 * intact.toughness_kj_m3,
                "{orientation}: U {} vs {}",
                spline.toughness_kj_m3,
                intact.toughness_kj_m3
            );
        }
    }

    #[test]
    fn fracture_starts_at_the_seam() {
        let dims = TensileBarDims::default();
        let r = test_bar(true, Orientation::Xz, 3);
        let origin = r.fracture_origin.expect("split specimen fractures");
        // The seam spans x ∈ [−9, 9]; the fracture must start on it
        // (within a lattice cell of the spline).
        let spline = am_cad::parts::standard_split_spline(&dims).unwrap();
        let d = (0..=64)
            .map(|i| spline.point_at(i as f64 / 64.0).distance(origin))
            .fold(f64::INFINITY, f64::min);
        assert!(d < 1.5, "fracture origin {origin} is {d} mm from the seam");
    }

    #[test]
    fn split_lattice_has_joint_bonds() {
        let printed = print_bar(true, Orientation::Xy, 4);
        let config = TensileConfig::fdm_xy();
        let lattice = Lattice::from_printed(&printed, &config, 4);
        assert!(lattice.joint_bond_count() > 10, "{}", lattice.joint_bond_count());
        let intact = Lattice::from_printed(&print_bar(false, Orientation::Xy, 4), &config, 4);
        assert_eq!(intact.joint_bond_count(), 0);
    }

    /// A quick configuration for kernel-equivalence tests: coarse lattice,
    /// few strain steps — enough physics to break bonds, small enough that
    /// running it several times (and with oversubscribed thread pools on a
    /// small CI box) stays fast.
    fn quick_config(orientation: Orientation) -> TensileConfig {
        TensileConfig {
            node_spacing: 1.0,
            strain_step: 0.004,
            max_strain: 0.048,
            ..TensileConfig::fdm(orientation)
        }
    }

    #[test]
    fn parallel_tensile_is_bit_identical_to_serial() {
        let printed = print_bar(true, Orientation::Xy, 5);
        for solver in FeaSolver::ALL {
            let config = TensileConfig { solver, ..quick_config(Orientation::Xy) };
            let run = |threads: usize| {
                let mut lattice = Lattice::from_printed(&printed, &config, 5);
                run_tensile_test_with(&mut lattice, &config, am_par::Parallelism::threads(threads))
            };
            let serial = run(1);
            assert!(!serial.curve.is_empty());
            for threads in [2, 8] {
                assert_eq!(serial, run(threads), "solver = {solver}, threads = {threads}");
            }
        }
    }

    /// Shared body of the solver-equivalence pins: both optimized solvers
    /// accept the same force-residual tolerance with the same constitutive
    /// law, so they find the same equilibria as the reference kernel — but
    /// by different paths (mass-scaled warm-started relaxation vs.
    /// Newton–PCG). Pre-rupture stresses therefore agree to solver
    /// tolerance (measured drift ≤ 3e-4 relative; asserted at 10×), and
    /// every engineering output must agree tightly. The post-peak tail is
    /// excluded: once the fracture cascade starts, tolerance-level
    /// differences decide individual bond-break order and the rubble
    /// stresses diverge — only the rupture verdict is comparable there.
    fn assert_tracks_reference(solver: FeaSolver) {
        let printed = print_bar(false, Orientation::Xy, 6);
        let config = TensileConfig { solver, ..quick_config(Orientation::Xy) };
        let mut a = Lattice::from_printed(&printed, &config, 6);
        let mut b = Lattice::from_printed(&printed, &config, 6);
        let reference = run_tensile_test_reference(&mut a, &config);
        let optimized = run_tensile_test(&mut b, &config);

        assert_eq!(reference.ruptured, optimized.ruptured, "{solver}: rupture verdict");
        for ((s1, f1), (s2, f2)) in reference.curve.iter().zip(&optimized.curve) {
            assert_eq!(s1, s2);
            if *s1 > reference.failure_strain {
                break;
            }
            assert!(
                (f1 - f2).abs() <= 3e-3 * (1.0 + f1.abs()),
                "{solver} at ε={s1}: {f1} vs {f2}"
            );
        }
        let rel = |x: f64, y: f64, tol: f64, what: &str| {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "{solver} {what}: {x} vs {y}");
        };
        rel(reference.young_modulus_gpa, optimized.young_modulus_gpa, 1e-3, "E");
        rel(reference.uts_mpa, optimized.uts_mpa, 3e-3, "UTS");
        rel(reference.toughness_kj_m3, optimized.toughness_kj_m3, 1e-2, "toughness");
        assert!(
            (reference.failure_strain - optimized.failure_strain).abs()
                <= config.strain_step + 1e-12,
            "{solver} εf {} vs {}",
            reference.failure_strain,
            optimized.failure_strain
        );
    }

    #[test]
    fn relaxation_kernel_tracks_reference() {
        assert_tracks_reference(FeaSolver::Relaxation);
    }

    #[test]
    fn newton_pcg_tracks_reference() {
        assert_tracks_reference(FeaSolver::NewtonPcg);
    }

    #[test]
    fn pooled_scratch_reuse_is_bit_identical_to_fresh() {
        let printed_a = print_bar(true, Orientation::Xy, 7);
        let printed_b = print_bar(false, Orientation::Xz, 7);
        let config_a = quick_config(Orientation::Xy);
        let config_b = quick_config(Orientation::Xz);
        let fresh = |printed, config: &TensileConfig, seed| {
            let mut lattice = Lattice::from_printed(printed, config, seed);
            try_run_tensile_test_with(&mut lattice, config, am_par::Parallelism::serial())
                .expect("valid config")
        };
        // One scratch carried across different specimens, topologies and
        // seeds — every pooled result must equal its fresh-scratch twin.
        let mut scratch = SolverScratch::new();
        for (printed, config, seed) in
            [(&printed_a, &config_a, 7u64), (&printed_b, &config_b, 9), (&printed_a, &config_a, 11)]
        {
            let mut lattice = Lattice::from_printed(printed, config, seed);
            let pooled =
                try_run_tensile_test_in(&mut scratch, &mut lattice, config, am_par::Parallelism::serial())
                    .expect("valid config");
            assert_eq!(pooled, fresh(printed, config, seed), "seed {seed}");
        }

        // The SolverPool wrapper recycles scratches and reports it.
        let pool = SolverPool::new();
        for seed in [7u64, 11] {
            let mut lattice = Lattice::from_printed(&printed_a, &config_a, seed);
            let pooled = pool
                .run(&mut lattice, &config_a, am_par::Parallelism::serial())
                .expect("valid config");
            assert_eq!(pooled, fresh(&printed_a, &config_a, seed), "pool seed {seed}");
        }
        let stats = pool.stats();
        assert_eq!((stats.builds, stats.reuses), (1, 1), "{stats:?}");
    }

    #[test]
    fn solver_counters_accumulate() {
        // Counters are process-global and other tests run concurrently, so
        // assert monotonic growth against a snapshot instead of resetting.
        let printed = print_bar(false, Orientation::Xy, 6);
        let config = quick_config(Orientation::Xy);
        let before = solver_counters();
        let mut lattice = Lattice::from_printed(&printed, &config, 6);
        run_tensile_test(&mut lattice, &config);
        let delta = solver_counters().since(&before);
        assert!(delta.force_evals > 0, "{delta:?}");
        assert!(delta.newton_iters > 0, "{delta:?}");
        assert!(delta.inner_iters() >= delta.pcg_iters);
    }

    #[test]
    fn invalid_config_is_a_typed_error_not_a_panic() {
        let printed = print_bar(false, Orientation::Xy, 6);
        let good = quick_config(Orientation::Xy);
        let bad = TensileConfig { strain_step: -1.0, ..good.clone() };
        let mut lattice = Lattice::from_printed(&printed, &good, 6);
        let err = try_run_tensile_test_with(&mut lattice, &bad, am_par::Parallelism::serial())
            .expect_err("negative strain step must fail");
        assert!(matches!(err, FeaConfigError::NonPositive { name: "strain_step", .. }));
        assert!(try_run_tensile_test_reference(&mut lattice, &bad).is_err());
        assert!(Lattice::try_from_printed(&printed, &bad, 6).is_err());
    }

    #[test]
    fn replicates_scatter_but_agree() {
        let results: Vec<TensileResult> =
            (0..3).map(|s| test_bar(false, Orientation::Xy, 10 + s)).collect();
        let summary = TensileSummary::from_results(&results);
        assert_eq!(summary.specimens, 3);
        assert!(summary.uts_mpa.std < 0.2 * summary.uts_mpa.mean);
    }
}

/// Ignored calibration helper: prints spline/intact ductility ratios per
/// seed so `spline_split_halves_ductility` thresholds can be re-tuned when
/// the lattice model or the deterministic RNG changes.
/// Run with `cargo test -p am-fea -- --ignored --nocapture sweep`.
#[cfg(test)]
mod seed_sweep {
    use super::tests::test_bar;

    #[test]
    #[ignore]
    fn sweep() {
        for seed in 1u64..9 {
            for orientation in am_slicer::Orientation::ALL {
                let intact = test_bar(false, orientation, seed);
                let spline = test_bar(true, orientation, seed);
                println!(
                    "seed {seed} {orientation}: E {:.3}/{:.3} ef {:.4}/{:.4} ratio {:.3} U ratio {:.3}",
                    spline.young_modulus_gpa, intact.young_modulus_gpa,
                    spline.failure_strain, intact.failure_strain,
                    spline.failure_strain / intact.failure_strain,
                    spline.toughness_kj_m3 / intact.toughness_kj_m3,
                );
            }
        }
    }
}
