//! Optimized tensile kernel: SoA bond storage, a two-phase
//! (bond-force / node-gather) relaxation loop, and an optional barrier-phased
//! parallel execution mode.
//!
//! The phase split is what makes thread-count-independent determinism
//! possible: phase one writes each bond's force vector into that bond's own
//! slot (no accumulation, any order), phase two gathers each node's incident
//! bond forces **in ascending bond order** from a CSR incidence table. Every
//! float is therefore produced by a fixed reduction order no matter how the
//! phases are partitioned across threads, and the residual reduction is a
//! max over non-negative values — associative and commutative. The
//! `parallel_*` tests pin run-to-run bit-identity across thread counts.
//!
//! Relative to the reference solver in [`crate::solve`], the model and the
//! convergence criterion are identical — same constitutive law, same force
//! residual tolerance, so both solvers land on the same equilibrium to
//! within [`TOL`] — but the path there is much cheaper:
//!
//! * **Mass-scaled dynamic relaxation** (Underwood's fictitious-mass
//!   scheme): every node gets mass `mᵢ = Σ incident bond stiffness`, which
//!   makes every local stability limit uniform (Gershgorin:
//!   `λmax(M⁻¹K) ≤ 2`) and lets the integrator take near-critical steps
//!   everywhere. The reference solver's unit masses force the global step
//!   down to what its *stiffest* node tolerates, so its soft regions — the
//!   weakened joint and inter-layer bonds this simulation is about —
//!   converge many times slower.
//! * **Warm-started strain steps**: displacement fields scale ≈ linearly
//!   with the applied strain, so each step starts from the previous
//!   equilibrium scaled by the strain ratio instead of the raw previous
//!   field.
//! * Cheaper arithmetic: `f_elastic = k·(len − rest)` instead of
//!   `k·((len − rest)/rest)·rest` (one division per bond instead of
//!   three), packed per-bond parameter records, squared-residual
//!   convergence tests (no square root per node), and broken bonds keep
//!   zero stiffness so the hot loop carries no liveness branch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

use am_geom::{Point2, Vec2};
use am_par::{Parallelism, Pool};

use crate::{BondState, Grip, Lattice, TensileConfig, TensileResult};

const MAX_ITERS: usize = 2500;
const TOL: f64 = 3e-4; // N residual per node

/// Runs a displacement-controlled tensile test with the optimized kernel
/// and an explicit thread budget. See [`crate::run_tensile_test`] for the
/// loading protocol; `Parallelism::serial()` and every multi-threaded
/// budget produce bit-identical results.
pub fn run_tensile_test_with(
    lattice: &mut Lattice,
    config: &TensileConfig,
    parallelism: Parallelism,
) -> TensileResult {
    config.assert_valid();
    let mut solver = Solver::new(lattice);
    let pool = Pool::new(parallelism);

    let mut curve: Vec<(f64, f64)> = vec![(0.0, 0.0)];
    let mut fracture_path: Vec<Point2> = Vec::new();
    let mut peak_stress = 0.0f64;
    let mut ruptured = false;

    let steps = (config.max_strain / config.strain_step).ceil() as usize;
    for step in 1..=steps {
        let strain = step as f64 * config.strain_step;
        let grip_u = strain * lattice.gauge_length;
        if step > 1 {
            // Elastic response scales ≈ linearly with strain; extrapolating
            // the previous equilibrium is a far better starting point than
            // reusing it verbatim.
            solver.warm_start(strain / (strain - config.strain_step));
        }
        solver.prescribe_grips(grip_u);

        // Relax, break, repeat until no bond fails in this step.
        loop {
            solver.relax(&pool);
            if !solver.break_overstrained(&mut fracture_path) {
                break;
            }
        }

        let stress = solver.grip_stress(lattice.section_area);
        curve.push((strain, stress));
        peak_stress = peak_stress.max(stress);
        if peak_stress > 0.0 && stress < 0.05 * peak_stress && strain > config.strain_step * 3.0 {
            ruptured = true;
            break;
        }
    }

    // Mirror bond failures back so callers can inspect the lattice
    // afterwards, exactly as the reference solver's in-place breaking does.
    for (bond, &alive) in lattice.bonds.iter_mut().zip(&solver.alive) {
        if !alive {
            bond.state = BondState::Broken;
        }
    }
    TensileResult::from_curve(curve, fracture_path, ruptured)
}

/// Per-bond constitutive parameters, packed into one record so the hot
/// loop streams a single 48-byte array instead of six parallel ones. A
/// broken bond keeps `stiffness = 0`, which makes its force exactly zero
/// without a liveness branch.
#[derive(Clone, Copy)]
struct BondParam {
    a: u32,
    b: u32,
    rest: f64,
    stiffness: f64,
    yield_force: f64,
    hardening: f64,
}

/// Structure-of-arrays solver state.
struct Solver {
    // Nodes.
    pos: Vec<Point2>,
    grip: Vec<Grip>,
    disp: Vec<Vec2>,
    vel: Vec<Vec2>,
    /// Reciprocal fictitious mass, `1 / Σ incident bond stiffness`
    /// (Underwood mass scaling; zero for isolated nodes). Kept at its
    /// initial value when bonds break — a heavier-than-needed node is still
    /// stable, just marginally slower.
    inv_mass: Vec<f64>,
    // Bonds.
    params: Vec<BondParam>,
    breaking_strain: Vec<f64>,
    alive: Vec<bool>,
    /// Per-bond force on node `a` (node `b` receives the negation). Broken
    /// bonds produce exact zeros (zero stiffness), so gathers need no
    /// liveness check.
    fb: Vec<Vec2>,
    /// Node→bond incidence, CSR. Entries encode `bond_index << 1 | side`
    /// (side 1 = this node is the bond's `b` end) and are ascending in bond
    /// index, fixing the gather order.
    inc_off: Vec<usize>,
    inc: Vec<u32>,
    dt: f64,
    damping: f64,
}

impl Solver {
    fn new(lattice: &Lattice) -> Self {
        let n = lattice.nodes.len();
        let m = lattice.bonds.len();

        // Fictitious nodal masses: the sum of incident spring constants
        // (`∂f/∂len = stiffness`). With `mᵢ = Σⱼ kᵢⱼ`, Gershgorin bounds
        // every eigenvalue of `M⁻¹K` by 2, so the dimensionless step below
        // is stable for every node regardless of how heterogeneous the
        // road/layer/joint bond stiffnesses are.
        let mut mass = vec![0.0f64; n];
        for bond in &lattice.bonds {
            mass[bond.nodes[0] as usize] += bond.stiffness;
            mass[bond.nodes[1] as usize] += bond.stiffness;
        }

        let mut inc_off = vec![0usize; n + 1];
        for bond in &lattice.bonds {
            inc_off[bond.nodes[0] as usize + 1] += 1;
            inc_off[bond.nodes[1] as usize + 1] += 1;
        }
        for i in 0..n {
            inc_off[i + 1] += inc_off[i];
        }
        let mut cursor = inc_off.clone();
        let mut inc = vec![0u32; 2 * m];
        for (bi, bond) in lattice.bonds.iter().enumerate() {
            let a = bond.nodes[0] as usize;
            let b = bond.nodes[1] as usize;
            inc[cursor[a]] = (bi as u32) << 1;
            cursor[a] += 1;
            inc[cursor[b]] = (bi as u32) << 1 | 1;
            cursor[b] += 1;
        }

        Solver {
            pos: lattice.nodes.iter().map(|nd| nd.pos).collect(),
            grip: lattice.nodes.iter().map(|nd| nd.grip).collect(),
            disp: vec![Vec2::ZERO; n],
            vel: vec![Vec2::ZERO; n],
            inv_mass: mass.iter().map(|&m| if m > 0.0 { 1.0 / m } else { 0.0 }).collect(),
            params: lattice
                .bonds
                .iter()
                .map(|b| BondParam {
                    a: b.nodes[0],
                    b: b.nodes[1],
                    rest: b.rest_length,
                    // Zero stiffness ⇒ zero force: broken bonds stay inert
                    // without a branch in the hot loop.
                    stiffness: if b.state == BondState::Intact { b.stiffness } else { 0.0 },
                    yield_force: b.yield_force,
                    hardening: b.hardening,
                })
                .collect(),
            breaking_strain: lattice.bonds.iter().map(|b| b.breaking_strain).collect(),
            alive: lattice.bonds.iter().map(|b| b.state == BondState::Intact).collect(),
            fb: vec![Vec2::ZERO; m],
            inc_off,
            inc,
            // Dimensionless near-critical step: the mass scaling pins the
            // stability limit at `2/√λmax ≥ √2 ≈ 1.41`, and 1.0 keeps the
            // same ~70 % safety margin the reference solver uses against
            // its own (much smaller) limit.
            dt: 1.0,
            damping: 0.92,
        }
    }

    /// Scales the displacement field by the strain ratio `s` — the linear
    /// extrapolation of the previous equilibrium to the next strain step —
    /// and restarts the pseudo-dynamics from rest.
    fn warm_start(&mut self, s: f64) {
        for d in &mut self.disp {
            *d = *d * s;
        }
        for v in &mut self.vel {
            *v = Vec2::ZERO;
        }
    }

    /// Prescribes grip displacements (x only — the grips do not restrain
    /// lateral contraction, avoiding artificial corner concentrations).
    fn prescribe_grips(&mut self, grip_u: f64) {
        for (i, g) in self.grip.iter().enumerate() {
            match g {
                Grip::Fixed => self.disp[i].x = 0.0,
                Grip::Moving => self.disp[i].x = grip_u,
                Grip::Free => {}
            }
        }
    }

    /// Axial bond force: linear elastic up to yield, then linear hardening
    /// (tangent stiffness = `hardening × stiffness`); linear in compression.
    ///
    /// Branch-free: with `hardening < 1` the plastic line lies below the
    /// elastic line exactly when `f_elastic > yield_force`, so the `min`
    /// selects the same value the explicit comparison would — but the loop
    /// around it stays straight-line code the compiler can vectorize.
    #[inline]
    fn bond_force(&self, i: usize, len: f64) -> f64 {
        let p = &self.params[i];
        let f_elastic = p.stiffness * (len - p.rest);
        let f_plastic = p.yield_force + p.hardening * (f_elastic - p.yield_force);
        f_elastic.min(f_plastic)
    }

    /// Phase one for bond `i`: the force vector exerted on node `a`.
    #[inline]
    fn bond_phase(&self, i: usize, disp_at: impl Fn(usize) -> Vec2) -> Vec2 {
        let a = self.params[i].a as usize;
        let b = self.params[i].b as usize;
        let pa = self.pos[a] + disp_at(a);
        let pb = self.pos[b] + disp_at(b);
        let d = pb - pa;
        let len = d.length();
        if len < 1e-12 {
            return Vec2::ZERO;
        }
        d * (self.bond_force(i, len) / len)
    }

    /// Phase two for node `i`: gathers the net force in ascending bond
    /// order.
    #[inline]
    fn gather_force(&self, i: usize, fb_at: impl Fn(usize) -> Vec2) -> Vec2 {
        let mut force = Vec2::ZERO;
        for &e in &self.inc[self.inc_off[i]..self.inc_off[i + 1]] {
            let f = fb_at((e >> 1) as usize);
            if e & 1 == 0 {
                force += f;
            } else {
                force -= f;
            }
        }
        force
    }

    /// Node state update; returns the node's squared residual. The residual
    /// is the raw nodal force (same convergence criterion as the reference
    /// solver); only the acceleration is mass-scaled.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn advance_node(
        grip: Grip,
        force: Vec2,
        inv_m: f64,
        vel: &mut Vec2,
        disp: &mut Vec2,
        dt: f64,
        damping: f64,
    ) -> f64 {
        match grip {
            Grip::Free => {
                *vel = (*vel + force * (dt * inv_m)) * damping;
                *disp += *vel * dt;
                force.length_squared()
            }
            // Grip nodes: x prescribed, y free (no lateral clamp).
            Grip::Fixed | Grip::Moving => {
                vel.x = 0.0;
                vel.y = (vel.y + force.y * (dt * inv_m)) * damping;
                disp.y += vel.y * dt;
                force.y * force.y
            }
        }
    }

    fn relax(&mut self, pool: &Pool) {
        if pool.parallelism().is_serial() {
            self.relax_serial();
        } else {
            self.relax_parallel(pool);
        }
    }

    /// Damped dynamic relaxation to (approximate) equilibrium, in place.
    ///
    /// Scatters bond forces directly instead of staging them in [`Self::fb`]
    /// and gathering: with bonds walked in ascending index order, each node
    /// receives exactly the additions the CSR gather would perform, in the
    /// same order, so the result is bit-identical to
    /// [`Solver::relax_parallel`] (a dead bond's zero-stiffness force is a
    /// signed zero, which cannot change an accumulator — accumulators start
    /// at `+0.0` and can never become `-0.0`).
    fn relax_serial(&mut self) {
        let n = self.pos.len();
        let (dt, damping) = (self.dt, self.damping);
        let tol_sq = TOL * TOL;
        let mut force = vec![Vec2::ZERO; n];
        for _ in 0..MAX_ITERS {
            for f in force.iter_mut() {
                *f = Vec2::ZERO;
            }
            for (i, p) in self.params.iter().enumerate() {
                let a = p.a as usize;
                let b = p.b as usize;
                let d = (self.pos[b] + self.disp[b]) - (self.pos[a] + self.disp[a]);
                let len = d.length();
                if len < 1e-12 {
                    continue;
                }
                let fv = d * (self.bond_force(i, len) / len);
                force[a] += fv;
                force[b] -= fv;
            }
            let mut residual_sq = 0.0f64;
            for (i, f) in force.iter().enumerate() {
                residual_sq = residual_sq.max(Self::advance_node(
                    self.grip[i],
                    *f,
                    self.inv_mass[i],
                    &mut self.vel[i],
                    &mut self.disp[i],
                    dt,
                    damping,
                ));
            }
            if residual_sq < tol_sq {
                break;
            }
        }
    }

    /// Parallel relaxation: one pool broadcast per call; workers run a
    /// barrier-phased loop over fixed bond/node partitions. Mutable state is
    /// mirrored into atomic-u64 cells for the duration of the call (safe
    /// shared access without locks; barriers order the phases), then copied
    /// back. Bit-identical to [`Solver::relax_serial`]: same per-bond and
    /// per-node arithmetic, same gather order, and the residual reduction is
    /// a max over non-negative floats.
    fn relax_parallel(&mut self, pool: &Pool) {
        let n = self.pos.len();
        let m = self.params.len();
        let workers = pool.thread_count();
        let (dt, damping) = (self.dt, self.damping);
        let tol_sq = TOL * TOL;

        let disp = AtomicVec2s::from(&self.disp);
        let vel = AtomicVec2s::from(&self.vel);
        let fb = AtomicVec2s::from(&self.fb);
        let residuals: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let stop = AtomicBool::new(false);
        let barrier = Barrier::new(workers);
        let this = &*self;

        pool.broadcast(|w| {
            let (b_lo, b_hi) = worker_range(m, workers, w);
            let (n_lo, n_hi) = worker_range(n, workers, w);
            for _ in 0..MAX_ITERS {
                for i in b_lo..b_hi {
                    fb.store(i, this.bond_phase(i, |j| disp.load(j)));
                }
                barrier.wait();
                let mut residual_sq = 0.0f64;
                for i in n_lo..n_hi {
                    let force = this.gather_force(i, |b| fb.load(b));
                    let mut v = vel.load(i);
                    let mut d = disp.load(i);
                    residual_sq = residual_sq.max(Self::advance_node(
                        this.grip[i],
                        force,
                        this.inv_mass[i],
                        &mut v,
                        &mut d,
                        dt,
                        damping,
                    ));
                    vel.store(i, v);
                    disp.store(i, d);
                }
                residuals[w].store(residual_sq.to_bits(), Ordering::Relaxed);
                barrier.wait();
                if w == 0 {
                    let max = residuals
                        .iter()
                        .map(|r| f64::from_bits(r.load(Ordering::Relaxed)))
                        .fold(0.0f64, f64::max);
                    stop.store(max < tol_sq, Ordering::Relaxed);
                }
                barrier.wait();
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
        });

        disp.write_back(&mut self.disp);
        vel.write_back(&mut self.vel);
        fb.write_back(&mut self.fb);
    }

    /// Breaks every intact bond whose strain exceeds its limit (zeroing its
    /// stiffness, which zeroes its force in subsequent relaxations). Returns
    /// whether anything broke and appends break locations to the crack path.
    fn break_overstrained(&mut self, fracture_path: &mut Vec<Point2>) -> bool {
        let mut broke = false;
        for i in 0..self.params.len() {
            if !self.alive[i] {
                continue;
            }
            let p = self.params[i];
            let a = p.a as usize;
            let b = p.b as usize;
            let pa = self.pos[a] + self.disp[a];
            let pb = self.pos[b] + self.disp[b];
            let strain = (pa.distance(pb) - p.rest) / p.rest;
            if strain > self.breaking_strain[i] {
                self.alive[i] = false;
                self.params[i].stiffness = 0.0;
                broke = true;
                fracture_path.push((self.pos[a] + self.pos[b]) * 0.5);
            }
        }
        broke
    }

    /// Engineering stress from the moving-grip reaction (MPa).
    fn grip_stress(&self, section_area: f64) -> f64 {
        let mut fx = 0.0;
        for i in 0..self.params.len() {
            if !self.alive[i] {
                continue;
            }
            let a = self.params[i].a as usize;
            let b = self.params[i].b as usize;
            let (ga, gb) = (self.grip[a], self.grip[b]);
            if (ga == Grip::Moving) == (gb == Grip::Moving) {
                continue;
            }
            let pa = self.pos[a] + self.disp[a];
            let pb = self.pos[b] + self.disp[b];
            let d = pb - pa;
            let len = d.length();
            if len < 1e-12 {
                continue;
            }
            let f = self.bond_force(i, len);
            // The bond pulls the moving node toward the other end; the
            // machine supplies the opposite reaction, which is what the load
            // cell reads. With `d` pointing a→b, the bond force on b is
            // −(d/len)·f, so the machine reaction when b is the moving node
            // is +(d/len)·f.
            let machine = if gb == Grip::Moving { (d / len) * f } else { -(d / len) * f };
            fx += machine.x;
        }
        (fx / section_area).max(0.0)
    }
}

/// Contiguous per-worker index range (may be empty), unlike
/// [`am_par::chunk_ranges`] which omits empty chunks.
fn worker_range(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = len / workers;
    let extra = len % workers;
    let lo = w * base + w.min(extra);
    (lo, lo + base + usize::from(w < extra))
}

/// A `Vec<Vec2>` mirrored into atomic bit cells so barrier-phased workers
/// can share it without locks. Loads/stores are `Relaxed`; the phase
/// barriers provide the ordering.
struct AtomicVec2s {
    cells: Vec<[AtomicU64; 2]>,
}

impl AtomicVec2s {
    fn from(src: &[Vec2]) -> Self {
        AtomicVec2s {
            cells: src
                .iter()
                .map(|v| [AtomicU64::new(v.x.to_bits()), AtomicU64::new(v.y.to_bits())])
                .collect(),
        }
    }

    #[inline]
    fn load(&self, i: usize) -> Vec2 {
        let [x, y] = &self.cells[i];
        Vec2::new(
            f64::from_bits(x.load(Ordering::Relaxed)),
            f64::from_bits(y.load(Ordering::Relaxed)),
        )
    }

    #[inline]
    fn store(&self, i: usize, v: Vec2) {
        let [x, y] = &self.cells[i];
        x.store(v.x.to_bits(), Ordering::Relaxed);
        y.store(v.y.to_bits(), Ordering::Relaxed);
    }

    fn write_back(&self, dst: &mut [Vec2]) {
        for (d, i) in dst.iter_mut().zip(0..) {
            *d = self.load(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_ranges_partition_exactly() {
        for len in [0usize, 1, 5, 100, 101] {
            for workers in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev = 0;
                for w in 0..workers {
                    let (lo, hi) = worker_range(len, workers, w);
                    assert_eq!(lo, prev);
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev = hi;
                }
                assert_eq!(covered, len, "len {len} workers {workers}");
            }
        }
    }

    #[test]
    fn atomic_vec2s_round_trips() {
        let src = vec![Vec2::new(1.5, -2.5), Vec2::new(f64::MIN_POSITIVE, -0.0)];
        let mirror = AtomicVec2s::from(&src);
        assert_eq!(mirror.load(0), src[0]);
        mirror.store(1, Vec2::new(3.0, 4.0));
        let mut out = vec![Vec2::ZERO; 2];
        mirror.write_back(&mut out);
        assert_eq!(out, vec![Vec2::new(1.5, -2.5), Vec2::new(3.0, 4.0)]);
    }
}
