//! Optimized tensile kernel: SoA bond storage, reusable solver state, and
//! two interchangeable equilibrium solvers — matrix-free Newton–PCG (the
//! default, see [`crate::newton`]) and a two-phase (bond-force /
//! node-gather) dynamic relaxation loop with an optional barrier-phased
//! parallel execution mode.
//!
//! The phase split is what makes thread-count-independent determinism
//! possible: phase one writes each bond's force vector into that bond's own
//! slot (no accumulation, any order), phase two gathers each node's incident
//! bond forces **in ascending bond order** from a CSR incidence table. Every
//! float is therefore produced by a fixed reduction order no matter how the
//! phases are partitioned across threads, and the residual reduction is a
//! max over non-negative values — associative and commutative. The
//! `parallel_*` tests pin run-to-run bit-identity across thread counts.
//!
//! Relative to the reference solver in [`crate::solve`], the model and the
//! convergence criterion are identical — same constitutive law, same force
//! residual tolerance, so every solver lands on the same equilibrium to
//! within [`TOL`] — but the path there is much cheaper:
//!
//! * **Newton–PCG** (default): the constitutive law is piecewise linear
//!   (exactly two tangent regimes), so an outer Newton iteration converges
//!   in a handful of steps per strain increment, each step solved by a
//!   Jacobi-preconditioned conjugate gradient whose Hessian-vector products
//!   reuse the deterministic bond-order reduction scheme.
//! * **Mass-scaled dynamic relaxation** (fallback / `FeaSolver::Relaxation`,
//!   Underwood's fictitious-mass scheme): every node gets mass
//!   `mᵢ = Σ incident bond stiffness`, which makes every local stability
//!   limit uniform (Gershgorin: `λmax(M⁻¹K) ≤ 2`) and lets the integrator
//!   take near-critical steps everywhere. The reference solver's unit
//!   masses force the global step down to what its *stiffest* node
//!   tolerates, so its soft regions — the weakened joint and inter-layer
//!   bonds this simulation is about — converge many times slower.
//! * **Warm-started strain steps**: displacement fields scale ≈ linearly
//!   with the applied strain, so each step starts from the previous
//!   equilibrium scaled by the strain ratio instead of the raw previous
//!   field.
//! * **Solver-state reuse**: the CSR incidence, packed [`BondParam`] array
//!   and all scratch vectors live in a [`SolverScratch`] that is rebuilt
//!   in place across strain steps, bond-break cascades and — via
//!   [`SolverPool`] — across tensile replicates in a sweep, eliminating
//!   the per-replicate rebuild and per-relax allocations.
//! * Cheaper arithmetic: `f_elastic = k·(len − rest)` instead of
//!   `k·((len − rest)/rest)·rest` (one division per bond instead of
//!   three), packed per-bond parameter records, squared-residual
//!   convergence tests (no square root per node), and broken bonds keep
//!   zero stiffness so the hot loop carries no liveness branch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use am_geom::{Point2, Vec2};
use am_par::{Parallelism, Pool};

use crate::{
    BondState, FeaConfigError, FeaSolver, Grip, Lattice, SolverCounters, TensileConfig, TensileResult,
};

pub(crate) const MAX_ITERS: usize = 2500;

/// Total Newton-solver work budget (force-pass equivalents) for one strain
/// step's equilibrate/break cascade, and the floor any single cascade round
/// still gets once the pool runs low. A rupture cascade equilibrates a
/// nearly-severed lattice over and over — the most ill-conditioned solves
/// of the whole test, on a specimen whose recorded stress has already
/// collapsed — so the cascade as a whole is capped at twice the relaxation
/// loop's own per-call iteration cap instead of being allowed `MAX_ITERS`
/// per round. See `try_run_tensile_test_in`.
const CASCADE_BUDGET: usize = 2 * MAX_ITERS;
const MIN_CALL_BUDGET: usize = 350;
pub(crate) const TOL: f64 = 3e-4; // N residual per node

/// Process-wide solver work counters (see [`solver_counters`]).
pub(crate) mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    use crate::SolverCounters;

    static NEWTON_ITERS: AtomicU64 = AtomicU64::new(0);
    static PCG_ITERS: AtomicU64 = AtomicU64::new(0);
    static RELAX_ITERS: AtomicU64 = AtomicU64::new(0);
    static FORCE_EVALS: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn add_newton(n: u64) {
        NEWTON_ITERS.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_pcg(n: u64) {
        PCG_ITERS.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_relax(n: u64) {
        RELAX_ITERS.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_force_evals(n: u64) {
        FORCE_EVALS.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn reset() {
        for c in [&NEWTON_ITERS, &PCG_ITERS, &RELAX_ITERS, &FORCE_EVALS] {
            c.store(0, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot() -> SolverCounters {
        SolverCounters {
            newton_iters: NEWTON_ITERS.load(Ordering::Relaxed),
            pcg_iters: PCG_ITERS.load(Ordering::Relaxed),
            relax_iters: RELAX_ITERS.load(Ordering::Relaxed),
            force_evals: FORCE_EVALS.load(Ordering::Relaxed),
        }
    }
}

/// Resets the process-wide [`SolverCounters`] to zero (bench harness
/// bracketing; tests should diff snapshots instead of resetting, since the
/// counters are shared across threads).
pub fn reset_solver_counters() {
    counters::reset();
}

/// Snapshot of the process-wide optimized-solver work counters. The
/// counters are telemetry only — they never feed back into the simulation,
/// so results remain bit-identical whether or not anyone reads them.
pub fn solver_counters() -> SolverCounters {
    counters::snapshot()
}

/// Runs a displacement-controlled tensile test with the optimized kernel
/// and an explicit thread budget. See [`crate::run_tensile_test`] for the
/// loading protocol; `Parallelism::serial()` and every multi-threaded
/// budget produce bit-identical results.
///
/// # Panics
///
/// Panics on an invalid `config`; use [`try_run_tensile_test_with`] for a
/// typed error.
pub fn run_tensile_test_with(
    lattice: &mut Lattice,
    config: &TensileConfig,
    parallelism: Parallelism,
) -> TensileResult {
    match try_run_tensile_test_with(lattice, config, parallelism) {
        Ok(result) => result,
        Err(e) => panic!("invalid tensile config: {e}"),
    }
}

/// Panic-free variant of [`run_tensile_test_with`]: validates the config
/// and reports a typed [`FeaConfigError`] instead of unwinding.
pub fn try_run_tensile_test_with(
    lattice: &mut Lattice,
    config: &TensileConfig,
    parallelism: Parallelism,
) -> Result<TensileResult, FeaConfigError> {
    let mut scratch = SolverScratch::new();
    try_run_tensile_test_in(&mut scratch, lattice, config, parallelism)
}

/// Runs the tensile test inside caller-provided [`SolverScratch`], reusing
/// its allocations (and, when the lattice topology matches the previous
/// run, its CSR incidence). Results are bit-identical to a fresh-scratch
/// run: `reset` reinitializes every numeric field the solve reads.
pub fn try_run_tensile_test_in(
    scratch: &mut SolverScratch,
    lattice: &mut Lattice,
    config: &TensileConfig,
    parallelism: Parallelism,
) -> Result<TensileResult, FeaConfigError> {
    config.validate()?;
    let solver = &mut scratch.solver;
    solver.reset(lattice);
    let pool = Pool::new(parallelism);

    let mut curve: Vec<(f64, f64)> = vec![(0.0, 0.0)];
    let mut fracture_path: Vec<Point2> = Vec::new();
    let mut peak_stress = 0.0f64;
    let mut ruptured = false;

    let steps = (config.max_strain / config.strain_step).ceil() as usize;
    for step in 1..=steps {
        let strain = step as f64 * config.strain_step;
        let grip_u = strain * lattice.gauge_length;
        if step > 1 {
            // Elastic response scales ≈ linearly with strain; extrapolating
            // the previous equilibrium is a far better starting point than
            // reusing it verbatim.
            solver.warm_start(strain / (strain - config.strain_step));
        }
        solver.prescribe_grips(grip_u);

        // Equilibrate, break, repeat until no bond fails in this step.
        let mut cascade_left = CASCADE_BUDGET;
        loop {
            let call_budget = cascade_left.clamp(MIN_CALL_BUDGET, MAX_ITERS);
            let used = solver.equilibrate(config.solver, &pool, call_budget);
            cascade_left = cascade_left.saturating_sub(used.max(1));
            if !solver.break_overstrained(&mut fracture_path) {
                break;
            }
            // Rupture short-circuit: once the transmitted load has
            // collapsed, the rupture check below ends the test at this
            // step no matter how the cascade finishes — grinding the
            // remaining break rounds to full equilibrium (the most
            // ill-conditioned solves of the whole test) would only polish
            // a specimen that is already recorded as failed.
            if peak_stress > 0.0
                && strain > config.strain_step * 3.0
                && solver.grip_stress(lattice.section_area) < 0.05 * peak_stress
            {
                break;
            }
        }

        let stress = solver.grip_stress(lattice.section_area);
        curve.push((strain, stress));
        peak_stress = peak_stress.max(stress);
        if peak_stress > 0.0 && stress < 0.05 * peak_stress && strain > config.strain_step * 3.0 {
            ruptured = true;
            break;
        }
    }

    // Mirror bond failures back so callers can inspect the lattice
    // afterwards, exactly as the reference solver's in-place breaking does.
    for (bond, &alive) in lattice.bonds.iter_mut().zip(&solver.alive) {
        if !alive {
            bond.state = BondState::Broken;
        }
    }
    Ok(TensileResult::from_curve(curve, fracture_path, ruptured))
}

/// Reusable tensile solver state: CSR incidence, packed bond parameters and
/// every scratch vector (relaxation force buffer, Newton tangent cache, PCG
/// work vectors). Recycling one `SolverScratch` across runs skips the
/// per-replicate allocations, and — when consecutive lattices share bond
/// topology, as replicates of one specimen do — the CSR rebuild too.
pub struct SolverScratch {
    solver: Solver,
}

impl SolverScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SolverScratch { solver: Solver::empty() }
    }
}

impl Default for SolverScratch {
    fn default() -> Self {
        SolverScratch::new()
    }
}

/// Upper bound on idle scratches a [`SolverPool`] retains; beyond this,
/// returned scratches are dropped (bounds memory under bursty batches).
const MAX_POOLED_SCRATCHES: usize = 16;

/// A shared, thread-safe pool of [`SolverScratch`] instances. The batch
/// engine funnels every tensile replicate of a sweep through one pool, so
/// replicate `k+1` reuses the allocations (and usually the CSR incidence)
/// replicate `k` built, instead of rebuilding from scratch.
#[derive(Default)]
pub struct SolverPool {
    free: Mutex<Vec<SolverScratch>>,
    builds: AtomicU64,
    reuses: AtomicU64,
}

/// Reuse telemetry for a [`SolverPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverPoolStats {
    /// Runs that had to build a fresh scratch (pool empty).
    pub builds: u64,
    /// Runs served by a recycled scratch.
    pub reuses: u64,
}

impl SolverPool {
    /// An empty pool.
    pub fn new() -> Self {
        SolverPool::default()
    }

    /// Runs a tensile test through the pool: acquires a scratch (recycled
    /// if available), runs [`try_run_tensile_test_in`], and returns the
    /// scratch to the pool. Bit-identical to a fresh-scratch run.
    pub fn run(
        &self,
        lattice: &mut Lattice,
        config: &TensileConfig,
        parallelism: Parallelism,
    ) -> Result<TensileResult, FeaConfigError> {
        let recycled = match self.free.lock() {
            Ok(mut free) => free.pop(),
            Err(poisoned) => poisoned.into_inner().pop(),
        };
        let mut scratch = match recycled {
            Some(scratch) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                scratch
            }
            None => {
                self.builds.fetch_add(1, Ordering::Relaxed);
                SolverScratch::new()
            }
        };
        let out = try_run_tensile_test_in(&mut scratch, lattice, config, parallelism);
        let mut free = match self.free.lock() {
            Ok(free) => free,
            Err(poisoned) => poisoned.into_inner(),
        };
        if free.len() < MAX_POOLED_SCRATCHES {
            free.push(scratch);
        }
        out
    }

    /// Build/reuse counts since the pool was created.
    pub fn stats(&self) -> SolverPoolStats {
        SolverPoolStats {
            builds: self.builds.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
        }
    }
}

/// Per-bond constitutive parameters, packed into one record so the hot
/// loop streams a single 48-byte array instead of six parallel ones. A
/// broken bond keeps `stiffness = 0`, which makes its force exactly zero
/// without a liveness branch.
#[derive(Clone, Copy)]
pub(crate) struct BondParam {
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) rest: f64,
    pub(crate) stiffness: f64,
    pub(crate) yield_force: f64,
    pub(crate) hardening: f64,
}

/// Per-bond tangent-stiffness coefficients cached by the Newton solver's
/// residual pass: the current unit direction `u`, the constitutive tangent
/// `kt` (elastic or hardening slope), and the geometric term `geo = f/L`.
/// The bond's 2×2 tangent block is `B = kt·(u⊗u) + geo·(I − u⊗u)`.
#[derive(Clone, Copy, Default)]
pub(crate) struct BondTang {
    pub(crate) ux: f64,
    pub(crate) uy: f64,
    pub(crate) kt: f64,
    pub(crate) geo: f64,
}

/// Structure-of-arrays solver state.
pub(crate) struct Solver {
    // Nodes.
    pub(crate) pos: Vec<Point2>,
    pub(crate) grip: Vec<Grip>,
    pub(crate) disp: Vec<Vec2>,
    pub(crate) vel: Vec<Vec2>,
    /// Reciprocal fictitious mass, `1 / Σ incident bond stiffness`
    /// (Underwood mass scaling; zero for isolated nodes). Kept at its
    /// initial value when bonds break — a heavier-than-needed node is still
    /// stable, just marginally slower.
    pub(crate) inv_mass: Vec<f64>,
    /// Nodal force scratch shared by the serial relaxation loop and the
    /// Newton residual pass (lives here so neither allocates per call).
    pub(crate) force: Vec<Vec2>,
    // Bonds.
    pub(crate) params: Vec<BondParam>,
    pub(crate) breaking_strain: Vec<f64>,
    pub(crate) alive: Vec<bool>,
    /// Per-bond force on node `a` (node `b` receives the negation). Broken
    /// bonds produce exact zeros (zero stiffness), so gathers need no
    /// liveness check.
    pub(crate) fb: Vec<Vec2>,
    /// Node→bond incidence, CSR. Entries encode `bond_index << 1 | side`
    /// (side 1 = this node is the bond's `b` end) and are ascending in bond
    /// index, fixing the gather order.
    pub(crate) inc_off: Vec<usize>,
    pub(crate) inc: Vec<u32>,
    // Newton–PCG scratch (sized lazily; see `ensure_newton_scratch`).
    pub(crate) tang: Vec<BondTang>,
    /// Diagonal (x/x, y/y) entries of the assembled tangent blocks.
    pub(crate) diag: Vec<Vec2>,
    /// Off-diagonal (x/y) entry of each node's 2×2 tangent block, for the
    /// block-Jacobi preconditioner.
    pub(crate) diag_xy: Vec<f64>,
    pub(crate) delta: Vec<Vec2>,
    pub(crate) cg_r: Vec<Vec2>,
    pub(crate) cg_z: Vec<Vec2>,
    pub(crate) cg_p: Vec<Vec2>,
    pub(crate) cg_q: Vec<Vec2>,
    pub(crate) disp_save: Vec<Vec2>,
    pub(crate) dt: f64,
    pub(crate) damping: f64,
}

impl Solver {
    /// An empty solver shell; every buffer is filled by [`Solver::reset`].
    fn empty() -> Self {
        Solver {
            pos: Vec::new(),
            grip: Vec::new(),
            disp: Vec::new(),
            vel: Vec::new(),
            inv_mass: Vec::new(),
            force: Vec::new(),
            params: Vec::new(),
            breaking_strain: Vec::new(),
            alive: Vec::new(),
            fb: Vec::new(),
            inc_off: Vec::new(),
            inc: Vec::new(),
            tang: Vec::new(),
            diag: Vec::new(),
            diag_xy: Vec::new(),
            delta: Vec::new(),
            cg_r: Vec::new(),
            cg_z: Vec::new(),
            cg_p: Vec::new(),
            cg_q: Vec::new(),
            disp_save: Vec::new(),
            // Dimensionless near-critical step: the mass scaling pins the
            // stability limit at `2/√λmax ≥ √2 ≈ 1.41`, and 1.0 keeps the
            // same ~70 % safety margin the reference solver uses against
            // its own (much smaller) limit.
            dt: 1.0,
            damping: 0.92,
        }
    }

    /// Rebuilds the solver state for `lattice` in place, reusing every
    /// allocation. The CSR incidence is rebuilt only when the bond
    /// topology differs from the previous occupant — replicates of the
    /// same specimen (same node/bond graph, different jitter) skip it.
    /// The numeric results are bit-identical to a freshly built solver:
    /// same accumulation orders, every field the solve reads is
    /// reinitialized here.
    fn reset(&mut self, lattice: &Lattice) {
        let n = lattice.nodes.len();
        let m = lattice.bonds.len();
        let topo_same = self.pos.len() == n
            && self.params.len() == m
            && lattice.bonds.iter().zip(&self.params).all(|(b, p)| b.nodes[0] == p.a && b.nodes[1] == p.b);

        self.pos.clear();
        self.pos.extend(lattice.nodes.iter().map(|nd| nd.pos));
        self.grip.clear();
        self.grip.extend(lattice.nodes.iter().map(|nd| nd.grip));
        self.disp.clear();
        self.disp.resize(n, Vec2::ZERO);
        self.vel.clear();
        self.vel.resize(n, Vec2::ZERO);
        self.force.clear();
        self.force.resize(n, Vec2::ZERO);

        // Fictitious nodal masses: the sum of incident spring constants
        // (`∂f/∂len = stiffness`). With `mᵢ = Σⱼ kᵢⱼ`, Gershgorin bounds
        // every eigenvalue of `M⁻¹K` by 2, so the dimensionless relaxation
        // step is stable for every node regardless of how heterogeneous the
        // road/layer/joint bond stiffnesses are. Accumulated into
        // `inv_mass` and inverted in place (same accumulation order as a
        // fresh build).
        self.inv_mass.clear();
        self.inv_mass.resize(n, 0.0);
        for bond in &lattice.bonds {
            self.inv_mass[bond.nodes[0] as usize] += bond.stiffness;
            self.inv_mass[bond.nodes[1] as usize] += bond.stiffness;
        }
        for mass in &mut self.inv_mass {
            *mass = if *mass > 0.0 { 1.0 / *mass } else { 0.0 };
        }

        self.params.clear();
        self.params.extend(lattice.bonds.iter().map(|b| BondParam {
            a: b.nodes[0],
            b: b.nodes[1],
            rest: b.rest_length,
            // Zero stiffness ⇒ zero force: broken bonds stay inert
            // without a branch in the hot loop.
            stiffness: if b.state == BondState::Intact { b.stiffness } else { 0.0 },
            yield_force: b.yield_force,
            hardening: b.hardening,
        }));
        self.breaking_strain.clear();
        self.breaking_strain.extend(lattice.bonds.iter().map(|b| b.breaking_strain));
        self.alive.clear();
        self.alive.extend(lattice.bonds.iter().map(|b| b.state == BondState::Intact));
        self.fb.clear();
        self.fb.resize(m, Vec2::ZERO);

        if !topo_same {
            self.inc_off.clear();
            self.inc_off.resize(n + 1, 0);
            for bond in &lattice.bonds {
                self.inc_off[bond.nodes[0] as usize + 1] += 1;
                self.inc_off[bond.nodes[1] as usize + 1] += 1;
            }
            for i in 0..n {
                self.inc_off[i + 1] += self.inc_off[i];
            }
            let mut cursor = self.inc_off.clone();
            self.inc.clear();
            self.inc.resize(2 * m, 0);
            for (bi, bond) in lattice.bonds.iter().enumerate() {
                let a = bond.nodes[0] as usize;
                let b = bond.nodes[1] as usize;
                self.inc[cursor[a]] = (bi as u32) << 1;
                cursor[a] += 1;
                self.inc[cursor[b]] = (bi as u32) << 1 | 1;
                cursor[b] += 1;
            }
        }
    }

    /// Sizes the Newton-specific scratch vectors for the current lattice.
    /// Contents are not cleared: every consumer fully overwrites its
    /// buffer before reading it.
    pub(crate) fn ensure_newton_scratch(&mut self) {
        let n = self.pos.len();
        let m = self.params.len();
        self.tang.resize(m, BondTang::default());
        self.diag.resize(n, Vec2::ZERO);
        self.diag_xy.resize(n, 0.0);
        self.delta.resize(n, Vec2::ZERO);
        self.cg_r.resize(n, Vec2::ZERO);
        self.cg_z.resize(n, Vec2::ZERO);
        self.cg_p.resize(n, Vec2::ZERO);
        self.cg_q.resize(n, Vec2::ZERO);
        self.disp_save.resize(n, Vec2::ZERO);
    }

    /// Dispatches one equilibrium solve to the configured solver.
    /// Runs one equilibrium solve with the selected solver and returns the
    /// force-pass-equivalent work it spent (Newton only; the relaxation
    /// solver's budget is its own internal `MAX_ITERS` cap and it reports
    /// 0). `budget` caps the Newton solve; callers shrink it across a break
    /// cascade so one strain step can never out-spend the cascade budget.
    fn equilibrate(&mut self, solver: FeaSolver, pool: &Pool, budget: usize) -> usize {
        match solver {
            FeaSolver::NewtonPcg => self.solve_newton(pool, budget),
            FeaSolver::Relaxation => {
                self.relax(pool);
                0
            }
        }
    }

    /// Scales the displacement field by the strain ratio `s` — the linear
    /// extrapolation of the previous equilibrium to the next strain step —
    /// and restarts the pseudo-dynamics from rest.
    fn warm_start(&mut self, s: f64) {
        for d in &mut self.disp {
            *d = *d * s;
        }
        for v in &mut self.vel {
            *v = Vec2::ZERO;
        }
    }

    /// Prescribes grip displacements (x only — the grips do not restrain
    /// lateral contraction, avoiding artificial corner concentrations).
    fn prescribe_grips(&mut self, grip_u: f64) {
        for (i, g) in self.grip.iter().enumerate() {
            match g {
                Grip::Fixed => self.disp[i].x = 0.0,
                Grip::Moving => self.disp[i].x = grip_u,
                Grip::Free => {}
            }
        }
    }

    /// Axial bond force: linear elastic up to yield, then linear hardening
    /// (tangent stiffness = `hardening × stiffness`); linear in compression.
    ///
    /// Branch-free: with `hardening < 1` the plastic line lies below the
    /// elastic line exactly when `f_elastic > yield_force`, so the `min`
    /// selects the same value the explicit comparison would — but the loop
    /// around it stays straight-line code the compiler can vectorize.
    #[inline]
    fn bond_force(&self, i: usize, len: f64) -> f64 {
        let p = &self.params[i];
        let f_elastic = p.stiffness * (len - p.rest);
        let f_plastic = p.yield_force + p.hardening * (f_elastic - p.yield_force);
        f_elastic.min(f_plastic)
    }

    /// Phase one for bond `i`: the force vector exerted on node `a`.
    #[inline]
    fn bond_phase(&self, i: usize, disp_at: impl Fn(usize) -> Vec2) -> Vec2 {
        let a = self.params[i].a as usize;
        let b = self.params[i].b as usize;
        let pa = self.pos[a] + disp_at(a);
        let pb = self.pos[b] + disp_at(b);
        let d = pb - pa;
        let len = d.length();
        if len < 1e-12 {
            return Vec2::ZERO;
        }
        d * (self.bond_force(i, len) / len)
    }

    /// Phase two for node `i`: gathers the net force in ascending bond
    /// order.
    #[inline]
    fn gather_force(&self, i: usize, fb_at: impl Fn(usize) -> Vec2) -> Vec2 {
        let mut force = Vec2::ZERO;
        for &e in &self.inc[self.inc_off[i]..self.inc_off[i + 1]] {
            let f = fb_at((e >> 1) as usize);
            if e & 1 == 0 {
                force += f;
            } else {
                force -= f;
            }
        }
        force
    }

    /// Node state update; returns the node's squared residual. The residual
    /// is the raw nodal force (same convergence criterion as the reference
    /// solver); only the acceleration is mass-scaled.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn advance_node(
        grip: Grip,
        force: Vec2,
        inv_m: f64,
        vel: &mut Vec2,
        disp: &mut Vec2,
        dt: f64,
        damping: f64,
    ) -> f64 {
        match grip {
            Grip::Free => {
                *vel = (*vel + force * (dt * inv_m)) * damping;
                *disp += *vel * dt;
                force.length_squared()
            }
            // Grip nodes: x prescribed, y free (no lateral clamp).
            Grip::Fixed | Grip::Moving => {
                vel.x = 0.0;
                vel.y = (vel.y + force.y * (dt * inv_m)) * damping;
                disp.y += vel.y * dt;
                force.y * force.y
            }
        }
    }

    pub(crate) fn relax(&mut self, pool: &Pool) {
        if pool.parallelism().is_serial() {
            self.relax_serial();
        } else {
            self.relax_parallel(pool);
        }
    }

    /// Damped dynamic relaxation to (approximate) equilibrium, in place.
    ///
    /// Scatters bond forces directly instead of staging them in [`Self::fb`]
    /// and gathering: with bonds walked in ascending index order, each node
    /// receives exactly the additions the CSR gather would perform, in the
    /// same order, so the result is bit-identical to
    /// [`Solver::relax_parallel`] (a dead bond's zero-stiffness force is a
    /// signed zero, which cannot change an accumulator — accumulators start
    /// at `+0.0` and can never become `-0.0`).
    fn relax_serial(&mut self) {
        self.relax_serial_bounded(MAX_ITERS);
    }

    /// Serial relaxation with an explicit iteration budget. The Newton
    /// solver uses a small budget as an escape nudge past the non-smooth
    /// states (branch-set kinks, fresh bond breaks) where a tangent step
    /// cannot make progress; always serial, so it is bit-identical under
    /// every thread budget.
    pub(crate) fn relax_serial_bounded(&mut self, max_iters: usize) {
        let n = self.pos.len();
        let (dt, damping) = (self.dt, self.damping);
        let tol_sq = TOL * TOL;
        let mut force = std::mem::take(&mut self.force);
        debug_assert_eq!(force.len(), n);
        let mut iters = 0u64;
        for _ in 0..max_iters {
            iters += 1;
            for f in force.iter_mut() {
                *f = Vec2::ZERO;
            }
            for (i, p) in self.params.iter().enumerate() {
                let a = p.a as usize;
                let b = p.b as usize;
                let d = (self.pos[b] + self.disp[b]) - (self.pos[a] + self.disp[a]);
                let len = d.length();
                if len < 1e-12 {
                    continue;
                }
                let fv = d * (self.bond_force(i, len) / len);
                force[a] += fv;
                force[b] -= fv;
            }
            let mut residual_sq = 0.0f64;
            for (i, f) in force.iter().enumerate() {
                residual_sq = residual_sq.max(Self::advance_node(
                    self.grip[i],
                    *f,
                    self.inv_mass[i],
                    &mut self.vel[i],
                    &mut self.disp[i],
                    dt,
                    damping,
                ));
            }
            if residual_sq < tol_sq {
                break;
            }
        }
        self.force = force;
        counters::add_relax(iters);
        counters::add_force_evals(iters);
    }

    /// Parallel relaxation: one pool broadcast per call; workers run a
    /// barrier-phased loop over fixed bond/node partitions. Mutable state is
    /// mirrored into atomic-u64 cells for the duration of the call (safe
    /// shared access without locks; barriers order the phases), then copied
    /// back. Bit-identical to [`Solver::relax_serial`]: same per-bond and
    /// per-node arithmetic, same gather order, and the residual reduction is
    /// a max over non-negative floats.
    fn relax_parallel(&mut self, pool: &Pool) {
        let n = self.pos.len();
        let m = self.params.len();
        let workers = pool.thread_count();
        let (dt, damping) = (self.dt, self.damping);
        let tol_sq = TOL * TOL;

        let disp = AtomicVec2s::from(&self.disp);
        let vel = AtomicVec2s::from(&self.vel);
        let fb = AtomicVec2s::from(&self.fb);
        let residuals: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let stop = AtomicBool::new(false);
        let barrier = Barrier::new(workers);
        let this = &*self;

        pool.broadcast(|w| {
            let (b_lo, b_hi) = worker_range(m, workers, w);
            let (n_lo, n_hi) = worker_range(n, workers, w);
            let mut iters = 0u64;
            for _ in 0..MAX_ITERS {
                iters += 1;
                for i in b_lo..b_hi {
                    fb.store(i, this.bond_phase(i, |j| disp.load(j)));
                }
                barrier.wait();
                let mut residual_sq = 0.0f64;
                for i in n_lo..n_hi {
                    let force = this.gather_force(i, |b| fb.load(b));
                    let mut v = vel.load(i);
                    let mut d = disp.load(i);
                    residual_sq = residual_sq.max(Self::advance_node(
                        this.grip[i],
                        force,
                        this.inv_mass[i],
                        &mut v,
                        &mut d,
                        dt,
                        damping,
                    ));
                    vel.store(i, v);
                    disp.store(i, d);
                }
                residuals[w].store(residual_sq.to_bits(), Ordering::Relaxed);
                barrier.wait();
                if w == 0 {
                    let max = residuals
                        .iter()
                        .map(|r| f64::from_bits(r.load(Ordering::Relaxed)))
                        .fold(0.0f64, f64::max);
                    stop.store(max < tol_sq, Ordering::Relaxed);
                }
                barrier.wait();
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            if w == 0 {
                counters::add_relax(iters);
                counters::add_force_evals(iters);
            }
        });

        disp.write_back(&mut self.disp);
        vel.write_back(&mut self.vel);
        fb.write_back(&mut self.fb);
    }

    /// Breaks every intact bond whose strain exceeds its limit (zeroing its
    /// stiffness, which zeroes its force in subsequent relaxations). Returns
    /// whether anything broke and appends break locations to the crack path.
    fn break_overstrained(&mut self, fracture_path: &mut Vec<Point2>) -> bool {
        let mut broke = false;
        for i in 0..self.params.len() {
            if !self.alive[i] {
                continue;
            }
            let p = self.params[i];
            let a = p.a as usize;
            let b = p.b as usize;
            let pa = self.pos[a] + self.disp[a];
            let pb = self.pos[b] + self.disp[b];
            let strain = (pa.distance(pb) - p.rest) / p.rest;
            if strain > self.breaking_strain[i] {
                self.alive[i] = false;
                self.params[i].stiffness = 0.0;
                broke = true;
                fracture_path.push((self.pos[a] + self.pos[b]) * 0.5);
            }
        }
        broke
    }

    /// Engineering stress from the moving-grip reaction (MPa).
    fn grip_stress(&self, section_area: f64) -> f64 {
        let mut fx = 0.0;
        for i in 0..self.params.len() {
            if !self.alive[i] {
                continue;
            }
            let a = self.params[i].a as usize;
            let b = self.params[i].b as usize;
            let (ga, gb) = (self.grip[a], self.grip[b]);
            if (ga == Grip::Moving) == (gb == Grip::Moving) {
                continue;
            }
            let pa = self.pos[a] + self.disp[a];
            let pb = self.pos[b] + self.disp[b];
            let d = pb - pa;
            let len = d.length();
            if len < 1e-12 {
                continue;
            }
            let f = self.bond_force(i, len);
            // The bond pulls the moving node toward the other end; the
            // machine supplies the opposite reaction, which is what the load
            // cell reads. With `d` pointing a→b, the bond force on b is
            // −(d/len)·f, so the machine reaction when b is the moving node
            // is +(d/len)·f.
            let machine = if gb == Grip::Moving { (d / len) * f } else { -(d / len) * f };
            fx += machine.x;
        }
        (fx / section_area).max(0.0)
    }
}

/// Contiguous per-worker index range (may be empty), unlike
/// [`am_par::chunk_ranges`] which omits empty chunks.
fn worker_range(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = len / workers;
    let extra = len % workers;
    let lo = w * base + w.min(extra);
    (lo, lo + base + usize::from(w < extra))
}

/// A `Vec<Vec2>` mirrored into atomic bit cells so barrier-phased workers
/// can share it without locks. Loads/stores are `Relaxed`; the phase
/// barriers provide the ordering.
struct AtomicVec2s {
    cells: Vec<[AtomicU64; 2]>,
}

impl AtomicVec2s {
    fn from(src: &[Vec2]) -> Self {
        AtomicVec2s {
            cells: src
                .iter()
                .map(|v| [AtomicU64::new(v.x.to_bits()), AtomicU64::new(v.y.to_bits())])
                .collect(),
        }
    }

    #[inline]
    fn load(&self, i: usize) -> Vec2 {
        let [x, y] = &self.cells[i];
        Vec2::new(
            f64::from_bits(x.load(Ordering::Relaxed)),
            f64::from_bits(y.load(Ordering::Relaxed)),
        )
    }

    #[inline]
    fn store(&self, i: usize, v: Vec2) {
        let [x, y] = &self.cells[i];
        x.store(v.x.to_bits(), Ordering::Relaxed);
        y.store(v.y.to_bits(), Ordering::Relaxed);
    }

    fn write_back(&self, dst: &mut [Vec2]) {
        for (d, i) in dst.iter_mut().zip(0..) {
            *d = self.load(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_ranges_partition_exactly() {
        for len in [0usize, 1, 5, 100, 101] {
            for workers in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev = 0;
                for w in 0..workers {
                    let (lo, hi) = worker_range(len, workers, w);
                    assert_eq!(lo, prev);
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev = hi;
                }
                assert_eq!(covered, len, "len {len} workers {workers}");
            }
        }
    }

    #[test]
    fn atomic_vec2s_round_trips() {
        let src = vec![Vec2::new(1.5, -2.5), Vec2::new(f64::MIN_POSITIVE, -0.0)];
        let mirror = AtomicVec2s::from(&src);
        assert_eq!(mirror.load(0), src[0]);
        mirror.store(1, Vec2::new(3.0, 4.0));
        let mut out = vec![Vec2::ZERO; 2];
        mirror.write_back(&mut out);
        assert_eq!(out, vec![Vec2::new(1.5, -2.5), Vec2::new(3.0, 4.0)]);
    }
}
