//! Matrix-free Newton–PCG equilibrium solver.
//!
//! The lattice's constitutive law is piecewise linear — each bond is either
//! on its elastic branch or its hardening branch — so the global residual
//! `F(u)` is piecewise linear in the displacements and an outer Newton
//! iteration converges in a handful of steps per strain increment: once the
//! active branch set stops changing, a single exact tangent solve lands on
//! the equilibrium. Each Newton step solves the tangent system
//!
//! ```text
//!     K(u) δ = F(u),      K = Σ_bonds B,
//!     B = kt·(u⊗u) + (f/L)·(I − u⊗u)
//! ```
//!
//! with a block-Jacobi-preconditioned conjugate gradient (one 2×2 nodal
//! block per node — the diagonal lattice bonds couple x/y strongly, and the
//! block inverse roughly halves the iteration count of a plain diagonal
//! Jacobi). `K` is never formed: the Hessian-vector product streams the
//! same packed [`BondParam`] array the force pass reads, writing each
//! bond's block-times-difference and scattering `±h` **in ascending bond
//! order** — the same fixed reduction order the relaxation kernel's CSR
//! gather pins down (see [`crate::kernel`]). All CG scalars (dot products)
//! are computed serially in node order on the calling thread, so the solve
//! is bit-identical regardless of the session's thread budget; at these
//! lattice sizes (10³–10⁴ DOF) a Newton step costs a few
//! force-pass-equivalents and threading the inner loop would be pure
//! synchronization overhead.
//!
//! **Line search and the non-smooth states.** The accept test for the
//! equilibrium is the relaxation solver's projected *max*-residual
//! criterion (`< TOL` per node), but the line search judges steps by the
//! residual's squared *2-norm*: the max-norm is non-smooth exactly where
//! the interesting physics happens (a single bond crossing its yield kink,
//! a fresh break), and demanding monotone max-norm progress would reject
//! good steps. Where even the 2-norm cannot decrease — an indefinite
//! tangent from compressed regions mid-cascade — the solver runs a small
//! bounded relaxation *nudge* to slide past the kink and re-enters Newton,
//! and only falls back to a full relaxation solve if the outer iteration
//! budget runs out.
//!
//! **Equivalence contract.** Every state this solver returns satisfied the
//! same `< TOL` max-residual test the relaxation loop enforces (or came
//! out of the relaxation fallback itself), so Newton–PCG is purely an
//! accelerator: results agree with the relaxation and reference solvers to
//! solver tolerance, pinned by the `*_tracks_reference` tests and the
//! pipeline-level equivalence proptests.

use am_geom::Vec2;
use am_par::Pool;

use crate::kernel::{counters, BondTang, Solver, MAX_ITERS, TOL};
use crate::Grip;

/// Outer Newton iteration cap per equilibrium solve. The branch set of a
/// warm-started strain step usually settles within 2–4 iterations; hitting
/// the cap triggers the relaxation fallback.
const MAX_NEWTON: usize = 40;

/// Inner PCG iteration cap (truncated Newton: a partial solve is still a
/// descent direction).
const MAX_PCG: usize = 350;

/// Inexact-Newton forcing term: PCG stops once the linear residual 2-norm
/// drops below this fraction of its start. Tight enough that one Newton
/// step per unchanged branch set reaches equilibrium; loose enough not to
/// over-solve steps whose branch set is about to change anyway.
const CG_FORCING: f64 = 0.1;

/// Backtracking line-search halvings before declaring the step failed.
const LS_STEPS: usize = 5;

/// Relaxation-iteration budget for the escape nudge after a rejected step.
const NUDGE_ITERS: usize = 120;

impl Solver {
    /// Newton–PCG equilibrium solve, in place. Falls back to damped
    /// dynamic relaxation when Newton stalls, so acceptance is never
    /// weaker than [`Solver::relax`].
    pub(crate) fn solve_newton(&mut self, pool: &Pool, budget: usize) -> usize {
        self.ensure_newton_scratch();
        let (outcome, work) = self.newton_iterate(budget);
        match outcome {
            // Converged below TOL, or spent as much work as the relaxation
            // loop's own iteration cap would allow — in which case returning
            // the partially-converged state is exactly as strong as what
            // [`Solver::relax`] does when it exhausts `MAX_ITERS`.
            NewtonOutcome::Converged | NewtonOutcome::BudgetExhausted => {}
            NewtonOutcome::Stalled => self.relax(pool),
        }
        work
    }

    /// Runs the Newton loop until convergence below [`TOL`], a stall, or
    /// the relaxation-equivalent work budget runs out.
    fn newton_iterate(&mut self, budget: usize) -> (NewtonOutcome, usize) {
        let tol_sq = TOL * TOL;
        let budget = budget.min(MAX_ITERS);
        let mut work = 1usize;
        let (mut max_sq, mut sum_sq) = self.force_and_tangent();
        for _ in 0..MAX_NEWTON {
            if max_sq < tol_sq {
                return (NewtonOutcome::Converged, work);
            }
            if work >= budget {
                return (NewtonOutcome::BudgetExhausted, work);
            }
            counters::add_newton(1);
            self.build_diag();
            work += self.pcg();

            // Backtracking line search on the squared-2-norm merit: the
            // full Newton step first, then halvings. Any strict decrease
            // is accepted — near a branch-set change the first steps only
            // shrink the residual partwise, and demanding more would
            // forfeit Newton's endgame (one exact solve once the set
            // settles).
            self.disp_save.clone_from(&self.disp);
            let mut t = 1.0;
            let mut accepted = false;
            for _ in 0..LS_STEPS {
                for i in 0..self.disp.len() {
                    self.disp[i] = self.disp_save[i] + self.delta[i] * t;
                }
                let (trial_max, trial_sum) = self.force_and_tangent();
                work += 1;
                if trial_sum < sum_sq || trial_max < tol_sq {
                    max_sq = trial_max;
                    sum_sq = trial_sum;
                    accepted = true;
                    break;
                }
                t *= 0.5;
            }
            if !accepted {
                // Indefinite tangent or a kink the tangent model cannot
                // see: restore the best state, slide past it with a few
                // relaxation iterations, and let Newton try again.
                self.disp.clone_from(&self.disp_save);
                self.relax_serial_bounded(NUDGE_ITERS);
                work += NUDGE_ITERS + 1;
                let (m, s) = self.force_and_tangent();
                max_sq = m;
                sum_sq = s;
            }
        }
        let outcome = if max_sq < tol_sq {
            NewtonOutcome::Converged
        } else if work >= budget {
            NewtonOutcome::BudgetExhausted
        } else {
            NewtonOutcome::Stalled
        };
        (outcome, work)
    }

    /// One residual evaluation: recomputes nodal forces (serial scatter in
    /// ascending bond order — the reduction order the CSR gather fixes, see
    /// `relax_serial`) and caches each bond's tangent coefficients for the
    /// subsequent Hessian-vector products. Returns the projected residual
    /// measure as `(max²,  Σ|·|²)` over nodes — the max under the same
    /// criterion the relaxation convergence test uses (free nodes: `|F|²`;
    /// grip nodes: `F_y²`), the sum as the smooth line-search merit.
    fn force_and_tangent(&mut self) -> (f64, f64) {
        counters::add_force_evals(1);
        let Solver { params, pos, grip, disp, force, tang, .. } = self;
        for f in force.iter_mut() {
            *f = Vec2::ZERO;
        }
        for (i, p) in params.iter().enumerate() {
            let a = p.a as usize;
            let b = p.b as usize;
            let d = (pos[b] + disp[b]) - (pos[a] + disp[a]);
            let len = d.length();
            if len < 1e-12 {
                tang[i] = BondTang::default();
                continue;
            }
            let f_elastic = p.stiffness * (len - p.rest);
            // Same value the branch-free `bond_force` min computes: with
            // hardening < 1 the plastic line lies below the elastic one
            // exactly when f_elastic > yield_force. Broken bonds (zero
            // stiffness) fall on the elastic branch with f = kt = 0.
            let (f, kt) = if f_elastic > p.yield_force {
                (p.yield_force + p.hardening * (f_elastic - p.yield_force), p.hardening * p.stiffness)
            } else {
                (f_elastic, p.stiffness)
            };
            let inv_len = 1.0 / len;
            let u = d * inv_len;
            let fv = u * f;
            force[a] += fv;
            force[b] -= fv;
            tang[i] = BondTang { ux: u.x, uy: u.y, kt, geo: f * inv_len };
        }
        let mut max_sq = 0.0f64;
        let mut sum_sq = 0.0f64;
        for (i, f) in force.iter().enumerate() {
            let r = match grip[i] {
                Grip::Free => f.length_squared(),
                Grip::Fixed | Grip::Moving => f.y * f.y,
            };
            max_sq = max_sq.max(r);
            sum_sq += r;
        }
        (max_sq, sum_sq)
    }

    /// Block-Jacobi preconditioner entries: each node's full 2×2 tangent
    /// block `[xx, xy; xy, yy]`, assembled per bond in ascending order.
    fn build_diag(&mut self) {
        let Solver { params, tang, diag, diag_xy, .. } = self;
        for d in diag.iter_mut() {
            *d = Vec2::ZERO;
        }
        for d in diag_xy.iter_mut() {
            *d = 0.0;
        }
        for (p, t) in params.iter().zip(tang.iter()) {
            let dk = t.kt - t.geo;
            let c = Vec2::new(t.geo + dk * t.ux * t.ux, t.geo + dk * t.uy * t.uy);
            let cxy = dk * t.ux * t.uy;
            diag[p.a as usize] += c;
            diag_xy[p.a as usize] += cxy;
            diag[p.b as usize] += c;
            diag_xy[p.b as usize] += cxy;
        }
    }

    /// Deterministic Hessian-vector product `cg_q = K · cg_p` over the
    /// active DOF (grip x-DOF projected out). One fused serial pass:
    /// each bond's block-times-difference is scattered `±h` in ascending
    /// bond order — exactly the reduction order the CSR gather defines —
    /// so the product is bit-stable under any thread budget.
    fn apply_tangent(&mut self) {
        let Solver { params, tang, grip, cg_p, cg_q, .. } = self;
        for q in cg_q.iter_mut() {
            *q = Vec2::ZERO;
        }
        for (p, t) in params.iter().zip(tang.iter()) {
            let a = p.a as usize;
            let b = p.b as usize;
            let w = cg_p[a] - cg_p[b];
            let axial = (t.kt - t.geo) * (t.ux * w.x + t.uy * w.y);
            let h = Vec2::new(t.geo * w.x + axial * t.ux, t.geo * w.y + axial * t.uy);
            cg_q[a] += h;
            cg_q[b] -= h;
        }
        for (q, g) in cg_q.iter_mut().zip(grip.iter()) {
            if *g != Grip::Free {
                q.x = 0.0;
            }
        }
    }

    /// `cg_z = M⁻¹ cg_r` with the block-Jacobi preconditioner: each node's
    /// 2×2 block is inverted exactly when it is safely positive definite
    /// (grip nodes use only their free y/y entry); otherwise the node
    /// falls back to the |diag| scaling, which keeps `M` positive definite
    /// when compression makes an entry negative. Zero rows (isolated DOF,
    /// whose residual is also zero) get `z = 0` and never move.
    fn precondition(&mut self) {
        let Solver { grip, diag, diag_xy, cg_r, cg_z, .. } = self;
        for i in 0..cg_r.len() {
            let d = diag[i];
            let r = cg_r[i];
            if grip[i] != Grip::Free {
                // Only the y DOF is active; r.x is already projected to 0.
                let zy = if d.y.abs() > 1e-300 { r.y / d.y.abs() } else { 0.0 };
                cg_z[i] = Vec2::new(0.0, zy);
                continue;
            }
            let xy = diag_xy[i];
            let det = d.x * d.y - xy * xy;
            if d.x > 0.0 && det > 1e-12 * d.x * d.x {
                cg_z[i] =
                    Vec2::new((d.y * r.x - xy * r.y) / det, (d.x * r.y - xy * r.x) / det);
            } else {
                cg_z[i] = Vec2::new(
                    if d.x.abs() > 1e-300 { r.x / d.x.abs() } else { 0.0 },
                    if d.y.abs() > 1e-300 { r.y / d.y.abs() } else { 0.0 },
                );
            }
        }
    }

    /// Block-Jacobi PCG on the current tangent system, writing the
    /// (possibly truncated) Newton step into `delta`. Stops at the
    /// relative-residual forcing term, the iteration cap, or detected
    /// non-positive curvature — the piecewise-linear law's geometric term
    /// can make `K` indefinite in compressed regions — in which case the
    /// accumulated partial step (or, on the very first iteration, the
    /// preconditioned gradient) is still a descent direction for the line
    /// search to judge.
    fn pcg(&mut self) -> usize {
        let n = self.pos.len();
        for i in 0..n {
            let mut r = self.force[i];
            if self.grip[i] != Grip::Free {
                r.x = 0.0;
            }
            self.cg_r[i] = r;
            self.delta[i] = Vec2::ZERO;
        }
        let rr0 = dot(&self.cg_r, &self.cg_r);
        if rr0 == 0.0 {
            return 0;
        }
        let stop = rr0 * CG_FORCING * CG_FORCING;
        self.precondition();
        self.cg_p.clone_from(&self.cg_z);
        let mut rho = dot(&self.cg_r, &self.cg_z);
        let mut used = 0usize;
        for iter in 0..MAX_PCG {
            if rho <= 0.0 {
                break;
            }
            self.apply_tangent();
            let pq = dot(&self.cg_p, &self.cg_q);
            if pq <= 0.0 {
                if iter == 0 {
                    self.delta.clone_from(&self.cg_z);
                }
                break;
            }
            let alpha = rho / pq;
            for i in 0..n {
                self.delta[i] += self.cg_p[i] * alpha;
                self.cg_r[i] -= self.cg_q[i] * alpha;
            }
            counters::add_pcg(1);
            used += 1;
            if dot(&self.cg_r, &self.cg_r) <= stop {
                break;
            }
            self.precondition();
            let rho_next = dot(&self.cg_r, &self.cg_z);
            let beta = rho_next / rho;
            rho = rho_next;
            for i in 0..n {
                self.cg_p[i] = self.cg_z[i] + self.cg_p[i] * beta;
            }
        }
        used
    }
}

/// How a [`Solver::newton_iterate`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NewtonOutcome {
    /// Projected max-residual dropped below [`TOL`].
    Converged,
    /// Spent [`MAX_ITERS`] force-pass-equivalents of work — the same
    /// budget the relaxation loop caps itself at — without converging.
    /// The state is returned as-is, matching the relaxation solver's
    /// behaviour when *it* runs out of iterations.
    BudgetExhausted,
    /// Newton stopped making progress with budget to spare; the caller
    /// runs the relaxation fallback.
    Stalled,
}

/// Serial dot product in fixed node order. The CG scalars are part of the
/// determinism contract, so they are never computed with a parallel (or
/// otherwise order-varying) reduction.
fn dot(a: &[Vec2], b: &[Vec2]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x.x * y.x + x.y * y.y;
    }
    acc
}
