//! Quasi-static tensile loading by dynamic relaxation.
//!
//! Two implementations live side by side: [`run_tensile_test`] delegates
//! to the optimized structure-of-arrays solver in [`crate::kernel`]
//! (optionally parallel via [`crate::run_tensile_test_with`]), while
//! [`run_tensile_test_reference`] keeps the original scalar kernel
//! verbatim as the benchmark baseline and cross-check.

use am_geom::{Point2, Vec2};

use crate::{Bond, BondState, FeaConfigError, Grip, Lattice, TensileConfig, TensileResult};

/// Runs a displacement-controlled tensile test on a lattice.
///
/// Loading is strain-stepped: at each step the moving grip is displaced,
/// the lattice is brought to equilibrium (Newton–PCG by default, or damped
/// dynamic relaxation — see [`crate::FeaSolver`]), over-strained bonds
/// break, and the cascade repeats until stable. The engineering stress is
/// the grip reaction force over the nominal section.
///
/// The run stops early once the specimen has ruptured (stress falls below
/// 5 % of the running maximum after the peak).
///
/// # Panics
///
/// Panics on an invalid `config`; use [`crate::try_run_tensile_test_with`]
/// for a typed error.
pub fn run_tensile_test(lattice: &mut Lattice, config: &TensileConfig) -> TensileResult {
    crate::kernel::run_tensile_test_with(lattice, config, am_par::Parallelism::serial())
}

/// The original kernel of [`run_tensile_test`], kept verbatim: the
/// benchmark baseline, and the cross-check the optimized solvers' results
/// are validated against.
///
/// # Panics
///
/// Panics on an invalid `config`; use [`try_run_tensile_test_reference`]
/// for a typed error.
pub fn run_tensile_test_reference(
    lattice: &mut Lattice,
    config: &TensileConfig,
) -> TensileResult {
    match try_run_tensile_test_reference(lattice, config) {
        Ok(result) => result,
        Err(e) => panic!("invalid tensile config: {e}"),
    }
}

/// Panic-free variant of [`run_tensile_test_reference`]: validates the
/// config and reports a typed [`FeaConfigError`] instead of unwinding. The
/// solver body is the original scalar kernel, unchanged.
pub fn try_run_tensile_test_reference(
    lattice: &mut Lattice,
    config: &TensileConfig,
) -> Result<TensileResult, FeaConfigError> {
    config.validate()?;
    let n = lattice.nodes.len();
    let mut disp = vec![Vec2::ZERO; n];
    let mut vel = vec![Vec2::ZERO; n];

    let k_max = lattice
        .bonds
        .iter()
        .map(|b| b.stiffness / b.rest_length)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let dt = 0.4 / k_max.sqrt();
    let damping = 0.92;

    let mut curve: Vec<(f64, f64)> = vec![(0.0, 0.0)];
    let mut fracture_path: Vec<Point2> = Vec::new();
    let mut peak_stress = 0.0f64;
    let mut ruptured = false;

    let steps = (config.max_strain / config.strain_step).ceil() as usize;
    for step in 1..=steps {
        let strain = step as f64 * config.strain_step;
        let grip_u = strain * lattice.gauge_length;

        // Prescribe grip displacements (x only — the grips do not restrain
        // lateral contraction, avoiding artificial corner concentrations).
        for (i, node) in lattice.nodes.iter().enumerate() {
            match node.grip {
                Grip::Fixed => disp[i].x = 0.0,
                Grip::Moving => disp[i].x = grip_u,
                Grip::Free => {}
            }
        }

        // Relax, break, repeat until no bond fails in this step.
        loop {
            relax(lattice, &mut disp, &mut vel, dt, damping);
            let broke = break_overstrained(lattice, &disp, &mut fracture_path);
            if !broke {
                break;
            }
        }

        let stress = grip_stress(lattice, &disp);
        curve.push((strain, stress));
        peak_stress = peak_stress.max(stress);
        if peak_stress > 0.0 && stress < 0.05 * peak_stress && strain > config.strain_step * 3.0 {
            ruptured = true;
            break;
        }
    }

    Ok(TensileResult::from_curve(curve, fracture_path, ruptured))
}

/// Damped dynamic relaxation to (approximate) equilibrium.
fn relax(lattice: &Lattice, disp: &mut [Vec2], vel: &mut [Vec2], dt: f64, damping: f64) {
    const MAX_ITERS: usize = 2500;
    const TOL: f64 = 3e-4; // N residual per node

    let n = disp.len();
    let mut force = vec![Vec2::ZERO; n];
    for _ in 0..MAX_ITERS {
        for f in force.iter_mut() {
            *f = Vec2::ZERO;
        }
        accumulate_forces(lattice, disp, &mut force);

        let mut residual = 0.0f64;
        for (i, node) in lattice.nodes.iter().enumerate() {
            match node.grip {
                Grip::Free => {
                    residual = residual.max(force[i].length());
                    vel[i] = (vel[i] + force[i] * dt) * damping;
                    disp[i] += vel[i] * dt;
                }
                // Grip nodes: x prescribed, y free (no lateral clamp).
                Grip::Fixed | Grip::Moving => {
                    residual = residual.max(force[i].y.abs());
                    vel[i].x = 0.0;
                    vel[i].y = (vel[i].y + force[i].y * dt) * damping;
                    disp[i].y += vel[i].y * dt;
                }
            }
        }
        if residual < TOL {
            break;
        }
    }
}

/// Accumulates bond forces on every node.
fn accumulate_forces(lattice: &Lattice, disp: &[Vec2], force: &mut [Vec2]) {
    for bond in &lattice.bonds {
        if bond.state == BondState::Broken {
            continue;
        }
        let [a, b] = bond.nodes;
        let (a, b) = (a as usize, b as usize);
        let pa = lattice.nodes[a].pos + disp[a];
        let pb = lattice.nodes[b].pos + disp[b];
        let d = pb - pa;
        let len = d.length();
        if len < 1e-12 {
            continue;
        }
        let unit = d / len;
        let f = bond_force(bond, len);
        force[a] += unit * f;
        force[b] -= unit * f;
    }
}

/// Axial bond force: linear elastic up to yield, then linear hardening
/// (tangent stiffness = `hardening × stiffness`); linear in compression.
fn bond_force(bond: &Bond, current_length: f64) -> f64 {
    let strain = (current_length - bond.rest_length) / bond.rest_length;
    let f_elastic = bond.stiffness * strain * bond.rest_length;
    if f_elastic > bond.yield_force {
        let strain_y = bond.yield_force / (bond.stiffness * bond.rest_length);
        bond.yield_force + bond.hardening * bond.stiffness * (strain - strain_y) * bond.rest_length
    } else {
        f_elastic
    }
}

/// Breaks every intact bond whose strain exceeds its limit. Returns whether
/// anything broke and appends the break locations to the crack path.
fn break_overstrained(
    lattice: &mut Lattice,
    disp: &[Vec2],
    fracture_path: &mut Vec<Point2>,
) -> bool {
    let mut broke = false;
    let nodes = &lattice.nodes;
    for bond in &mut lattice.bonds {
        if bond.state == BondState::Broken {
            continue;
        }
        let [a, b] = bond.nodes;
        let (a, b) = (a as usize, b as usize);
        let pa = nodes[a].pos + disp[a];
        let pb = nodes[b].pos + disp[b];
        let strain = (pa.distance(pb) - bond.rest_length) / bond.rest_length;
        if strain > bond.breaking_strain {
            bond.state = BondState::Broken;
            broke = true;
            fracture_path.push((nodes[a].pos + nodes[b].pos) * 0.5);
        }
    }
    broke
}

/// Engineering stress from the moving-grip reaction (MPa).
fn grip_stress(lattice: &Lattice, disp: &[Vec2]) -> f64 {
    let mut fx = 0.0;
    for bond in &lattice.bonds {
        if bond.state == BondState::Broken {
            continue;
        }
        let [a, b] = bond.nodes;
        let (a, b) = (a as usize, b as usize);
        let (ga, gb) = (lattice.nodes[a].grip, lattice.nodes[b].grip);
        if ga != Grip::Moving && gb != Grip::Moving {
            continue;
        }
        if ga == Grip::Moving && gb == Grip::Moving {
            continue;
        }
        let pa = lattice.nodes[a].pos + disp[a];
        let pb = lattice.nodes[b].pos + disp[b];
        let d = pb - pa;
        let len = d.length();
        if len < 1e-12 {
            continue;
        }
        let f = bond_force(bond, len);
        // The bond pulls the moving node toward the other end; the machine
        // supplies the opposite reaction, which is what the load cell
        // reads. With `d` pointing a→b, the bond force on b is −(d/len)·f,
        // so the machine reaction when b is the moving node is +(d/len)·f.
        let machine = if gb == Grip::Moving { (d / len) * f } else { -(d / len) * f };
        fx += machine.x;
    }
    (fx / lattice.section_area).max(0.0)
}
