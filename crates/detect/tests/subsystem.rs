//! End-to-end coverage of the detection subsystem against real parts:
//! stage-shaped caching, the sanitizer's fingerprint proof, and the ROC
//! sweep's coverage + fusion guarantees.

use am_detect::{
    detect_counterfeit, run_roc_sweep, sanitize_toolpath, DetectConfig, RocConfig,
    SanitizeConfig,
};
use am_mesh::Resolution;
use am_slicer::Orientation;
use obfuscade::{Deadline, FaultPlan, ProcessPlan, SplineSplitScheme, StageCache};

fn part() -> am_cad::Part {
    SplineSplitScheme::default().protected_part().expect("protected part resolves")
}

fn plan() -> ProcessPlan {
    ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy)
}

fn toolpath_drop() -> (&'static str, FaultPlan) {
    FaultPlan::catalog()
        .into_iter()
        .find(|(name, _)| *name == "toolpath-drop")
        .expect("catalog names toolpath-drop")
}

#[test]
fn detection_reports_cache_like_pipeline_stages() {
    let part = part();
    let plan = plan();
    let (_, faults) = toolpath_drop();
    let cache = StageCache::with_budget(256 << 20);
    let config = DetectConfig { null_replicates: 8, ..DetectConfig::default() };
    let first = detect_counterfeit(
        &part,
        &plan,
        &faults,
        "toolpath.drop=0.1",
        &config,
        &cache,
        Deadline::none(),
    )
    .expect("detect runs");
    let hits_before = cache.stats().hits;
    let second = detect_counterfeit(
        &part,
        &plan,
        &faults,
        "toolpath.drop=0.1",
        &config,
        &cache,
        Deadline::none(),
    )
    .expect("detect replays");
    assert_eq!(first, second);
    assert!(
        cache.stats().hits > hits_before,
        "second detection must be served from the stage cache"
    );
    assert!(first.fused_flagged, "a 10% road drop must be caught: {first:?}");
    assert!(first.blocked_by.is_none());
    assert!(first.suspect_frames > 0 && first.golden_frames > 0);
}

#[test]
fn blocked_faults_are_reported_not_errored() {
    let part = part();
    let plan = plan();
    let faults = FaultPlan::catalog()
        .into_iter()
        .find(|(name, _)| *name == "slicer-zero-layer")
        .expect("catalog names slicer-zero-layer")
        .1;
    let cache = StageCache::with_budget(256 << 20);
    let config = DetectConfig { null_replicates: 4, ..DetectConfig::default() };
    let report = detect_counterfeit(
        &part,
        &plan,
        &faults,
        "slicer.zero_layer",
        &config,
        &cache,
        Deadline::none(),
    )
    .expect("blocked suspects are reports, not errors");
    assert_eq!(report.blocked_by.as_deref(), Some("slice"));
    assert!(report.audio_flagged && report.power_flagged && report.fused_flagged);
    assert_eq!(report.suspect_frames, 0);
}

#[test]
fn sanitizer_strips_the_payload_and_preserves_the_print_fingerprint() {
    let part = part();
    let plan = plan();
    let cache = StageCache::with_budget(256 << 20);
    let config = SanitizeConfig { payload_seed: 99, ..SanitizeConfig::default() };
    let report =
        sanitize_toolpath(&part, &plan, &FaultPlan::none(), &config, &cache, Deadline::none())
            .expect("sanitize runs");
    assert!(
        report.suspicious_before > 0.8,
        "embedded payload must light up the scanner: {report:?}"
    );
    assert_eq!(report.suspicious_after, 0.0, "{report:?}");
    assert!(report.fingerprint_preserved, "{report:?}");
    assert_eq!(report.original_fingerprint, report.sanitized_fingerprint);
    assert!(report.residual_mm <= report.quantum_mm);
    assert!(report.roads > 0);

    // Stage-shaped caching, same as detection.
    let hits_before = cache.stats().hits;
    let replay =
        sanitize_toolpath(&part, &plan, &FaultPlan::none(), &config, &cache, Deadline::none())
            .expect("sanitize replays");
    assert_eq!(replay, report);
    assert!(cache.stats().hits > hits_before);
}

#[test]
fn clean_toolpaths_scan_below_the_payload_signature() {
    let part = part();
    let plan = plan();
    let cache = StageCache::with_budget(256 << 20);
    let clean = sanitize_toolpath(
        &part,
        &plan,
        &FaultPlan::none(),
        &SanitizeConfig::default(),
        &cache,
        Deadline::none(),
    )
    .expect("clean sanitize runs");
    assert!(
        clean.suspicious_before < 0.5,
        "clean geometry must not read as a payload: {clean:?}"
    );
    assert!(clean.fingerprint_preserved, "{clean:?}");
}

#[test]
fn roc_sweep_covers_the_whole_catalog_and_fusion_dominates() {
    let part = part();
    let plan = plan();
    let cache = StageCache::with_budget(256 << 20);
    let table = run_roc_sweep(&part, &plan, &RocConfig::smoke(), &cache, Deadline::none())
        .expect("roc sweep runs");
    assert_eq!(table.faults_covered, 15);
    assert_eq!(table.cells.len(), 15);
    for cell in &table.cells {
        if cell.blocked {
            assert_eq!((cell.audio_catch, cell.power_catch, cell.fused_catch), (1.0, 1.0, 1.0));
        }
    }
    for setup in &table.setups {
        assert!(
            setup.fused_catch + 1e-9 >= setup.audio_catch.max(setup.power_catch),
            "fusion must dominate each single channel at equal nominal FPR: {setup:?}"
        );
        assert!(setup.fused_fpr <= 0.25, "holdout FPR implausibly high: {setup:?}");
        assert!(setup.fused_catch > 0.5, "catalog-wide catch too weak: {setup:?}");
    }
}
