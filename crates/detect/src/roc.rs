//! The ROC benchmark sweep: detector × fault catalog × capture setup.
//!
//! For every capture setup (quality preset × jamming amplitude) the
//! sweep calibrates one detector bank against the golden master, then
//! measures, per fault-catalog entry, the catch rate of each detector
//! over independent capture replicates — and, per setup, the *measured*
//! false-positive rate over held-out genuine recaptures (seeds disjoint
//! from the calibration set). This is the experiment table behind the
//! `detect` section of the bench schema and EXPERIMENTS.md.

use am_cad::Part;
use obfuscade::json::Json;
use obfuscade::{plan_toolpath, Deadline, FaultPlan, ProcessPlan, StageCache};

use crate::detector::{mix, Calibration};
use crate::job::{capture_quality, DetectConfig, DetectError};

/// Salt for per-replicate suspect capture seeds.
const REPLICATE_SALT: u64 = 0x5245_504c;
/// Salt for held-out null capture seeds (disjoint from calibration's).
const HOLDOUT_SALT: u64 = 0x484f_4c44;

/// Shape of one ROC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RocConfig {
    /// Capture-quality preset names to sweep.
    pub qualities: Vec<String>,
    /// Jamming amplitudes to sweep (0 = countermeasure off).
    pub jam_amplitudes: Vec<f64>,
    /// Suspect capture replicates per fault entry.
    pub replicates: usize,
    /// Held-out genuine recaptures per setup for the measured FPR.
    pub holdout_nulls: usize,
    /// Base detect configuration (seed, nominal FPR, calibration size).
    pub detect: DetectConfig,
}

impl Default for RocConfig {
    fn default() -> Self {
        RocConfig {
            qualities: vec!["lab".into(), "smartphone".into(), "room".into()],
            jam_amplitudes: vec![0.0, 2.5],
            replicates: 5,
            holdout_nulls: 40,
            detect: DetectConfig::default(),
        }
    }
}

impl RocConfig {
    /// A cheap sweep for smoke tests: one quality, no jamming axis, few
    /// replicates.
    pub fn smoke() -> Self {
        RocConfig {
            qualities: vec!["smartphone".into()],
            jam_amplitudes: vec![0.0],
            replicates: 2,
            holdout_nulls: 10,
            detect: DetectConfig { null_replicates: 12, ..DetectConfig::default() },
        }
    }
}

/// Catch rates of one (fault, quality, jam) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCell {
    /// Fault-catalog entry name.
    pub fault: String,
    /// Capture-quality preset name.
    pub quality: String,
    /// Jamming amplitude.
    pub jam_amplitude: f64,
    /// Did the fault trip a process guard before tool-path planning?
    pub blocked: bool,
    /// Fraction of replicates the audio detector flagged.
    pub audio_catch: f64,
    /// Fraction of replicates the power detector flagged.
    pub power_catch: f64,
    /// Fraction of replicates the fused detector flagged.
    pub fused_catch: f64,
}

/// Per-setup aggregate: measured FPR and mean catch rate per detector.
#[derive(Debug, Clone, PartialEq)]
pub struct RocSetup {
    /// Capture-quality preset name.
    pub quality: String,
    /// Jamming amplitude.
    pub jam_amplitude: f64,
    /// Measured audio FPR over held-out genuine recaptures.
    pub audio_fpr: f64,
    /// Measured power FPR.
    pub power_fpr: f64,
    /// Measured fused FPR.
    pub fused_fpr: f64,
    /// Mean audio catch rate over the fault catalog.
    pub audio_catch: f64,
    /// Mean power catch rate.
    pub power_catch: f64,
    /// Mean fused catch rate.
    pub fused_catch: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct RocTable {
    /// One cell per fault × quality × jam.
    pub cells: Vec<RocCell>,
    /// One aggregate row per quality × jam.
    pub setups: Vec<RocSetup>,
    /// Fault-catalog entries covered (a coverage pin: must be 15).
    pub faults_covered: usize,
}

impl RocTable {
    /// Canonical JSON rendering for the bench report and the CLI.
    pub fn to_json(&self) -> Json {
        let cell = |c: &RocCell| {
            Json::Object(vec![
                ("fault".into(), Json::String(c.fault.clone())),
                ("quality".into(), Json::String(c.quality.clone())),
                ("jam_amplitude".into(), Json::Number(c.jam_amplitude)),
                ("blocked".into(), Json::Bool(c.blocked)),
                ("audio_catch".into(), Json::Number(c.audio_catch)),
                ("power_catch".into(), Json::Number(c.power_catch)),
                ("fused_catch".into(), Json::Number(c.fused_catch)),
            ])
        };
        let setup = |s: &RocSetup| {
            Json::Object(vec![
                ("quality".into(), Json::String(s.quality.clone())),
                ("jam_amplitude".into(), Json::Number(s.jam_amplitude)),
                ("audio_fpr".into(), Json::Number(s.audio_fpr)),
                ("power_fpr".into(), Json::Number(s.power_fpr)),
                ("fused_fpr".into(), Json::Number(s.fused_fpr)),
                ("audio_catch".into(), Json::Number(s.audio_catch)),
                ("power_catch".into(), Json::Number(s.power_catch)),
                ("fused_catch".into(), Json::Number(s.fused_catch)),
            ])
        };
        Json::Object(vec![
            ("faults_covered".into(), Json::u64(self.faults_covered as u64)),
            ("cells".into(), Json::Array(self.cells.iter().map(cell).collect())),
            ("setups".into(), Json::Array(self.setups.iter().map(setup).collect())),
        ])
    }
}

/// Runs the sweep over the complete single-fault catalog.
///
/// Suspect tool paths are planned once through the shared `cache` and
/// reused across every capture setup; the sweep's cost is dominated by
/// trace synthesis, which is linear in road count.
///
/// # Errors
///
/// [`DetectError::Config`] for an unknown quality name;
/// [`DetectError::Pipeline`] when the golden chain fails or the
/// deadline expires.
pub fn run_roc_sweep(
    part: &Part,
    plan: &ProcessPlan,
    config: &RocConfig,
    cache: &StageCache,
    deadline: Deadline,
) -> Result<RocTable, DetectError> {
    let golden = plan_toolpath(part, plan, &FaultPlan::none(), cache, deadline)
        .map_err(DetectError::Pipeline)?;
    let catalog = FaultPlan::catalog();
    // Plan every suspect once, up front (cache-warm for all setups).
    let mut suspects = Vec::with_capacity(catalog.len());
    for (name, faults) in &catalog {
        match plan_toolpath(part, plan, faults, cache, deadline) {
            Ok(planned) => suspects.push((*name, Some(planned.toolpath))),
            Err(obfuscade::PipelineError::DeadlineExceeded { stage }) => {
                return Err(DetectError::Pipeline(
                    obfuscade::PipelineError::DeadlineExceeded { stage },
                ))
            }
            Err(_blocked) => suspects.push((*name, None)),
        }
    }

    let mut cells = Vec::new();
    let mut setups = Vec::new();
    for quality_name in &config.qualities {
        let quality = capture_quality(quality_name).map_err(DetectError::Config)?;
        for &jam in &config.jam_amplitudes {
            let cal = Calibration::calibrate(
                &golden.toolpath,
                plan.printer.feed_mm_per_s,
                quality,
                jam,
                config.detect.trace_seed,
                config.detect.null_replicates,
                config.detect.fpr_target,
            );
            // Measured FPR: held-out genuine recaptures, seeds disjoint
            // from both calibration and suspect replicates.
            let (mut a_fp, mut p_fp, mut f_fp) = (0usize, 0usize, 0usize);
            for i in 0..config.holdout_nulls {
                let seed = mix(config.detect.trace_seed, HOLDOUT_SALT.wrapping_add(i as u64));
                let s = cal.score(&golden.toolpath, seed);
                a_fp += usize::from(s.audio_flagged);
                p_fp += usize::from(s.power_flagged);
                f_fp += usize::from(s.fused_flagged);
            }
            let nulls = config.holdout_nulls.max(1) as f64;

            let (mut a_sum, mut p_sum, mut f_sum) = (0.0, 0.0, 0.0);
            for (fault_idx, (name, toolpath)) in suspects.iter().enumerate() {
                let (audio_catch, power_catch, fused_catch) = match toolpath {
                    // Blocked upstream: trivially caught on every
                    // channel — a part program the guards reject never
                    // reaches the floor.
                    None => (1.0, 1.0, 1.0),
                    Some(toolpath) => {
                        let (mut a, mut p, mut f) = (0usize, 0usize, 0usize);
                        for r in 0..config.replicates {
                            let seed = mix(
                                config.detect.trace_seed,
                                REPLICATE_SALT
                                    .wrapping_add((fault_idx * 1024 + r) as u64),
                            );
                            let s = cal.score(toolpath, seed);
                            a += usize::from(s.audio_flagged);
                            p += usize::from(s.power_flagged);
                            f += usize::from(s.fused_flagged);
                        }
                        let n = config.replicates.max(1) as f64;
                        (a as f64 / n, p as f64 / n, f as f64 / n)
                    }
                };
                a_sum += audio_catch;
                p_sum += power_catch;
                f_sum += fused_catch;
                cells.push(RocCell {
                    fault: (*name).to_string(),
                    quality: quality_name.clone(),
                    jam_amplitude: jam,
                    blocked: toolpath.is_none(),
                    audio_catch,
                    power_catch,
                    fused_catch,
                });
            }
            let faults = suspects.len().max(1) as f64;
            setups.push(RocSetup {
                quality: quality_name.clone(),
                jam_amplitude: jam,
                audio_fpr: a_fp as f64 / nulls,
                power_fpr: p_fp as f64 / nulls,
                fused_fpr: f_fp as f64 / nulls,
                audio_catch: a_sum / faults,
                power_catch: p_sum / faults,
                fused_catch: f_sum / faults,
            });
        }
    }
    Ok(RocTable { cells, setups, faults_covered: catalog.len() })
}
