//! The two batch-job entry points the daemon serves: counterfeit
//! detection and stego sanitization.
//!
//! Both are **stage-shaped**: they key their result off the tool-path
//! stage key the pipeline itself computed (via
//! [`obfuscade::plan_toolpath`]), look the result up in the shared
//! [`StageCache`] before doing any work, and insert it afterwards — so
//! detection reports cache, spill, and route across a fleet exactly like
//! mesh/slice/print artifacts do.

use std::sync::Arc;

use am_cad::Part;
use am_sidechannel::CaptureQuality;
use obfuscade::{
    plan_toolpath, print_toolpath, Deadline, DetectionReport, FaultPlan, PipelineError,
    ProcessPlan, SanitizeReport, StageCache, StageHasher, StageKey,
};

use crate::detector::Calibration;
use crate::stego::{
    embed_payload, mechanical_quantize, sanitize_coords, scan_channel, BASE_QUANTUM_MM,
};

/// How a detection job captures and judges its traces.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectConfig {
    /// Capture-quality preset name: `lab`, `smartphone`, or `room`.
    pub quality: String,
    /// Relative amplitude of the defender's noise emitter over the
    /// acoustic capture (0 = off).
    pub jam_amplitude: f64,
    /// Seed of every capture-noise draw the job makes.
    pub trace_seed: u64,
    /// Nominal false-positive rate the thresholds are calibrated to.
    pub fpr_target: f64,
    /// Genuine-recapture replicates used to calibrate the thresholds.
    pub null_replicates: usize,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            quality: "smartphone".to_string(),
            jam_amplitude: 0.0,
            trace_seed: 1,
            fpr_target: 0.05,
            null_replicates: 24,
        }
    }
}

/// Resolves a capture-quality preset name.
///
/// # Errors
///
/// A message listing the valid names.
pub fn capture_quality(name: &str) -> Result<CaptureQuality, String> {
    match name {
        "lab" => Ok(CaptureQuality::lab_grade()),
        "smartphone" => Ok(CaptureQuality::smartphone()),
        "room" => Ok(CaptureQuality::across_the_room()),
        other => Err(format!(
            "unknown capture quality `{other}` (expected `lab`, `smartphone`, or `room`)"
        )),
    }
}

/// The content address of one detection result: chains the golden tool
/// path's stage key with the canonical fault-plan rendering and every
/// capture parameter. Pure — nothing is traced to compute it.
pub fn detection_key(golden: StageKey, faults: &FaultPlan, config: &DetectConfig) -> StageKey {
    let mut h = StageHasher::new("obfuscade/detect/v1");
    h.write_key(golden);
    h.write_str(&faults.to_string());
    h.write_u64(faults.seed);
    h.write_str(&config.quality);
    h.write_f64(config.jam_amplitude);
    h.write_u64(config.trace_seed);
    h.write_f64(config.fpr_target);
    h.write_u64(config.null_replicates as u64);
    h.finish()
}

/// Runs one counterfeit-detection job: plans the golden and suspect tool
/// paths through the shared cache, synthesizes acoustic + power captures,
/// and scores the suspect against the calibrated detector bank.
///
/// `fault_spec` is the job's canonical fault-spec string, echoed into
/// the report for the caller.
///
/// Suspects whose injected faults trip a typed process guard before the
/// tool-path stage are reported as blocked (see
/// [`DetectionReport::blocked_by`]) with saturated scores, not as
/// errors — a part program that cannot even be planned is the easiest
/// counterfeit to catch.
///
/// # Errors
///
/// [`DetectError::Config`] for an unknown [`DetectConfig::quality`]
/// name; [`DetectError::Pipeline`] for any failure of the *golden*
/// chain (the genuine design must plan cleanly) and for
/// [`PipelineError::DeadlineExceeded`] from either chain.
pub fn detect_counterfeit(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    fault_spec: &str,
    config: &DetectConfig,
    cache: &StageCache,
    deadline: Deadline,
) -> Result<DetectionReport, DetectError> {
    let quality = capture_quality(&config.quality).map_err(DetectError::Config)?;
    let golden = plan_toolpath(part, plan, &FaultPlan::none(), cache, deadline)
        .map_err(DetectError::Pipeline)?;
    let key = detection_key(golden.key, faults, config);
    if let Some(report) = cache.get_detection(key) {
        return Ok((*report).clone());
    }
    let suspect = match plan_toolpath(part, plan, faults, cache, deadline) {
        Ok(suspect) => Ok(suspect),
        Err(PipelineError::DeadlineExceeded { stage }) => {
            return Err(DetectError::Pipeline(PipelineError::DeadlineExceeded { stage }))
        }
        Err(blocked) => Err(blocked.stage().name().to_string()),
    };
    let cal = Calibration::calibrate(
        &golden.toolpath,
        plan.printer.feed_mm_per_s,
        quality,
        config.jam_amplitude,
        config.trace_seed,
        config.null_replicates,
        config.fpr_target,
    );
    let (scores, blocked_by) = match &suspect {
        Ok(suspect) => (cal.score(&suspect.toolpath, config.trace_seed), None),
        Err(stage) => (cal.score_blocked(), Some(stage.clone())),
    };
    let report = DetectionReport {
        fault_spec: fault_spec.to_string(),
        quality: config.quality.clone(),
        jam_amplitude: config.jam_amplitude,
        trace_seed: config.trace_seed,
        blocked_by,
        audio_score: scores.audio,
        power_score: scores.power,
        fused_score: scores.fused,
        audio_threshold: cal.audio_threshold,
        power_threshold: cal.power_threshold,
        fused_threshold: cal.fused_threshold,
        audio_flagged: scores.audio_flagged,
        power_flagged: scores.power_flagged,
        fused_flagged: scores.fused_flagged,
        suspect_frames: scores.suspect_frames,
        golden_frames: cal.golden_frames,
    };
    cache.insert_detection(key, Arc::new(report.clone()));
    Ok(report)
}

/// What a sanitization job should scan for and strip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanitizeConfig {
    /// Seed of a payload to embed before sanitizing (0 = none: the job
    /// scans and strips its own clean tool path — the round-trip the ci
    /// stage byte-verifies).
    pub payload_seed: u64,
    /// Width of the scanned/stripped channel (bits per coordinate).
    pub payload_bits: u32,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig { payload_seed: 0, payload_bits: crate::stego::DEFAULT_PAYLOAD_BITS }
    }
}

/// The content address of one sanitization result.
pub fn sanitize_key(toolpath: StageKey, config: &SanitizeConfig) -> StageKey {
    let mut h = StageHasher::new("obfuscade/sanitize/v1");
    h.write_key(toolpath);
    h.write_u64(config.payload_seed);
    h.write_u64(u64::from(config.payload_bits));
    h.finish()
}

/// Grid quanta the sanitizer tries, coarsest first. Each halving halves
/// the worst coordinate displacement; by the last rung the strip moves
/// coordinates by fractions of a nanometre, far inside one mechanical
/// step, so the fingerprint ladder converges for any real tool path.
const QUANTUM_LADDER: usize = 16;

/// Runs one stego-sanitization job: plans the tool path through the
/// shared cache, optionally embeds a payload (the attack being
/// exercised), scans the channel, strips it, and proves the strip
/// print-preserving by stage-key identity over the voxel-grid digests of
/// the original and sanitized prints.
///
/// # Errors
///
/// Any [`PipelineError`] of the planning chain (a sanitization job for a
/// fault plan that cannot produce a part program is an error — there is
/// nothing to sanitize), or a print failure from the fingerprint oracle.
pub fn sanitize_toolpath(
    part: &Part,
    plan: &ProcessPlan,
    faults: &FaultPlan,
    config: &SanitizeConfig,
    cache: &StageCache,
    deadline: Deadline,
) -> Result<SanitizeReport, DetectError> {
    let planned =
        plan_toolpath(part, plan, faults, cache, deadline).map_err(DetectError::Pipeline)?;
    let key = sanitize_key(planned.key, config);
    if let Some(report) = cache.get_sanitize(key) {
        return Ok((*report).clone());
    }
    let bits = config.payload_bits;
    let input = if config.payload_seed != 0 {
        embed_payload(&planned.toolpath, config.payload_seed, bits, BASE_QUANTUM_MM)
    } else {
        planned.toolpath.clone()
    };
    let suspicious_before = scan_channel(&input, bits, BASE_QUANTUM_MM);
    // The fingerprint oracle prints the *mechanically quantized* paths:
    // the stepper grid (1/STEPS_PER_MM) is the machine's true positional
    // resolution, so digest equality over these prints is exactly the
    // claim "the strip changed nothing the printer can execute".
    let original_print = print_toolpath(&mechanical_quantize(&input), plan, planned.to_build)
        .map_err(DetectError::Pipeline)?;
    let original_fp = fingerprint(&original_print);

    let mut quantum = BASE_QUANTUM_MM;
    let mut outcome = None;
    for rung in 0..QUANTUM_LADDER {
        let (stripped, residual) = sanitize_coords(&input, bits, quantum);
        let stripped_print =
            print_toolpath(&mechanical_quantize(&stripped), plan, planned.to_build)
                .map_err(DetectError::Pipeline)?;
        let fp = fingerprint(&stripped_print);
        let preserved = fp == original_fp;
        if preserved || rung == QUANTUM_LADDER - 1 {
            outcome = Some((stripped, residual, fp, preserved, quantum));
            break;
        }
        quantum /= 2.0;
    }
    let (stripped, residual_mm, sanitized_fp, fingerprint_preserved, quantum_mm) =
        outcome.expect("the quantum ladder always yields an outcome");
    let report = SanitizeReport {
        payload_seed: config.payload_seed,
        payload_bits: u64::from(bits),
        roads: planned.toolpath.roads.len() as u64,
        suspicious_before,
        suspicious_after: scan_channel(&stripped, bits, quantum_mm),
        quantum_mm,
        residual_mm,
        fingerprint_preserved,
        original_fingerprint: original_fp.to_string(),
        sanitized_fingerprint: sanitized_fp.to_string(),
    };
    cache.insert_sanitize(key, Arc::new(report.clone()));
    Ok(report)
}

/// The print-fingerprint stage key: the deposited voxel grid's digest
/// under its own hash domain. Two prints share this key exactly when
/// their voxel grids are byte-identical.
pub fn fingerprint(printed: &am_printer::PrintedPart) -> StageKey {
    let digest = printed.grid_digest();
    let mut h = StageHasher::new("obfuscade/printfp/v1");
    h.write_u64((digest >> 64) as u64);
    h.write_u64(digest as u64);
    h.finish()
}

/// Errors of the detection subsystem's job entry points.
#[derive(Debug, Clone)]
pub enum DetectError {
    /// The manufacturing chain itself failed (same taxonomy as a `run`
    /// job — deadline expiry included).
    Pipeline(PipelineError),
    /// The detection configuration was rejected (unknown quality
    /// preset).
    Config(String),
}

impl std::fmt::Display for DetectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectError::Pipeline(e) => write!(f, "{e}"),
            DetectError::Config(msg) => write!(f, "invalid detect config: {msg}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectError::Pipeline(e) => Some(e),
            DetectError::Config(_) => None,
        }
    }
}

impl From<PipelineError> for DetectError {
    fn from(e: PipelineError) -> Self {
        DetectError::Pipeline(e)
    }
}
