//! Simulated mains-side power trace of an FDM printer.
//!
//! The power side channel (Moore et al.; see ROADMAP "Defensive workload
//! suite") is the defender-friendly dual of the acoustic channel: a
//! current clamp on the printer's supply sees the stepper drivers, the
//! extruder motor, and the acceleration transients of every commanded
//! move — without needing a microphone near the machine. This module
//! synthesizes that trace from a planned tool path with the same
//! move-per-frame structure as [`am_sidechannel::record_emissions`], so
//! the two channels of one print line up frame for frame.

use am_sidechannel::CaptureQuality;
use am_slicer::ToolPath;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Baseline electronics + heater duty draw while the machine is up (W).
pub const IDLE_WATTS: f64 = 55.0;

/// Per-axis stepper draw per mm/s of commanded axis speed (W·s/mm).
pub const AXIS_WATTS_PER_MM_S: f64 = 0.35;

/// Extruder motor draw while depositing (W).
pub const EXTRUDE_WATTS: f64 = 12.0;

/// Energy of a velocity transient per mm/s of velocity change (J·s/mm) —
/// the acceleration spikes that make road boundaries visible on the
/// clamp.
pub const ACCEL_JOULES_PER_MM_S: f64 = 0.9;

/// One power-trace sample: the average draw over a single head move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sample duration (s) — the move duration.
    pub duration_s: f64,
    /// Mean supply draw over the move (W), noisy.
    pub watts: f64,
    /// Whether the extruder was engaged (deposition vs. travel move).
    pub extruding: bool,
}

/// Records the power trace of a tool path at the given feed rate.
///
/// Mirrors the frame structure of [`am_sidechannel::record_emissions`]:
/// one sample per deposition road plus one per implied travel move
/// between roads. Sensor noise reuses [`CaptureQuality::cycle_noise`] as
/// a 1σ-equivalent scale (a lab clamp is quiet, an across-the-room
/// inductive pickup is not), drawn deterministically from `seed`.
///
/// # Panics
///
/// Panics if `feed_mm_per_s` is not positive — same contract as the
/// acoustic recorder.
pub fn record_power(
    toolpath: &ToolPath,
    feed_mm_per_s: f64,
    quality: CaptureQuality,
    seed: u64,
) -> Vec<PowerSample> {
    assert!(feed_mm_per_s > 0.0, "feed rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x504f_5752);
    let noise_w = 0.25 * quality.cycle_noise;
    let mut samples = Vec::with_capacity(toolpath.roads.len() * 2);
    let mut head: Option<am_geom::Point2> = None;
    let mut prev_v = (0.0f64, 0.0f64);
    let sample = |from: am_geom::Point2,
                      to: am_geom::Point2,
                      extruding: bool,
                      prev_v: &mut (f64, f64),
                      rng: &mut StdRng| {
        let d = to - from;
        let len = d.length().max(1e-9);
        let duration = len / feed_mm_per_s;
        let (ux, uy) = (d.x / len, d.y / len);
        let v = (feed_mm_per_s * ux, feed_mm_per_s * uy);
        let dv = ((v.0 - prev_v.0).powi(2) + (v.1 - prev_v.1).powi(2)).sqrt();
        *prev_v = v;
        let mut watts = IDLE_WATTS
            + AXIS_WATTS_PER_MM_S * feed_mm_per_s * (ux.abs() + uy.abs())
            + if extruding { EXTRUDE_WATTS } else { 0.0 }
            + ACCEL_JOULES_PER_MM_S * dv / duration;
        watts += noise_w * rng.gen_range(-1.0..1.0f64);
        PowerSample { duration_s: duration, watts: watts.max(0.0), extruding }
    };
    for road in &toolpath.roads {
        if let Some(p) = head {
            if p.distance(road.from) > 1e-9 {
                samples.push(sample(p, road.from, false, &mut prev_v, &mut rng));
            }
        }
        samples.push(sample(road.from, road.to, true, &mut prev_v, &mut rng));
        head = Some(road.to);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::Point2;
    use am_slicer::{Road, RoadKind, ToolMaterial};

    fn two_roads() -> ToolPath {
        let road = |x0: f64, y0: f64, x1: f64, y1: f64| Road {
            from: Point2::new(x0, y0),
            to: Point2::new(x1, y1),
            z: 0.2,
            material: ToolMaterial::Model,
            kind: RoadKind::Infill,
            body: None,
        };
        ToolPath {
            roads: vec![road(0.0, 0.0, 30.0, 0.0), road(30.0, 2.0, 0.0, 2.0)],
            layer_height: 0.2,
            road_width: 0.5,
        }
    }

    #[test]
    fn trace_mirrors_the_acoustic_frame_structure() {
        let tp = two_roads();
        let power = record_power(&tp, 30.0, CaptureQuality::lab_grade(), 1);
        let audio =
            am_sidechannel::record_emissions(&tp, 30.0, CaptureQuality::lab_grade(), 1);
        assert_eq!(power.len(), audio.len());
        for (p, a) in power.iter().zip(&audio) {
            assert_eq!(p.extruding, a.extruding);
            assert!((p.duration_s - a.duration_s).abs() < 1e-12);
        }
    }

    #[test]
    fn extrusion_and_reversal_raise_the_draw() {
        let tp = two_roads();
        let trace = record_power(&tp, 30.0, CaptureQuality::lab_grade(), 1);
        // Sample order: road 1 (extrude), travel hop, road 2 (extrude,
        // full reversal — biggest transient).
        assert_eq!(trace.len(), 3);
        assert!(trace[0].watts > IDLE_WATTS + EXTRUDE_WATTS);
        assert!(!trace[1].extruding);
        assert!(
            trace[2].watts > trace[0].watts,
            "reversal transient missing: {} vs {}",
            trace[2].watts,
            trace[0].watts
        );
    }

    #[test]
    fn deterministic_per_seed_and_noise_scales_with_quality() {
        let tp = two_roads();
        let a = record_power(&tp, 30.0, CaptureQuality::smartphone(), 9);
        let b = record_power(&tp, 30.0, CaptureQuality::smartphone(), 9);
        assert_eq!(a, b);
        let lab = record_power(&tp, 30.0, CaptureQuality::lab_grade(), 9);
        let room = record_power(&tp, 30.0, CaptureQuality::across_the_room(), 9);
        let dev = |t: &[PowerSample], r: &[PowerSample]| -> f64 {
            t.iter().zip(r).map(|(x, y)| (x.watts - y.watts).abs()).sum()
        };
        let clean = record_power(&tp, 30.0, CaptureQuality { cycle_noise: 0.0, sign_error_rate: 0.0 }, 9);
        assert!(dev(&room, &clean) > dev(&lab, &clean));
    }
}
