//! **am-detect** — the defensive workload suite of the ObfusCADe
//! reproduction: side-channel counterfeit detection and stego-channel
//! sanitization, served as batch jobs through the daemon.
//!
//! ObfusCADe's planted sabotage features survive all the way to the
//! motor commands — which means they are *visible* in the machine's
//! physical emissions. This crate closes the loop from the defender's
//! side (ROADMAP: "Defensive workload suite"):
//!
//! * [`record_power`] synthesizes the mains-side power trace of a
//!   planned tool path, the dual of the acoustic trace
//!   [`am_sidechannel::record_emissions`] produces;
//! * [`Calibration`] builds a three-detector bank — audio signature,
//!   power envelope, and the fused max-of-normalized-scores — with
//!   thresholds calibrated to a nominal false-positive rate against
//!   genuine-recapture nulls;
//! * [`detect_counterfeit`] runs one detection job end to end, keyed
//!   and cached like a pipeline stage (the daemon's `detect` job kind);
//! * [`sanitize_toolpath`] scans a tool path's low-order coordinate
//!   stego channel, strips it, and proves the strip print-preserving by
//!   stage-key identity over the voxel-grid digests (the `sanitize`
//!   job kind);
//! * [`run_roc_sweep`] produces the detector × fault-catalog × capture
//!   setup ROC table, including the [`am_sidechannel::NoiseEmitter`]
//!   jamming axis — the defender's own countermeasure degrades their
//!   monitoring too, and the table quantifies that trade.
//!
//! # Examples
//!
//! ```
//! use am_detect::{detect_counterfeit, DetectConfig};
//! use am_mesh::Resolution;
//! use am_slicer::Orientation;
//! use obfuscade::{Deadline, FaultPlan, ProcessPlan, StageCache, SplineSplitScheme};
//!
//! let part = SplineSplitScheme::default().protected_part()?;
//! let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xy);
//! let faults = FaultPlan::catalog().remove(10).1; // toolpath-drop
//! let cache = StageCache::with_budget(64 << 20);
//! let report = detect_counterfeit(
//!     &part,
//!     &plan,
//!     &faults,
//!     "toolpath.drop=0.1",
//!     &DetectConfig::default(),
//!     &cache,
//!     Deadline::none(),
//! )?;
//! assert!(report.fused_flagged);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod job;
mod power;
mod roc;
mod stego;

pub use detector::{Calibration, ChannelScores, BLOCKED_SCORE};
pub use job::{
    capture_quality, detect_counterfeit, detection_key, fingerprint, sanitize_key,
    sanitize_toolpath, DetectConfig, DetectError, SanitizeConfig,
};
pub use power::{
    record_power, PowerSample, ACCEL_JOULES_PER_MM_S, AXIS_WATTS_PER_MM_S, EXTRUDE_WATTS,
    IDLE_WATTS,
};
pub use roc::{run_roc_sweep, RocCell, RocConfig, RocSetup, RocTable};
pub use stego::{
    embed_payload, mechanical_quantize, sanitize_coords, scan_channel, BASE_QUANTUM_MM,
    DEFAULT_PAYLOAD_BITS,
};
