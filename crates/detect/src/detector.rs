//! The three counterfeit detectors: audio signature, power envelope, and
//! the fused score, each calibrated against a null distribution of
//! genuine-print captures.
//!
//! Detection compares *distributions*, not frame sequences: an injected
//! fault changes the road set, so the suspect trace has a different frame
//! count than the golden master. Each trace is summarized by a feature
//! vector of order-statistic quantiles (via [`obfuscade::metrics::quantile`]
//! — the same rank rule the service latency histograms use) plus scalar
//! invariants, and a detector score is the normalized distance between
//! the suspect's features and the golden master's.
//!
//! Thresholds are not magic numbers: [`Calibration::calibrate`] replays
//! the *golden* tool path through the capture channel at independent
//! noise seeds (jamming included — the defender's own jammer degrades
//! their monitoring too) and takes the `1 - fpr_target` quantile of those
//! null scores. All three detectors therefore operate at the same nominal
//! false-positive rate, which is what makes their catch rates comparable.

use am_sidechannel::{record_emissions, CaptureQuality, EmissionFrame, NoiseEmitter};
use am_slicer::ToolPath;
use obfuscade::metrics::quantile;

use crate::power::{record_power, PowerSample};

/// Score reported for suspects that never reached tool-path planning (a
/// typed process guard rejected them upstream). Far above any calibrated
/// threshold: such jobs are trivially caught.
pub const BLOCKED_SCORE: f64 = 1.0e6;

/// Feature-vector quantile probes (deciles).
const PROBES: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Salt mixed into the golden master's capture seed.
const GOLDEN_SALT: u64 = 0x474f_4c44;
/// Salt mixed into calibration-replicate capture seeds.
const NULL_SALT: u64 = 0x4e55_4c4c;
/// Salt mixed into the jammer's seed so jam noise is independent of
/// capture noise.
const JAM_SALT: u64 = 0x4a41_4d21;

/// splitmix64 — the workspace's standard cheap seed mixer.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Quantile feature vector of one scalar distribution.
fn deciles(values: &mut [f64]) -> [f64; 9] {
    values.sort_by(f64::total_cmp);
    let mut q = [0.0; 9];
    for (slot, p) in q.iter_mut().zip(PROBES) {
        *slot = quantile(values, p);
    }
    q
}

/// Acoustic-trace features: stepper-tone quantiles per axis plus the
/// scalar shape invariants of the capture.
#[derive(Debug, Clone, PartialEq)]
struct AudioFeatures {
    frames: f64,
    total_s: f64,
    extrude_fraction: f64,
    fx_q: [f64; 9],
    fy_q: [f64; 9],
}

impl AudioFeatures {
    fn of(trace: &[EmissionFrame]) -> AudioFeatures {
        let mut fx: Vec<f64> = trace.iter().map(|f| f.fx_hz).collect();
        let mut fy: Vec<f64> = trace.iter().map(|f| f.fy_hz).collect();
        let total_s: f64 = trace.iter().map(|f| f.duration_s).sum();
        let extruding = trace.iter().filter(|f| f.extruding).count();
        AudioFeatures {
            frames: trace.len() as f64,
            total_s,
            extrude_fraction: extruding as f64 / (trace.len().max(1)) as f64,
            fx_q: deciles(&mut fx),
            fy_q: deciles(&mut fy),
        }
    }

    /// Normalized distance to another capture of (nominally) the same
    /// print. Quantile terms are relative to the golden tone scale so
    /// the score is unit-free.
    fn distance(&self, other: &AudioFeatures) -> f64 {
        let scale = self
            .fx_q
            .iter()
            .chain(&self.fy_q)
            .fold(0.0f64, |m, v| m.max(*v))
            .max(1.0);
        let mut d = 0.0;
        for i in 0..PROBES.len() {
            d += (self.fx_q[i] - other.fx_q[i]).abs() / scale;
            d += (self.fy_q[i] - other.fy_q[i]).abs() / scale;
        }
        d /= (2 * PROBES.len()) as f64;
        d += rel_gap(self.frames, other.frames);
        d += rel_gap(self.total_s, other.total_s);
        d += (self.extrude_fraction - other.extrude_fraction).abs();
        d
    }
}

/// Power-trace features: draw quantiles plus total energy and duration.
#[derive(Debug, Clone, PartialEq)]
struct PowerFeatures {
    samples: f64,
    total_s: f64,
    energy_j: f64,
    watts_q: [f64; 9],
}

impl PowerFeatures {
    fn of(trace: &[PowerSample]) -> PowerFeatures {
        let mut watts: Vec<f64> = trace.iter().map(|s| s.watts).collect();
        PowerFeatures {
            samples: trace.len() as f64,
            total_s: trace.iter().map(|s| s.duration_s).sum(),
            energy_j: trace.iter().map(|s| s.watts * s.duration_s).sum(),
            watts_q: deciles(&mut watts),
        }
    }

    fn distance(&self, other: &PowerFeatures) -> f64 {
        let scale = self.watts_q.iter().fold(0.0f64, |m, v| m.max(*v)).max(1.0);
        let mut d = 0.0;
        for i in 0..PROBES.len() {
            d += (self.watts_q[i] - other.watts_q[i]).abs() / scale;
        }
        d /= PROBES.len() as f64;
        d += rel_gap(self.samples, other.samples);
        d += rel_gap(self.total_s, other.total_s);
        d += rel_gap(self.energy_j, other.energy_j);
        d
    }
}

/// Symmetric relative gap `|a-b| / max(|a|,|b|,1)` — bounded, unit-free.
fn rel_gap(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// The three scores (and verdicts) of one suspect capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelScores {
    /// Audio-signature distance from the golden master.
    pub audio: f64,
    /// Power-envelope distance from the golden master.
    pub power: f64,
    /// Fused score: max of the per-channel scores, each normalized by
    /// its calibrated threshold.
    pub fused: f64,
    /// Audio score above its calibrated threshold?
    pub audio_flagged: bool,
    /// Power score above its calibrated threshold?
    pub power_flagged: bool,
    /// Fused score above its calibrated threshold?
    pub fused_flagged: bool,
    /// Frames in the suspect's acoustic capture.
    pub suspect_frames: u64,
}

/// A calibrated detector bank for one golden master under one capture
/// setup (quality preset + optional defender jamming).
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Audio decision threshold (null-distribution quantile).
    pub audio_threshold: f64,
    /// Power decision threshold.
    pub power_threshold: f64,
    /// Fused decision threshold.
    pub fused_threshold: f64,
    /// Frames in the golden master's acoustic capture.
    pub golden_frames: u64,
    golden_audio: AudioFeatures,
    golden_power: PowerFeatures,
    quality: CaptureQuality,
    jam: Option<NoiseEmitter>,
    feed_mm_per_s: f64,
}

impl Calibration {
    /// Builds the detector bank: records the golden master trace, then
    /// replays the same tool path through the (jammed) capture channel
    /// `null_replicates` times at independent seeds and sets each
    /// threshold to the `1 - fpr_target` quantile of the null scores.
    ///
    /// # Panics
    ///
    /// Panics if `feed_mm_per_s` is not positive, if
    /// `null_replicates == 0`, or if `fpr_target` is outside `(0, 1)`.
    pub fn calibrate(
        golden: &ToolPath,
        feed_mm_per_s: f64,
        quality: CaptureQuality,
        jam_amplitude: f64,
        trace_seed: u64,
        null_replicates: usize,
        fpr_target: f64,
    ) -> Calibration {
        assert!(null_replicates > 0, "calibration needs at least one null replicate");
        assert!(
            fpr_target > 0.0 && fpr_target < 1.0,
            "fpr target must be in (0, 1), got {fpr_target}"
        );
        let jam = (jam_amplitude > 0.0)
            .then_some(NoiseEmitter { relative_amplitude: jam_amplitude });
        // The golden master is captured pre-deployment in a controlled
        // setup: no jamming, but the same sensor quality.
        let golden_trace =
            record_emissions(golden, feed_mm_per_s, quality, mix(trace_seed, GOLDEN_SALT));
        let golden_power_trace =
            record_power(golden, feed_mm_per_s, quality, mix(trace_seed, GOLDEN_SALT));
        let mut cal = Calibration {
            audio_threshold: 0.0,
            power_threshold: 0.0,
            fused_threshold: 0.0,
            golden_frames: golden_trace.len() as u64,
            golden_audio: AudioFeatures::of(&golden_trace),
            golden_power: PowerFeatures::of(&golden_power_trace),
            quality,
            jam,
            feed_mm_per_s,
        };
        let mut audio_null = Vec::with_capacity(null_replicates);
        let mut power_null = Vec::with_capacity(null_replicates);
        for i in 0..null_replicates {
            let seed = mix(trace_seed, NULL_SALT.wrapping_add(i as u64));
            let (audio, power) = cal.raw_scores(golden, seed);
            audio_null.push(audio);
            power_null.push(power);
        }
        audio_null.sort_by(f64::total_cmp);
        power_null.sort_by(f64::total_cmp);
        let p = 1.0 - fpr_target;
        cal.audio_threshold = quantile(&audio_null, p).max(f64::MIN_POSITIVE);
        cal.power_threshold = quantile(&power_null, p).max(f64::MIN_POSITIVE);
        let mut fused_null: Vec<f64> = audio_null
            .iter()
            .zip(&power_null)
            .map(|(a, w)| (a / cal.audio_threshold).max(w / cal.power_threshold))
            .collect();
        fused_null.sort_by(f64::total_cmp);
        cal.fused_threshold = quantile(&fused_null, p).max(f64::MIN_POSITIVE);
        cal
    }

    /// Records a field capture of `suspect` at `capture_seed` and
    /// returns the raw (audio, power) distances from the golden master.
    fn raw_scores(&self, suspect: &ToolPath, capture_seed: u64) -> (f64, f64) {
        let (audio, power) = self.capture(suspect, capture_seed);
        (
            self.golden_audio.distance(&AudioFeatures::of(&audio)),
            self.golden_power.distance(&PowerFeatures::of(&power)),
        )
    }

    fn capture(
        &self,
        suspect: &ToolPath,
        capture_seed: u64,
    ) -> (Vec<EmissionFrame>, Vec<PowerSample>) {
        let mut audio =
            record_emissions(suspect, self.feed_mm_per_s, self.quality, capture_seed);
        if let Some(jam) = self.jam {
            // The jammer pollutes the *acoustic* field capture — the
            // defender's monitoring microphone hears its own decoys. The
            // supply-side power clamp is immune.
            audio = jam.apply(&audio, mix(capture_seed, JAM_SALT));
        }
        let power = record_power(suspect, self.feed_mm_per_s, self.quality, capture_seed);
        (audio, power)
    }

    /// Scores one field capture of `suspect` (seeded by `capture_seed`)
    /// against the golden master and the calibrated thresholds.
    pub fn score(&self, suspect: &ToolPath, capture_seed: u64) -> ChannelScores {
        let (audio_trace, power_trace) = self.capture(suspect, capture_seed);
        let audio = self.golden_audio.distance(&AudioFeatures::of(&audio_trace));
        let power = self.golden_power.distance(&PowerFeatures::of(&power_trace));
        let fused = (audio / self.audio_threshold).max(power / self.power_threshold);
        ChannelScores {
            audio,
            power,
            fused,
            audio_flagged: audio > self.audio_threshold,
            power_flagged: power > self.power_threshold,
            fused_flagged: fused > self.fused_threshold,
            suspect_frames: audio_trace.len() as u64,
        }
    }

    /// The saturated verdict for a suspect the process guards stopped
    /// before tool-path planning: every detector flags it.
    pub fn score_blocked(&self) -> ChannelScores {
        ChannelScores {
            audio: BLOCKED_SCORE,
            power: BLOCKED_SCORE,
            fused: BLOCKED_SCORE,
            audio_flagged: true,
            power_flagged: true,
            fused_flagged: true,
            suspect_frames: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::Point2;
    use am_slicer::{Road, RoadKind, ToolMaterial};

    fn serpentine(rows: usize) -> ToolPath {
        let mut roads = Vec::new();
        for j in 0..rows {
            let y = j as f64 * 0.5;
            let (x0, x1) = if j % 2 == 0 { (0.0, 40.0) } else { (40.0, 0.0) };
            roads.push(Road {
                from: Point2::new(x0, y),
                to: Point2::new(x1, y),
                z: 0.2,
                material: ToolMaterial::Model,
                kind: RoadKind::Infill,
                body: None,
            });
        }
        ToolPath { roads, layer_height: 0.2, road_width: 0.5 }
    }

    fn dropped(tp: &ToolPath, keep_every: usize) -> ToolPath {
        ToolPath {
            roads: tp
                .roads
                .iter()
                .enumerate()
                .filter(|(i, _)| i % keep_every != 0)
                .map(|(_, r)| *r)
                .collect(),
            ..tp.clone()
        }
    }

    fn cal(tp: &ToolPath, jam: f64) -> Calibration {
        Calibration::calibrate(tp, 30.0, CaptureQuality::smartphone(), jam, 11, 16, 0.05)
    }

    #[test]
    fn genuine_recaptures_mostly_pass() {
        let tp = serpentine(80);
        let c = cal(&tp, 0.0);
        let flags = (0..20)
            .filter(|i| c.score(&tp, mix(77, 300 + i)).fused_flagged)
            .count();
        assert!(flags <= 4, "null fused flags: {flags}/20");
    }

    #[test]
    fn dropped_roads_are_caught_on_every_channel() {
        let tp = serpentine(80);
        let c = cal(&tp, 0.0);
        let s = c.score(&dropped(&tp, 10), mix(77, 12345));
        assert!(s.audio_flagged, "audio {} thr {}", s.audio, c.audio_threshold);
        assert!(s.power_flagged, "power {} thr {}", s.power, c.power_threshold);
        assert!(s.fused_flagged, "fused {} thr {}", s.fused, c.fused_threshold);
    }

    #[test]
    fn jamming_raises_the_audio_threshold_but_not_the_power_one() {
        let tp = serpentine(80);
        let quiet = cal(&tp, 0.0);
        let jammed = cal(&tp, 2.5);
        assert!(
            jammed.audio_threshold > 3.0 * quiet.audio_threshold,
            "jammed {} vs quiet {}",
            jammed.audio_threshold,
            quiet.audio_threshold
        );
        let ratio = jammed.power_threshold / quiet.power_threshold;
        assert!((0.5..2.0).contains(&ratio), "power thresholds drifted: {ratio}");
    }

    #[test]
    fn calibration_is_deterministic() {
        let tp = serpentine(20);
        let a = cal(&tp, 0.8);
        let b = cal(&tp, 0.8);
        assert_eq!(a.audio_threshold, b.audio_threshold);
        assert_eq!(a.power_threshold, b.power_threshold);
        assert_eq!(a.fused_threshold, b.fused_threshold);
        assert_eq!(a.score(&tp, 5), b.score(&tp, 5));
    }

    #[test]
    fn blocked_scores_saturate() {
        let tp = serpentine(10);
        let c = cal(&tp, 0.0);
        let s = c.score_blocked();
        assert!(s.audio_flagged && s.power_flagged && s.fused_flagged);
        assert_eq!(s.audio, BLOCKED_SCORE);
        assert_eq!(s.suspect_frames, 0);
    }
}
