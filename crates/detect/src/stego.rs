//! Stego-channel scanning and sanitization of tool-path coordinates.
//!
//! A design exfiltration channel (Dolgavin et al.; ROADMAP "Defensive
//! workload suite") hides payload bits in the low-order coordinate
//! fraction of STL/G-code files: each x/y endpoint is snapped to a base
//! quantization grid and a sub-quantum offset encodes `payload_bits`
//! bits. The offsets are far below the printer's voxel size, so the
//! carrier prints identically — which is exactly what the sanitizer
//! exploits in reverse: re-quantizing every coordinate destroys the
//! channel without changing the print.
//!
//! The scanner statistic is **lattice concentration**: the fraction of
//! coordinates whose sub-quantum residue sits on the payload lattice
//! `k / 2^bits`, weighted by the entropy of the lattice symbols. Clean
//! tool paths score low (perimeter coordinates have smooth residues;
//! raster coordinates are grid-aligned but carry a degenerate,
//! zero-entropy symbol distribution), embedded ones score ≈ 1, and a
//! sanitized path scores exactly 0 — the sanitizer parks every residue
//! half a lattice bin away from every symbol.

use am_sidechannel::STEPS_PER_MM;
use am_slicer::ToolPath;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The base quantization grid of the stego channel (mm). A power of two
/// so grid arithmetic on binary floats is exact.
pub const BASE_QUANTUM_MM: f64 = 1.0 / 128.0;

/// Default payload channel width (bits per coordinate).
pub const DEFAULT_PAYLOAD_BITS: u32 = 2;

/// Residues within this fraction of a lattice bin count as on-lattice.
fn lattice_tolerance(bits: u32) -> f64 {
    1.0 / f64::from(1u32 << (bits + 3))
}

/// Applies `f` to every payload-bearing coordinate (road endpoint x/y).
fn map_coords(tp: &ToolPath, mut f: impl FnMut(f64) -> f64) -> ToolPath {
    let mut out = tp.clone();
    for road in &mut out.roads {
        road.from.x = f(road.from.x);
        road.from.y = f(road.from.y);
        road.to.x = f(road.to.x);
        road.to.y = f(road.to.y);
    }
    out
}

/// Embeds a seeded random payload into the tool path's low-order
/// coordinate channel: each coordinate is snapped to the base grid and
/// offset by one of `2^bits` sub-quantum lattice steps.
///
/// The worst displacement is one quantum (`quantum_mm`), orders of
/// magnitude below the voxel size — the carrier prints identically.
pub fn embed_payload(tp: &ToolPath, seed: u64, bits: u32, quantum_mm: f64) -> ToolPath {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5354_4547);
    let symbols = 1u32 << bits;
    map_coords(tp, |v| {
        let symbol = rng.gen_range(0..symbols);
        (v / quantum_mm).floor() * quantum_mm
            + quantum_mm * f64::from(symbol) / f64::from(symbols)
    })
}

/// The scanner: lattice concentration of the sub-quantum residues,
/// weighted by the normalized entropy of the lattice symbols.
///
/// ≈ 1 for an embedded path (every coordinate on-lattice, symbols
/// near-uniform), well below ½ for clean geometry, exactly 0 after
/// [`sanitize_coords`].
pub fn scan_channel(tp: &ToolPath, bits: u32, quantum_mm: f64) -> f64 {
    let symbols = 1usize << bits;
    let tol = lattice_tolerance(bits);
    let mut counts = vec![0usize; symbols];
    let mut total = 0usize;
    let mut aligned = 0usize;
    let mut visit = |v: f64| {
        total += 1;
        let residue = (v / quantum_mm).rem_euclid(1.0);
        let scaled = residue * symbols as f64;
        let symbol = scaled.round();
        if (scaled - symbol).abs() < tol * symbols as f64 {
            aligned += 1;
            counts[(symbol as usize) % symbols] += 1;
        }
    };
    for road in &tp.roads {
        visit(road.from.x);
        visit(road.from.y);
        visit(road.to.x);
        visit(road.to.y);
    }
    if total == 0 || aligned == 0 {
        return 0.0;
    }
    let mut entropy = 0.0;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / aligned as f64;
            entropy -= p * p.log2();
        }
    }
    let max_entropy = (symbols as f64).log2().max(1.0);
    (aligned as f64 / total as f64) * (entropy / max_entropy)
}

/// Strips the channel: every coordinate is re-quantized to the nearest
/// grid point **at or above it** whose sub-quantum residue sits half a
/// lattice bin past the cell origin — off every payload symbol by the
/// widest possible margin, so the post-sanitization scan is exactly 0
/// and the channel capacity is zero (the offset is a constant: it
/// carries no information).
///
/// The snap is upward-only (displacement in `[0, quantum_mm)`, exactly
/// 0 for coordinates already on the offset grid): combined with the
/// floor-convention of [`mechanical_quantize`], shrinking the quantum
/// monotonically shrinks the set of coordinates whose mechanical step
/// changes, which is what makes the sanitizer's fingerprint ladder
/// converge.
///
/// Returns the sanitized path and the worst coordinate displacement (mm).
pub fn sanitize_coords(tp: &ToolPath, bits: u32, quantum_mm: f64) -> (ToolPath, f64) {
    let offset = quantum_mm / f64::from(1u32 << (bits + 1));
    let mut worst = 0.0f64;
    let out = map_coords(tp, |v| {
        let snapped = ((v - offset) / quantum_mm).ceil() * quantum_mm + offset;
        worst = worst.max(snapped - v);
        snapped
    });
    (out, worst)
}

/// Rounds a tool path onto the machine's mechanical step grid
/// (`1 / STEPS_PER_MM` mm per axis step, floor convention): the stepper
/// cannot command sub-step positions, so two tool paths that agree
/// after this map deposit identically. This is the normalization the
/// sanitizer's fingerprint oracle prints — it makes "the payload is
/// below the machine's resolution" a checkable property instead of an
/// assumption.
pub fn mechanical_quantize(tp: &ToolPath) -> ToolPath {
    map_coords(tp, |v| (v * STEPS_PER_MM).floor() / STEPS_PER_MM)
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_geom::Point2;
    use am_slicer::{Road, RoadKind, ToolMaterial};

    /// A mix of grid-aligned raster roads and irrational-offset
    /// perimeter roads — both clean-geometry shapes the scanner must not
    /// flag.
    fn clean_path() -> ToolPath {
        let mut roads = Vec::new();
        for j in 0..40 {
            let y = j as f64 * 0.5;
            roads.push(Road {
                from: Point2::new(0.0, y),
                to: Point2::new(40.0, y),
                z: 0.2,
                material: ToolMaterial::Model,
                kind: RoadKind::Infill,
                body: None,
            });
            let t = j as f64 * 0.37;
            roads.push(Road {
                from: Point2::new(10.0 + t.sin() * 3.1, 20.0 + t.cos() * 3.1),
                to: Point2::new(10.0 + (t + 0.1).sin() * 3.1, 20.0 + (t + 0.1).cos() * 3.1),
                z: 0.2,
                material: ToolMaterial::Model,
                kind: RoadKind::Perimeter,
                body: None,
            });
        }
        ToolPath { roads, layer_height: 0.2, road_width: 0.5 }
    }

    #[test]
    fn embedded_paths_score_high_and_clean_paths_low() {
        let clean = clean_path();
        let embedded = embed_payload(&clean, 42, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM);
        let clean_score = scan_channel(&clean, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM);
        let hot_score = scan_channel(&embedded, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM);
        assert!(clean_score < 0.5, "clean path flagged: {clean_score}");
        assert!(hot_score > 0.8, "payload missed: {hot_score}");
    }

    #[test]
    fn sanitization_zeroes_the_channel_with_bounded_displacement() {
        let embedded =
            embed_payload(&clean_path(), 42, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM);
        let (stripped, worst) =
            sanitize_coords(&embedded, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM);
        assert_eq!(scan_channel(&stripped, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM), 0.0);
        assert!(worst <= BASE_QUANTUM_MM, "displacement {worst}");
        // Sanitizing again is a fixed point (same grid, same offset).
        let (again, drift) = sanitize_coords(&stripped, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM);
        assert_eq!(again, stripped);
        assert_eq!(drift, 0.0);
    }

    #[test]
    fn embedding_is_deterministic_and_sub_voxel() {
        let clean = clean_path();
        let a = embed_payload(&clean, 7, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM);
        let b = embed_payload(&clean, 7, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM);
        assert_eq!(a, b);
        for (ra, rc) in a.roads.iter().zip(&clean.roads) {
            for (pa, pc) in [(ra.from, rc.from), (ra.to, rc.to)] {
                assert!(pa.distance(pc) < 2.0 * BASE_QUANTUM_MM);
            }
        }
        assert_ne!(
            embed_payload(&clean, 8, DEFAULT_PAYLOAD_BITS, BASE_QUANTUM_MM),
            a,
            "different payload seeds must embed different payloads"
        );
    }
}
