//! Umbrella crate for the ObfusCADe reproduction.
//!
//! Re-exports every crate in the workspace so examples and downstream users
//! can depend on a single package. See the [`obfuscade`] crate for the
//! paper's primary contribution and the README for an architecture overview.

pub use am_cad as cad;
pub use am_fea as fea;
pub use am_geom as geom;
pub use am_mesh as mesh;
pub use am_printer as printer;
pub use am_sidechannel as sidechannel;
pub use am_slicer as slicer;
pub use obfuscade as core;
