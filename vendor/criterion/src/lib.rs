//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion`] with `bench_function`/`benchmark_group`, [`Bencher::iter`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of statistical sampling it runs each benchmark for a bounded
//! number of iterations and prints mean wall-clock time per iteration —
//! enough to smoke-test the bench targets and eyeball regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
///
/// Uses a volatile-free best-effort trick (`std::hint::black_box`), which is
/// stable since Rust 1.66.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver. Configuration setters are accepted and mostly used to
/// bound how long each benchmark runs.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the iteration budget per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; warm-up is folded into measurement.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, self.measurement_time, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: `name/parameter`.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    budget: Duration,
    elapsed: Duration,
    performed: u64,
}

impl Bencher {
    /// Times `routine`, iterating until the sample or time budget runs out.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for i in 0..self.iters {
            black_box(routine());
            self.performed = i + 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, mut f: F) {
    let mut bencher = Bencher {
        iters: samples as u64,
        budget,
        elapsed: Duration::ZERO,
        performed: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.performed > 0 {
        bencher.elapsed / bencher.performed as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {id}: {per_iter:?}/iter over {} iters",
        bencher.performed
    );
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        for n in [1u64, 2, 3] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, n| {
                b.iter(|| total += *n)
            });
        }
        group.finish();
        assert!(total >= 6);
    }
}
