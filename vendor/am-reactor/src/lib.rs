//! A minimal epoll wrapper, vendored for the ObfusCADe workspace.
//!
//! The obfuscation daemon's non-blocking reactor needs exactly four
//! kernel operations — create an epoll instance, add/modify/remove an
//! interest, and wait for readiness — and nothing else. Rather than pull
//! a dependency in for that, this crate declares the four libc entry
//! points itself (std already links libc on every supported platform)
//! and exposes them behind a safe, fd-agnostic API:
//!
//! * [`Poller::new`] — one epoll instance, closed on drop.
//! * [`Poller::register`] / [`Poller::modify`] / [`Poller::deregister`] —
//!   interest management keyed by a caller-chosen `u64` token.
//! * [`Poller::wait`] — blocks (with optional timeout) and yields
//!   [`Event`]s: the token plus decoded readiness bits.
//!
//! Registrations are **edge-triggered** (`EPOLLET`): an event fires when
//! readiness *changes*, so the caller must drain reads/writes until
//! `WouldBlock` before waiting again. That is the contract the daemon's
//! per-connection state machines are written against — it keeps the
//! ready-list O(changes) instead of O(connections) under 10k sockets.
//!
//! The crate is Linux-only by nature; on other platforms every call
//! returns `ErrorKind::Unsupported` so the workspace still builds (the
//! daemon's thread-per-connection backend remains available there).
//!
//! Design goals, in the style of `am-par`:
//! 1. zero dependencies — raw `extern "C"` syscall bindings, nothing
//!    vendored beneath the vendored crate;
//! 2. the `unsafe` surface lives *here*, in four audited blocks, so
//!    `am-service` itself can keep `#![forbid(unsafe_code)]`;
//! 3. tokens, not callbacks: the caller owns the fd lifecycle and the
//!    dispatch table, the poller never stores references.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// What readiness a registration subscribes to. Edge-triggered in every
/// case; hangup/error conditions are always reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only (plus hangup/error).
    Read,
    /// Writable only (plus hangup/error).
    Write,
    /// Readable and writable.
    ReadWrite,
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd's send buffer has room again.
    pub writable: bool,
    /// The peer closed (EPOLLHUP/EPOLLRDHUP) or the fd errored
    /// (EPOLLERR). Treat as "read until EOF/error, then drop".
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    /// `struct epoll_event` exactly as the kernel ABI lays it out —
    /// packed on x86_64 (a 12-byte struct), naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // The four libc entry points the poller needs. std links libc on
    // Linux, so these resolve without any build-script or crate dep.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn interest_bits(interest: Interest) -> u32 {
        let rw = match interest {
            Interest::Read => EPOLLIN,
            Interest::Write => EPOLLOUT,
            Interest::ReadWrite => EPOLLIN | EPOLLOUT,
        };
        rw | EPOLLRDHUP | EPOLLET
    }

    /// One epoll instance plus its reusable event buffers.
    pub struct Poller {
        epfd: i32,
        raw: Vec<EpollEvent>,
        decoded: Vec<Event>,
    }

    impl Poller {
        pub fn new(capacity: usize) -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes a flags word and returns a new
            // fd or -1; no pointers are involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let capacity = capacity.clamp(8, 4096);
            Ok(Poller {
                epfd,
                raw: vec![EpollEvent { events: 0, data: 0 }; capacity],
                decoded: Vec::with_capacity(capacity),
            })
        }

        fn ctl(&self, op: i32, fd: i32, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = match &mut event {
                Some(e) => e as *mut EpollEvent,
                None => std::ptr::null_mut(),
            };
            // SAFETY: `ptr` is either null (only for EPOLL_CTL_DEL, which
            // ignores it) or points at a live, properly laid out
            // EpollEvent on this stack frame; the kernel reads it before
            // the call returns.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let event = EpollEvent { events: interest_bits(interest), data: token };
            self.ctl(EPOLL_CTL_ADD, fd, Some(event))
        }

        pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let event = EpollEvent { events: interest_bits(interest), data: token };
            self.ctl(EPOLL_CTL_MOD, fd, Some(event))
        }

        pub fn deregister(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<&[Event]> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a 0.4 ms timeout still sleeps, and saturate
                // far-future timeouts instead of overflowing.
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = loop {
                // SAFETY: `raw` is a live allocation of `raw.len()`
                // EpollEvents; the kernel writes at most `maxevents` of
                // them and the count it returns is how many are valid.
                let rc = unsafe {
                    epoll_wait(self.epfd, self.raw.as_mut_ptr(), self.raw.len() as i32, timeout_ms)
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR: retry. A signal mid-wait must not surface as a
                // reactor error (the timeout restarts; callers tick on a
                // short period anyway).
            };
            self.decoded.clear();
            for raw in &self.raw[..n] {
                // Copy out of the (possibly packed) struct before use.
                let bits = raw.events;
                let token = raw.data;
                self.decoded.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(&self.decoded)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed exactly
            // once, here.
            let _ = unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "epoll is only available on Linux"))
    }

    /// Non-Linux stub: every operation reports `Unsupported`.
    pub struct Poller;

    impl Poller {
        pub fn new(_capacity: usize) -> io::Result<Poller> {
            unsupported()
        }

        pub fn register(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        pub fn modify(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        pub fn deregister(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }

        pub fn wait(&mut self, _timeout: Option<Duration>) -> io::Result<&[Event]> {
            unsupported()
        }
    }
}

/// An epoll instance: edge-triggered interest registration keyed by
/// caller tokens, and a blocking [`Poller::wait`] that decodes readiness
/// into [`Event`]s.
///
/// Not `Sync`: one thread owns the poller and the event loop (the
/// daemon's reactor thread). Cross-thread wakeups go through an fd the
/// owner registered (e.g. a pipe or socketpair end), not through the
/// poller itself.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates an epoll instance sized to decode up to `capacity`
    /// events per [`Poller::wait`] call (clamped to 8..=4096; more ready
    /// fds than that simply surface on the next call).
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure, or `Unsupported` off Linux.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller { inner: sys::Poller::new(capacity)? })
    }

    /// Adds `fd` with `token` and `interest` (edge-triggered).
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (e.g. `EEXIST` for a double
    /// registration).
    pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Replaces the interest (and token) of an already registered `fd`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (e.g. `ENOENT` if never
    /// registered).
    pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Removes `fd` from the interest set. Closing an fd deregisters it
    /// implicitly, but only if no duplicate (e.g. a `try_clone`) keeps
    /// the open file description alive — the daemon deregisters
    /// explicitly before dropping.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure.
    pub fn deregister(&self, fd: i32) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Waits for readiness: blocks until at least one event, the timeout
    /// elapses (`Ok(&[])`), or an error. `None` blocks indefinitely.
    /// `EINTR` is retried internally, restarting the timeout.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_wait` failure.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<&[Event]> {
        self.inner.wait(timeout)
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    const TICK: Option<Duration> = Some(Duration::from_millis(200));
    const IDLE: Option<Duration> = Some(Duration::from_millis(20));

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        (a, b)
    }

    #[test]
    fn readable_event_carries_the_registered_token() {
        let mut poller = Poller::new(64).expect("poller");
        let (mut a, mut b) = pair();
        poller.register(a.as_raw_fd(), 7, Interest::Read).expect("register");

        // Nothing written yet: the wait times out empty.
        assert!(poller.wait(IDLE).expect("wait").is_empty());

        b.write_all(b"ping").expect("write");
        let events = poller.wait(TICK).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable && !events[0].closed);

        let mut buf = [0u8; 16];
        let n = a.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn edge_triggered_fires_once_per_readiness_change() {
        let mut poller = Poller::new(64).expect("poller");
        let (mut a, mut b) = pair();
        poller.register(a.as_raw_fd(), 1, Interest::Read).expect("register");

        b.write_all(b"x").expect("write");
        assert_eq!(poller.wait(TICK).expect("wait").len(), 1);
        // Edge semantics: the level is still high (the byte is unread)
        // but no new edge occurred, so the poller stays silent.
        assert!(poller.wait(IDLE).expect("wait").is_empty());

        let mut buf = [0u8; 4];
        assert_eq!(a.read(&mut buf).expect("read"), 1);
        b.write_all(b"y").expect("write");
        assert_eq!(poller.wait(TICK).expect("wait").len(), 1, "a new edge fires again");
    }

    #[test]
    fn modify_switches_interest_and_deregister_silences() {
        let mut poller = Poller::new(64).expect("poller");
        let (a, mut b) = pair();
        // A fresh socket's send buffer is empty, so Write interest
        // reports an immediate edge.
        poller.register(a.as_raw_fd(), 3, Interest::Write).expect("register");
        let events = poller.wait(TICK).expect("wait");
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        poller.modify(a.as_raw_fd(), 4, Interest::Read).expect("modify");
        b.write_all(b"z").expect("write");
        let events = poller.wait(TICK).expect("wait");
        assert!(events.iter().any(|e| e.token == 4 && e.readable));

        poller.deregister(a.as_raw_fd()).expect("deregister");
        b.write_all(b"w").expect("write");
        assert!(poller.wait(IDLE).expect("wait").is_empty());
    }

    #[test]
    fn peer_close_reports_closed() {
        let mut poller = Poller::new(64).expect("poller");
        let (a, b) = pair();
        poller.register(a.as_raw_fd(), 9, Interest::Read).expect("register");
        drop(b);
        let events = poller.wait(TICK).expect("wait");
        assert_eq!(events.len(), 1);
        assert!(events[0].closed, "hangup must surface as closed: {:?}", events[0]);
    }
}
