//! Vendored scoped thread pool for the ObfusCADe workspace.
//!
//! The build environment has no registry access (see `vendor/rand`), so the
//! workspace vendors its own minimal data-parallelism layer instead of
//! pulling in `rayon`. The design goals, in priority order:
//!
//! 1. **Determinism** — every combinator returns results in input-index
//!    order, and callers are expected to keep all floating-point reduction
//!    orders independent of the thread count. The hot kernels built on this
//!    crate (slicer, printer, FEA) are tested to be *bit-identical* across
//!    thread counts, which is what the fault-injection and fingerprint
//!    subsystems rely on.
//! 2. **Safety** — no `unsafe`. Work distribution uses chunked
//!    self-scheduling: idle workers steal the next unclaimed chunk of the
//!    index space from a shared atomic cursor, so load imbalance (layers
//!    near a part's ends slice faster than mid-part layers) evens out
//!    without per-item synchronization.
//! 3. **Zero cost when serial** — with [`Parallelism::serial`] every
//!    combinator runs inline on the caller's stack: no threads, no atomics,
//!    no allocation beyond the output. `threads = 1` therefore recovers the
//!    exact serial code path.
//!
//! Threads are scoped (`std::thread::scope`) rather than persistent: the
//! workspace's parallel sections are coarse (a whole layer stack, a whole
//! relaxation solve), so spawn cost is negligible and borrowed inputs need
//! no `'static` gymnastics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a parallel section may use.
///
/// The value is always at least 1. [`Parallelism::auto`] consults the
/// `AM_PAR_THREADS` environment variable first (so operators can pin the
/// fleet-wide thread budget centrally) and falls back to the machine's
/// available parallelism.
///
/// # Examples
///
/// ```
/// use am_par::Parallelism;
///
/// assert_eq!(Parallelism::serial().thread_count(), 1);
/// assert_eq!(Parallelism::threads(4).thread_count(), 4);
/// assert_eq!(Parallelism::threads(0).thread_count(), 1); // clamped
/// assert!(Parallelism::auto().thread_count() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly one thread: every combinator runs inline on the caller.
    pub const fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// Exactly `n` threads (clamped to at least 1).
    pub const fn threads(n: usize) -> Self {
        Parallelism { threads: if n == 0 { 1 } else { n } }
    }

    /// `AM_PAR_THREADS` if set and positive, else the machine's available
    /// parallelism, else 1.
    pub fn auto() -> Self {
        if let Ok(v) = std::env::var("AM_PAR_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Parallelism::threads(n);
                }
            }
        }
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        Parallelism::threads(n)
    }

    /// The thread budget (≥ 1).
    pub const fn thread_count(&self) -> usize {
        self.threads
    }

    /// `true` if the budget is a single thread.
    pub const fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} thread{}", self.threads, if self.threads == 1 { "" } else { "s" })
    }
}

/// Splits `len` items into `parts` contiguous near-equal ranges.
///
/// The partition depends only on `len` and `parts` — callers that need a
/// thread-count-*independent* reduction order should pass a fixed `parts`
/// rather than the pool width. Empty ranges are omitted.
///
/// # Examples
///
/// ```
/// assert_eq!(am_par::chunk_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
/// assert_eq!(am_par::chunk_ranges(2, 4), vec![(0, 1), (1, 2)]);
/// assert_eq!(am_par::chunk_ranges(0, 4), Vec::<(usize, usize)>::new());
/// ```
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts.min(len));
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            continue;
        }
        out.push((start, start + size));
        start += size;
    }
    out
}

/// A scoped thread pool with a fixed thread budget.
///
/// All combinators return results in input-index order regardless of which
/// worker computed them.
///
/// # Examples
///
/// ```
/// use am_par::{Parallelism, Pool};
///
/// let pool = Pool::new(Parallelism::threads(4));
/// let squares = pool.par_map(&[1, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    parallelism: Parallelism,
}

impl Pool {
    /// A pool with the given thread budget.
    pub const fn new(parallelism: Parallelism) -> Self {
        Pool { parallelism }
    }

    /// The pool's thread budget.
    pub const fn thread_count(&self) -> usize {
        self.parallelism.thread_count()
    }

    /// The pool's [`Parallelism`].
    pub const fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// Work is distributed in chunks claimed from a shared cursor, so a
    /// slow item only delays its own chunk.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.thread_count().min(n.max(1));
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = chunk_size(n, workers);
        let cursor = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                out.push((i, f(item)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("am-par worker panicked"))
                .collect()
        });
        reorder(n, collected)
    }

    /// Applies `f` to every owned item (consuming the input), returning
    /// results in input order. Use this when the work items carry `&mut`
    /// borrows (e.g. disjoint voxel-layer slices).
    pub fn par_consume<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.thread_count().min(n.max(1));
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let chunk = chunk_size(n, workers);
        let cursor = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, cell) in cells.iter().enumerate().take(end).skip(start) {
                                let item = cell
                                    .lock()
                                    .expect("am-par cell poisoned")
                                    .take()
                                    .expect("am-par item claimed twice");
                                out.push((i, f(item)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("am-par worker panicked"))
                .collect()
        });
        reorder(n, collected)
    }

    /// Applies `f` to contiguous chunks of `chunk_len` items; `f` receives
    /// `(chunk_index, slice)`. Results come back in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let chunks: Vec<(usize, &[T])> = items.chunks(chunk_len).enumerate().collect();
        self.par_map(&chunks, |&(i, slice)| f(i, slice))
    }

    /// Runs `f(worker_index)` once per pool thread, concurrently.
    ///
    /// Worker 0 runs on the calling thread, so a serial pool never spawns.
    /// This is the building block for phased solvers that coordinate with
    /// barriers (see the FEA crate): every worker reaches the same barriers
    /// in the same order.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let workers = self.thread_count();
        if workers <= 1 {
            f(0);
            return;
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (1..workers).map(|w| scope.spawn(move || f(w))).collect();
            f(0);
            for h in handles {
                h.join().expect("am-par worker panicked");
            }
        });
    }
}

/// Chunk size targeting ~4 chunks per worker so stealing can balance load.
fn chunk_size(n: usize, workers: usize) -> usize {
    (n / (workers * 4)).max(1)
}

/// Places `(index, value)` pairs into a dense vec, restoring input order.
fn reorder<R>(n: usize, collected: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for pairs in collected {
        for (i, r) in pairs {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("am-par result missing"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(Parallelism::threads(threads));
            assert_eq!(pool.par_map(&items, |&x| x * 3 + 1), expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_consume_moves_items_once() {
        let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let pool = Pool::new(Parallelism::threads(4));
        let lens = pool.par_consume(items, |s| s.len());
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 6);
        assert_eq!(lens[99], 7);
    }

    #[test]
    fn par_chunks_covers_every_item_in_order() {
        let items: Vec<usize> = (0..97).collect();
        let pool = Pool::new(Parallelism::threads(3));
        let sums = pool.par_chunks(&items, 10, |i, chunk| (i, chunk.iter().sum::<usize>()));
        assert_eq!(sums.len(), 10);
        assert_eq!(sums[0], (0, 45));
        let total: usize = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 97 * 96 / 2);
    }

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        let pool = Pool::new(Parallelism::threads(5));
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "worker {w}");
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::new(Parallelism::serial());
        let caller = std::thread::current().id();
        let ids = pool.par_map(&[(), (), ()], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let mut covered = 0;
                let mut prev_end = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, prev_end);
                    assert!(e > s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len, "len {len} parts {parts}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(Parallelism::threads(8));
        let out: Vec<u32> = pool.par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
        let out: Vec<u32> = pool.par_consume(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
