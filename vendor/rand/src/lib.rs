//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the (small, deterministic) subset of the rand 0.8 API the
//! workspace actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]/[`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation noise, *not* cryptographic. Streams differ from the
//! real `rand::rngs::StdRng` (which is ChaCha12), but every consumer in this
//! workspace only requires same-seed ⇒ same-stream determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (matching rand 0.8 semantics).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (the subset the workspace uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&x));
            let i: usize = rng.gen_range(0..17);
            assert!(i < 17);
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
