//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the subset of the proptest 1.x API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`, range and tuple strategies, `collection::vec`, and the
//! `prop_assert*` family.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its inputs via the ordinary
//!   assert panic message instead of a minimized counterexample.
//! * **Deterministic** — each test's case stream is seeded from the test
//!   name, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-test configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this stand-in trades coverage for
        // CI latency. Tests that need more ask via `with_cases`.
        ProptestConfig { cases: 32 }
    }
}

/// The deterministic RNG driving case generation.
pub mod test_runner {
    /// xoshiro256++ seeded from the test name (FNV-1a).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the stream from a test name, deterministically.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(hash)
        }

        /// Seeds the stream from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, bound).
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "cannot sample empty range");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of one type from the deterministic RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "cannot sample empty size range");
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig};
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is matched
/// once (outside any repetition) so it can be spliced into every test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let __strategies = ($($strat,)*);
                for __case in 0..__config.cases {
                    let _ = __case;
                    #[allow(unused_variables)]
                    let ($($pat,)*) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    let __run = move || $body;
                    __run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0..1.0f64, 2.0..3.0f64).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn ranges_respected(x in -4.0..4.0f64, n in 1usize..9) {
            prop_assert!((-4.0..4.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn mapped_tuples_work((a, b) in pair()) {
            prop_assert!(a < b);
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0.0..1.0f64, 3..12)) {
            prop_assert!((3..12).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        use crate::strategy::Strategy;
        let s = 0.0..1.0f64;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
