#!/bin/sh
# The repo's tier-1 gate, plus the panic-free lint wall.
#
#   ./ci.sh
#
# 1. release build of the whole workspace
# 2. full test suite (workspace-wide; the root package alone only runs
#    the umbrella integration tests)
# 3. bench smoke: tiny-workload run of the benchmark harness; the CLI
#    re-parses the emitted JSON and validates the schema, so this also
#    gates the report format
# 4. bench regression gate: the committed BENCH_PR4.json must parse
#    against the obfuscade-bench/v3 schema with every kernel speedup
#    >= 1.0x AND the fea row's optimized wall clock within half of PR 3's
#    committed 1157.7 ms — i.e. the Newton-PCG solver must stay >= 2x
#    faster than the relaxation kernel it replaced (the smoke report is
#    schema-validated on write but not speedup-gated — tiny workloads are
#    too noisy to threshold)
# 5. clippy as an error wall, with `clippy::unwrap_used` additionally
#    enabled for library and binary code (test code may unwrap freely —
#    a failing assertion *is* its error report)
set -eu

cargo build --release --workspace
cargo test --workspace -q
./target/release/obfuscade bench --smoke --threads 2 --out target/bench_smoke.json
./target/release/obfuscade bench --check BENCH_PR4.json --fea-budget-ms 578.9
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --lib --bins -- -D warnings -W clippy::unwrap_used

echo "ci: all green"
