#!/bin/sh
# The repo's tier-1 gate, plus the panic-free lint wall.
#
#   ./ci.sh
#
# 1. release build of the whole workspace
# 2. full test suite (workspace-wide; the root package alone only runs
#    the umbrella integration tests)
# 3. bench smoke: tiny-workload run of the benchmark harness; the CLI
#    re-parses the emitted JSON and validates the schema, so this also
#    gates the report format
# 4. service smoke: boot the obfuscation daemon on an ephemeral loopback
#    port, round-trip a protect-and-print job, an authenticate verdict,
#    the metrics snapshot, and a small byte-verified load run through
#    `submit`, then a smoke `bench --serve` against its own daemon, then
#    drain the first daemon with a `shutdown` request and wait for it
# 5. bench regression gate: the committed BENCH_PR5.json must parse
#    against the obfuscade-bench/v4 schema with every kernel speedup
#    >= 1.0x, the fea row's optimized wall clock within half of PR 3's
#    committed 1157.7 ms (the Newton-PCG solver must stay >= 2x faster
#    than the relaxation kernel it replaced), AND a clean daemon load
#    result in the mandatory `serve` section (the smoke reports are
#    schema-validated on write but not speedup-gated — tiny workloads
#    are too noisy to threshold)
# 6. clippy as an error wall, with `clippy::unwrap_used` additionally
#    enabled for library and binary code (test code may unwrap freely —
#    a failing assertion *is* its error report)
set -eu

cargo build --release --workspace
cargo test --workspace -q
./target/release/obfuscade bench --smoke --threads 2 --out target/bench_smoke.json

rm -f target/serve.addr
./target/release/obfuscade serve --addr 127.0.0.1:0 --workers 2 \
    --port-file target/serve.addr &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s target/serve.addr ] && break
    sleep 0.1
done
[ -s target/serve.addr ] || { echo "ci: daemon never wrote its port file" >&2; exit 1; }
SERVE_ADDR=$(cat target/serve.addr)
./target/release/obfuscade submit --addr "$SERVE_ADDR" --kind run
./target/release/obfuscade submit --addr "$SERVE_ADDR" --kind authenticate
./target/release/obfuscade submit --addr "$SERVE_ADDR" --kind stats
./target/release/obfuscade submit --addr "$SERVE_ADDR" --load 24 --concurrency 4
./target/release/obfuscade bench --smoke --serve --only serve --threads 2 \
    --out target/bench_serve_smoke.json
./target/release/obfuscade submit --addr "$SERVE_ADDR" --kind shutdown
wait "$SERVE_PID"

./target/release/obfuscade bench --check BENCH_PR5.json --fea-budget-ms 578.9 --require-serve
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --lib --bins -- -D warnings -W clippy::unwrap_used

echo "ci: all green"
