#!/bin/sh
# The repo's tier-1 gate, plus the panic-free lint wall.
#
#   ./ci.sh
#
# 1. release build of the whole workspace
# 2. full test suite (workspace-wide; the root package alone only runs
#    the umbrella integration tests)
# 3. clippy as an error wall, with `clippy::unwrap_used` additionally
#    enabled for library and binary code (test code may unwrap freely —
#    a failing assertion *is* its error report)
set -eu

cargo build --release --workspace
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --lib --bins -- -D warnings -W clippy::unwrap_used

echo "ci: all green"
