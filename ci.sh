#!/bin/sh
# The repo's tier-1 gate, plus the panic-free lint wall.
#
#   ./ci.sh
#
# 1. release build of the whole workspace
# 2. full test suite (workspace-wide; the root package alone only runs
#    the umbrella integration tests)
# 3. bench smoke: tiny-workload run of the benchmark harness; the CLI
#    re-parses the emitted JSON and validates the schema, so this also
#    gates the report format
# 4. service smoke: boot the obfuscation daemon on an ephemeral loopback
#    port, round-trip a protect-and-print job, an authenticate verdict,
#    the metrics snapshot, and a small byte-verified load run through
#    `submit --port-file` (which polls for the daemon's address itself —
#    the boot race the old external wait loop papered over), then a
#    smoke `bench --serve` against its own daemon, then drain the first
#    daemon with a `shutdown` request and wait for it.
#    The detect stage (PR 10) rides the same daemon: batch side-channel
#    detection jobs (clean, faulted, and jammed captures) and a
#    stego-sanitization job are served on BOTH wire codecs with
#    `--verify`, which byte-compares every served report against an
#    in-process `am-detect` run of the same spec — plus the smoke
#    detection ROC bench (`bench --only detect`), schema-validated on
#    write like every other report
# 5. chaos stage (PR 6, hardened under the epoll reactor in PR 8): a
#    daemon on a Unix socket — explicitly `--backend reactor` — with
#    deterministic fault injection (`--chaos-seed`), a 1 MiB cache to
#    force constant eviction, and a persistent spill tier. A
#    byte-verified load runs through the chaos; then a second load (on
#    the negotiated binary codec) is fired, the daemon is KILLED (-9)
#    mid-run and restarted on the same socket + spill dir — the retrying
#    client must ride out the outage and still report every response
#    byte-identical. The restarted daemon must show warm-start spill
#    hits (rehydrated from segment files written before the kill) and
#    zero corrupt entries served.
# 6. fleet stage (PR 9): three daemons on Unix sockets behind an
#    `obfuscade route` rendezvous router. A byte-verified shared-prefix
#    load plus a seed sweep all home on ONE backend (rendezvous hashing
#    keys on the job's stage-key prefix); the router's stats snapshot
#    names that winner, which is then KILLED (-9). A second byte-verified
#    load (binary codec) must ride the failover — identical bytes from
#    whichever surviving node the jobs re-home on — and the router must
#    record >= 1 failover. Also runs the smoke routed-fleet bench
#    (`bench --only fleet`), which grids nodes × {affinity, round-robin}
#    and validates the v8 schema on write.
# 7. bench regression gate: the committed BENCH_PR10.json must parse
#    against the obfuscade-bench/v9 schema — which adds the detection
#    sweep (mandatory `detect` section: a ROC table covering the
#    complete 15-entry fault catalog, the fused detector never below
#    either single channel per capture setup, full-mode reports sweeping
#    the jamming axis and >= 2 qualities, and headline worst-case fields
#    restating the table) on top of the v8 routed-fleet grid (nodes ×
#    {affinity, round-robin} points with per-node cache-hit accounting,
#    affinity strictly above round-robin at every N >= 2, and full-mode
#    affinity within 5 points of single-node at the top node count) and
#    the v7 serve sweep — with every kernel speedup >= 1.0x, the fea
#    row's optimized wall clock within half of PR 3's committed
#    1157.7 ms, per-kernel speedup floors (printing >= 3.5x,
#    slicing >= 5.7x — see DESIGN.md §13), a clean daemon load in the
#    mandatory `serve` section, absolute serve floors (headline
#    p99 <= 150 ms, throughput >= 4000 req/s), absolute fleet floors on
#    the affinity headline at the top node count (warm hit rate + routed
#    throughput; see DESIGN.md §15), AND absolute detection floors on
#    the ROC headline (worst-setup fused catch rate and FPR; see
#    DESIGN.md §16). Smoke reports are schema-validated on write but not
#    speedup- or latency-gated — tiny workloads are too noisy to
#    threshold.
# 8. clippy as an error wall, with `clippy::unwrap_used` additionally
#    enabled for library and binary code (test code may unwrap freely —
#    a failing assertion *is* its error report)
set -eu

cargo build --release --workspace
cargo test --workspace -q
./target/release/obfuscade bench --smoke --threads 2 --out target/bench_smoke.json

rm -f target/serve.addr
./target/release/obfuscade serve --addr 127.0.0.1:0 --workers 2 \
    --port-file target/serve.addr &
SERVE_PID=$!
./target/release/obfuscade submit --port-file target/serve.addr --kind run
./target/release/obfuscade submit --port-file target/serve.addr --kind authenticate
./target/release/obfuscade submit --port-file target/serve.addr --kind stats
./target/release/obfuscade submit --port-file target/serve.addr --load 24 --concurrency 4
# The same load again on the negotiated binary codec: byte-verified
# against the same in-process reference, so both codecs must serve
# identical result bytes.
./target/release/obfuscade submit --port-file target/serve.addr --load 24 --concurrency 4 \
    --codec binary
./target/release/obfuscade bench --smoke --serve --only serve --threads 2 \
    --out target/bench_serve_smoke.json

# --- detect stage ------------------------------------------------------
# Side-channel detection and stego sanitization through the live daemon,
# byte-verified against the in-process am-detect reference on both
# codecs: a clean suspect, a faulted suspect under acoustic jamming, and
# a sanitize job that embeds a seeded payload first.
./target/release/obfuscade submit --port-file target/serve.addr --kind detect \
    --verify >/dev/null
./target/release/obfuscade submit --port-file target/serve.addr --kind detect \
    --faults "toolpath.dup=0.5" --quality lab --jam 2.5 --trace-seed 7 \
    --codec binary --verify >/dev/null
./target/release/obfuscade submit --port-file target/serve.addr --kind sanitize \
    --payload-seed 7 --payload-bits 3 --verify >/dev/null
./target/release/obfuscade submit --port-file target/serve.addr --kind sanitize \
    --codec binary --verify >/dev/null
echo "ci: detect stage clean (served reports byte-identical on both codecs)"
# The smoke detection ROC bench: full 15-fault catalog, one capture
# setup, schema-validated on write.
./target/release/obfuscade bench --smoke --only detect --threads 2 \
    --out target/bench_detect_smoke.json

./target/release/obfuscade submit --port-file target/serve.addr --kind shutdown
wait "$SERVE_PID"

# --- chaos stage -------------------------------------------------------
CHAOS_SOCK=target/chaos.sock
CHAOS_SPILL=target/chaos-spill
rm -rf "$CHAOS_SPILL" "$CHAOS_SOCK"
./target/release/obfuscade serve --uds "$CHAOS_SOCK" --addr 127.0.0.1:0 --backend reactor \
    --workers 2 --cache-mb 1 --chaos-seed 7 --spill-dir "$CHAOS_SPILL" &
CHAOS_PID=$!
# Byte-verified load straight through the injected faults (connection
# drops, short/stalled reads, worker panics, spill write failures); the
# retrying client must absorb all of them.
./target/release/obfuscade submit --uds "$CHAOS_SOCK" --load 24 --concurrency 4 --retries 16
# Sweep distinct seeds to overflow the 1 MiB budget (~200 KiB of
# artifacts per seed): the early seeds — including the default-seed
# entries the load above warmed — are evicted to the spill tier.
for s in 1 2 3 4 5 6 7 8 9 10; do
    ./target/release/obfuscade submit --uds "$CHAOS_SOCK" --kind run --seed "$s" \
        --retries 16 >/dev/null
done

# Hard-kill the daemon, then fire a verified load at the DEAD socket and
# restart on the same socket + spill dir while the load's clients are
# retrying: every client rides through the outage, and the load must
# still complete clean and byte-identical.
kill -9 "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
./target/release/obfuscade submit --uds "$CHAOS_SOCK" --load 64 --concurrency 4 --retries 16 \
    --codec binary &
LOAD_PID=$!
sleep 0.2
./target/release/obfuscade serve --uds "$CHAOS_SOCK" --addr 127.0.0.1:0 --backend reactor \
    --workers 2 --cache-mb 1 --chaos-seed 7 --spill-dir "$CHAOS_SPILL" &
CHAOS_PID=$!
wait "$LOAD_PID" || { echo "ci: chaos load did not survive the kill+restart" >&2; exit 1; }

# The restarted daemon recovered the spill segments the killed one
# wrote: re-sweeping the seeds must land warm-start spill hits (entries
# rehydrated from disk instead of recomputed), and recovery must never
# have served a corrupt entry.
for s in 1 2 3 4 5 6 7 8 9 10; do
    ./target/release/obfuscade submit --uds "$CHAOS_SOCK" --kind run --seed "$s" \
        --retries 16 >/dev/null
done
CHAOS_STATS=$(./target/release/obfuscade submit --uds "$CHAOS_SOCK" --kind stats --retries 16)
SPILL_HITS=$(printf '%s' "$CHAOS_STATS" | sed -n 's/.*"spill_hits":\([0-9]*\).*/\1/p')
CORRUPT=$(printf '%s' "$CHAOS_STATS" | sed -n 's/.*"spill_corrupt_dropped":\([0-9]*\).*/\1/p')
[ -n "$SPILL_HITS" ] && [ "$SPILL_HITS" -ge 1 ] \
    || { echo "ci: restarted daemon saw no warm-start spill hits (got '$SPILL_HITS')" >&2; exit 1; }
[ -n "$CORRUPT" ] \
    || { echo "ci: stats snapshot lost the spill_corrupt_dropped counter" >&2; exit 1; }
echo "ci: chaos stage clean ($SPILL_HITS spill hits after restart, $CORRUPT corrupt entries dropped)"
# `shutdown` is never auto-retried (resending it is not idempotent), but
# a connection the chaos layer dropped AT ACCEPT never delivered the
# request — so retrying at the script level is safe: stop as soon as one
# attempt lands or the daemon is observed gone.
SHUT=fail
for _ in $(seq 1 10); do
    if ./target/release/obfuscade submit --uds "$CHAOS_SOCK" --kind shutdown; then
        SHUT=ok
        break
    fi
    kill -0 "$CHAOS_PID" 2>/dev/null || { SHUT=ok; break; }
    sleep 0.2
done
[ "$SHUT" = ok ] || { echo "ci: chaos daemon refused shutdown" >&2; exit 1; }
wait "$CHAOS_PID"

# --- fleet stage -------------------------------------------------------
FLEET_B1=target/fleet-b1.sock
FLEET_B2=target/fleet-b2.sock
FLEET_B3=target/fleet-b3.sock
rm -f "$FLEET_B1" "$FLEET_B2" "$FLEET_B3" target/fleet.addr
./target/release/obfuscade serve --uds "$FLEET_B1" --addr 127.0.0.1:0 --workers 2 --node fleet-a &
B1_PID=$!
./target/release/obfuscade serve --uds "$FLEET_B2" --addr 127.0.0.1:0 --workers 2 --node fleet-b &
B2_PID=$!
./target/release/obfuscade serve --uds "$FLEET_B3" --addr 127.0.0.1:0 --workers 2 --node fleet-c &
B3_PID=$!
# Barrier: a retried stats round-trip per backend, so the router never
# races a daemon that has not bound its socket yet (a connect-refused
# first dispatch would fail over and muddy the placement check below).
for S in "$FLEET_B1" "$FLEET_B2" "$FLEET_B3"; do
    ./target/release/obfuscade submit --uds "$S" --kind stats --retries 16 >/dev/null
done
./target/release/obfuscade route --to "unix:$FLEET_B1,unix:$FLEET_B2,unix:$FLEET_B3" \
    --addr 127.0.0.1:0 --workers 4 --port-file target/fleet.addr &
ROUTE_PID=$!

# Byte-verified shared-prefix load plus a seed sweep through the router:
# every request carries the same stage-key prefix, so rendezvous hashing
# homes all of them on exactly one backend — its warm cache serves the
# whole stream.
./target/release/obfuscade submit --port-file target/fleet.addr --load 24 --concurrency 4 \
    --retries 16
for s in 1 2 3 4 5 6; do
    ./target/release/obfuscade submit --port-file target/fleet.addr --kind run --seed "$s" \
        --retries 16 >/dev/null
done
FLEET_STATS=$(./target/release/obfuscade submit --port-file target/fleet.addr --kind stats \
    --retries 16)
WINNER=$(printf '%s' "$FLEET_STATS" \
    | grep -o '"endpoint":"[^"]*","routed":[1-9][0-9]*' | head -n 1 \
    | sed 's/"endpoint":"\([^"]*\)".*/\1/')
case "$WINNER" in
    "unix:$FLEET_B1") WINNER_PID=$B1_PID ;;
    "unix:$FLEET_B2") WINNER_PID=$B2_PID ;;
    "unix:$FLEET_B3") WINNER_PID=$B3_PID ;;
    *) echo "ci: could not identify the routed winner (got '$WINNER')" >&2; exit 1 ;;
esac

# Hard-kill the winner — the home of every prefix in flight — and drive
# the same byte-verified load again on the binary codec. The router must
# re-home the jobs on a surviving node (failover is a placement change,
# never a byte change) and record it.
kill -9 "$WINNER_PID" 2>/dev/null || true
wait "$WINNER_PID" 2>/dev/null || true
./target/release/obfuscade submit --port-file target/fleet.addr --load 64 --concurrency 4 \
    --codec binary --retries 16 \
    || { echo "ci: routed load did not survive losing its home backend" >&2; exit 1; }
FLEET_STATS=$(./target/release/obfuscade submit --port-file target/fleet.addr --kind stats \
    --retries 16)
FAILOVERS=$(printf '%s' "$FLEET_STATS" | sed -n 's/.*"failovers":\([0-9]*\).*/\1/p' | head -n 1)
[ -n "$FAILOVERS" ] && [ "$FAILOVERS" -ge 1 ] \
    || { echo "ci: router recorded no failover after losing a backend (got '$FAILOVERS')" >&2; exit 1; }
echo "ci: fleet stage clean (winner $WINNER killed, $FAILOVERS failovers, bytes identical)"

# The routed-fleet bench (smoke grid): nodes × {affinity, round-robin},
# schema-validated on write like every other report.
./target/release/obfuscade bench --smoke --serve --only fleet --threads 2 \
    --out target/bench_fleet_smoke.json

./target/release/obfuscade submit --port-file target/fleet.addr --kind shutdown
wait "$ROUTE_PID"
for S in "$FLEET_B1" "$FLEET_B2" "$FLEET_B3"; do
    [ "unix:$S" = "$WINNER" ] \
        || ./target/release/obfuscade submit --uds "$S" --kind shutdown >/dev/null
done
wait "$B1_PID" 2>/dev/null || true
wait "$B2_PID" 2>/dev/null || true
wait "$B3_PID" 2>/dev/null || true

./target/release/obfuscade bench --check BENCH_PR10.json --fea-budget-ms 578.9 --require-serve \
    --min-speedup printing=3.5,slicing=5.7 --serve-p99-ms 150 --serve-min-rps 4000 \
    --fleet-min-hit-rate 80 --fleet-min-rps 250 \
    --detect-min-catch 0.9 --detect-max-fpr 0.4
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --lib --bins -- -D warnings -W clippy::unwrap_used

echo "ci: all green"
