//! Cross-crate integration tests through the umbrella crate.

use obfuscade_suite::cad::parts::{tensile_bar_with_spline, TensileBarDims};
use obfuscade_suite::core::{run_pipeline, ProcessPlan, SplineSplitScheme};
use obfuscade_suite::mesh::Resolution;
use obfuscade_suite::slicer::{parse_gcode, to_gcode, Orientation, ToolMaterial};

#[test]
fn umbrella_reexports_cover_the_chain() {
    // Compile-time proof that the suite exposes every layer.
    let _ = obfuscade_suite::geom::Point3::ZERO;
    let _ = obfuscade_suite::printer::PrinterProfile::dimension_elite();
    let _ = obfuscade_suite::fea::TensileConfig::fdm_xy();
    let _ = obfuscade_suite::sidechannel::CaptureQuality::smartphone();
    let _ = obfuscade_suite::core::QualityThresholds::default();
}

#[test]
fn gcode_round_trips_through_the_pipeline_stages() {
    let part = tensile_bar_with_spline(&TensileBarDims::default()).unwrap().resolve().unwrap();
    let shells = obfuscade_suite::mesh::tessellate_shells(&part, &Resolution::Coarse.params());
    let oriented = obfuscade_suite::slicer::orient_shells(&shells, Orientation::Xy);
    let sliced = obfuscade_suite::slicer::slice_shells(&oriented, 0.1778);
    let toolpath = obfuscade_suite::slicer::generate_toolpath(
        &sliced,
        &obfuscade_suite::slicer::SlicerConfig::default(),
    );
    let text = to_gcode(&toolpath);
    let back = parse_gcode(&text).unwrap();
    assert_eq!(back.roads.len(), toolpath.roads.len());
    let rel = |a: f64, b: f64| (a - b).abs() / a.max(1.0);
    assert!(rel(toolpath.total_length(ToolMaterial::Model), back.total_length(ToolMaterial::Model)) < 0.001);
    // Body tags (the cold-joint information) survive serialization.
    let seam_roads = |tp: &obfuscade_suite::slicer::ToolPath| {
        tp.roads.iter().filter(|r| r.body.is_some()).count()
    };
    assert_eq!(seam_roads(&toolpath), seam_roads(&back));
}

#[test]
fn paper_matrix_holds_through_public_api() {
    // The §3.1 qualitative matrix: (orientation, resolution) → discontinuity.
    let scheme = SplineSplitScheme::default();
    let part = scheme.protected_part().unwrap();
    for resolution in Resolution::ALL {
        for orientation in Orientation::ALL {
            let output = run_pipeline(&part, &ProcessPlan::fdm(resolution, orientation)).unwrap();
            let expected = orientation == Orientation::Xz;
            assert_eq!(
                output.slice_report.has_discontinuity(),
                expected,
                "{resolution} {orientation}"
            );
        }
    }
}

#[test]
fn polyjet_replicates_the_fdm_findings() {
    // Paper §3.1: "Similar results are obtained in terms of presence or
    // absence of the spline feature … even for the resin printer."
    let scheme = SplineSplitScheme::default();
    let part = scheme.protected_part().unwrap();

    let xz = run_pipeline(&part, &ProcessPlan::polyjet(Resolution::Coarse, Orientation::Xz))
        .unwrap();
    assert!(xz.slice_report.has_discontinuity(), "PolyJet x-z shows the spline");

    let xy = run_pipeline(&part, &ProcessPlan::polyjet(Resolution::Fine, Orientation::Xy))
        .unwrap();
    assert!(!xy.slice_report.has_discontinuity(), "PolyJet x-y Fine hides it");
}
