//! Property-based tests over the public API: the protection invariants must
//! hold for *families* of designs, not just the paper's specimens.

use proptest::prelude::*;

use obfuscade_suite::cad::parts::{
    prism_with_sphere, standard_split_spline, tensile_bar, tensile_bar_with_spline, PrismDims,
    TensileBarDims,
};
use obfuscade_suite::cad::{BodyKind, MaterialRemoval};
use obfuscade_suite::geom::Point3;
use obfuscade_suite::mesh::{
    is_watertight, seam_report, tessellate_part, tessellate_shells, Resolution,
};

fn bar_dims() -> impl Strategy<Value = TensileBarDims> {
    (80.0..160.0f64, 14.0..24.0f64, 4.0..9.0f64, 25.0..45.0f64, 15.0..30.0f64, 2.0..6.0f64)
        .prop_map(|(overall, grip, gauge_w, gauge_l, taper, thickness)| TensileBarDims {
            overall_length: overall + gauge_l + 2.0 * taper, // always long enough
            grip_width: grip.max(gauge_w + 2.0),
            gauge_width: gauge_w,
            gauge_length: gauge_l,
            taper_length: taper,
            thickness,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn split_conserves_volume_for_any_bar(dims in bar_dims()) {
        let intact = tensile_bar(&dims).unwrap().resolve().unwrap();
        let split = tensile_bar_with_spline(&dims).unwrap().resolve().unwrap();
        let params = Resolution::Fine.params();
        let vi = tessellate_part(&intact, &params).signed_volume();
        let vs = tessellate_part(&split, &params).signed_volume();
        prop_assert!((vi - vs).abs() / vi < 0.02, "intact {vi} vs split {vs}");
    }

    #[test]
    fn split_bodies_are_always_watertight(dims in bar_dims()) {
        let split = tensile_bar_with_spline(&dims).unwrap().resolve().unwrap();
        for (i, shell) in tessellate_shells(&split, &Resolution::Coarse.params()).iter().enumerate() {
            prop_assert!(is_watertight(shell), "shell {i} of {dims:?}");
        }
    }

    #[test]
    fn seam_never_tessellates_conformingly(dims in bar_dims()) {
        let split = tensile_bar_with_spline(&dims).unwrap().resolve().unwrap();
        for res in Resolution::ALL {
            let seam = seam_report(&split, &res.params()).unwrap();
            prop_assert!(!seam.conforming, "{res} on {dims:?}");
        }
    }

    #[test]
    fn seam_gap_shrinks_with_resolution(dims in bar_dims()) {
        let split = tensile_bar_with_spline(&dims).unwrap().resolve().unwrap();
        let gaps: Vec<f64> = Resolution::ALL
            .iter()
            .map(|r| seam_report(&split, &r.params()).unwrap().chain_mismatch)
            .collect();
        prop_assert!(gaps[0] >= gaps[1] && gaps[1] >= gaps[2], "{gaps:?}");
    }

    #[test]
    fn spline_arc_tracks_gauge_width(dims in bar_dims()) {
        // The planted spline stays ~3.5× the gauge width, as in the paper.
        let spline = standard_split_spline(&dims).unwrap();
        let ratio = spline.arc_length() / dims.gauge_width;
        prop_assert!((2.0..5.0).contains(&ratio), "ratio {ratio} for {dims:?}");
    }

    #[test]
    fn sphere_winding_semantics_hold_for_any_size(
        radius in 1.0..5.0f64,
        res_idx in 0usize..2,
    ) {
        let dims = PrismDims {
            size: Point3::new(25.4, 12.7, 12.7),
            sphere_radius: radius,
        };
        let res = Resolution::ALL[res_idx];
        for (kind, removal, expect_solid) in [
            (BodyKind::Solid, MaterialRemoval::Without, false),
            (BodyKind::Surface, MaterialRemoval::Without, false),
            (BodyKind::Solid, MaterialRemoval::With, true),
            (BodyKind::Surface, MaterialRemoval::With, false),
        ] {
            let part = prism_with_sphere(&dims, kind, removal).unwrap().resolve().unwrap();
            let shells = tessellate_shells(&part, &res.params());
            let sliced = obfuscade_suite::slicer::slice_shells(&shells, 0.3556);
            let mid = &sliced.layers[sliced.layer_count() / 2];
            let center = obfuscade_suite::geom::Point2::new(12.7, 6.35);
            let solid = mid.winding(center) >= 1;
            prop_assert_eq!(solid, expect_solid, "{} {} r={} {}", kind, removal, radius, res);
        }
    }
}
