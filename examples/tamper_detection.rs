//! STL-stage attacks and the fingerprint defence (paper Table 1, STL row).
//!
//! An attacker in the supply chain modifies the STL in transit: scales it,
//! injects a hidden void, or nudges mating-surface vertices. The design
//! owner's registered fingerprint (size + hash + volume) catches all three.
//!
//! ```sh
//! cargo run --release --example tamper_detection
//! ```

use am_cad::parts::{intact_prism, PrismDims};
use am_geom::Point3;
use am_mesh::{
    endpoint_attack, fingerprint, scale_attack, tessellate_part, verify_fingerprint,
    void_attack, Resolution, TamperEvidence,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The owner exports the part and registers its fingerprint.
    let part = intact_prism(&PrismDims::default()).resolve()?;
    let mesh = tessellate_part(&part, &Resolution::Fine.params());
    let registered = fingerprint(&mesh);
    println!(
        "registered fingerprint: {:016x} ({} bytes, {} facets, {:.2} cm³)",
        registered.hash,
        registered.bytes,
        registered.triangles,
        registered.volume_centi_mm3 as f64 / 100_000.0
    );

    let attacks: Vec<(&str, am_mesh::TriMesh)> = vec![
        ("untampered copy", mesh.clone()),
        ("3% uniform shrink (dimension scaling)", scale_attack(&mesh, 0.97)),
        (
            "hidden 4 mm void (tetrahedron addition)",
            void_attack(&mesh, Point3::new(12.7, 6.35, 6.35), 2.0),
        ),
        ("3 vertices nudged 0.2 mm (end point changes)", endpoint_attack(&mesh, 0.2, 3, 7)),
    ];

    for (name, received) in attacks {
        let evidence = verify_fingerprint(&received, &registered);
        if evidence.is_empty() {
            println!("{name:<45} → OK");
        } else {
            let kinds: Vec<&str> = evidence
                .iter()
                .map(|e| match e {
                    TamperEvidence::SizeChanged { .. } => "size",
                    TamperEvidence::HashChanged => "hash",
                    TamperEvidence::VolumeChanged { .. } => "volume",
                    _ => "other",
                })
                .collect();
            println!("{name:<45} → TAMPERED ({})", kinds.join(" + "));
        }
    }
    Ok(())
}
