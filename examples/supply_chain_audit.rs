//! Walks the AM supply chain (Fig. 1), printing the applicable risks and
//! mitigations of the paper's Table 1 at each stage, plus a live demo of
//! the defender's STL-stage review tools.
//!
//! ```sh
//! cargo run --release --example supply_chain_audit
//! ```

use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
use am_mesh::{analyze_topology, t_junction_count, tessellate_part, Resolution};
use obfuscade::risk::{attack_taxonomy, risk_table, AmStage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== AM supply-chain audit (paper Table 1) ===\n");
    for stage in AmStage::ALL {
        println!("[{stage}]");
        for risk in risk_table().into_iter().filter(|r| r.stage == stage) {
            let tag = if risk.addressed_by_obfuscade { " (ObfusCADe)" } else { "" };
            println!("  risk: {}{tag}", risk.description);
            for m in risk.mitigations {
                println!("    → {m}");
            }
        }
        println!();
    }

    println!("=== attack taxonomy (paper Fig. 2) ===\n");
    for a in attack_taxonomy() {
        println!("  [{:<17}] {:<45} → {}", a.level.to_string(), a.name, a.goal);
    }

    // Live demo: the STL-stage reviewer runs geometry checks on an
    // incoming (protected) file.
    println!("\n=== STL-stage review of an incoming file ===\n");
    let part = tensile_bar_with_spline(&TensileBarDims::default())?.resolve()?;
    let mesh = tessellate_part(&part, &Resolution::Coarse.params());
    let topo = analyze_topology(&mesh);
    println!(
        "mesh: {} triangles, {} edges, watertight: {}",
        mesh.triangle_count(),
        topo.edges,
        topo.is_watertight()
    );
    let tj = t_junction_count(&mesh, am_geom::Tolerance::new(1e-6));
    println!("exact T-junctions: {tj}");
    println!(
        "note: the ObfusCADe split hides from these checks — each body is a clean \
         closed solid; only seam-aware analysis (am_mesh::seam_report) reveals it."
    );
    Ok(())
}
