//! Quickstart: protect a design with ObfusCADe and watch a counterfeiter's
//! print degrade.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use am_mesh::Resolution;
use am_slicer::Orientation;
use obfuscade::{
    assess_quality, run_pipeline, ProcessPlan, QualityThresholds, SplineSplitScheme,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The design owner plants a spline split in the tensile bar.
    let scheme = SplineSplitScheme::default();
    let protected = scheme.protected_part()?;
    println!("protected part: {} ({} security feature)", protected.name(), protected.security_feature_count());

    // 2. A counterfeiter steals the STL and prints it standing on edge.
    let plan = ProcessPlan::fdm(Resolution::Coarse, Orientation::Xz).with_tensile(true);
    let counterfeit = run_pipeline(&protected, &plan)?;
    println!(
        "counterfeit print: {} triangles, {} layers, {:.1} g",
        counterfeit.mesh_triangles,
        counterfeit.slice_report.layers,
        counterfeit.printed.weight_g()
    );
    println!(
        "  slicing shows discontinuity: {}",
        counterfeit.slice_report.has_discontinuity()
    );

    // 3. The owner manufactures from the true CAD (feature suppressed).
    let genuine = run_pipeline(&scheme.genuine_part()?, &plan)?;

    // 4. Quality control compares the two.
    let report = assess_quality(&counterfeit, &genuine, &QualityThresholds::default());
    println!("verdict: {}", report.verdict);
    for finding in &report.findings {
        println!("  - {finding}");
    }
    if let (Some(t), Some(g)) = (&counterfeit.tensile, &genuine.tensile) {
        println!(
            "tensile: counterfeit fails at {:.1}% strain with {:.0} kJ/m³ toughness (genuine: {:.1}%, {:.0} kJ/m³)",
            t.failure_strain * 100.0,
            t.toughness_kj_m3,
            g.failure_strain * 100.0,
            g.toughness_kj_m3
        );
    }
    Ok(())
}
