//! A counterfeiter's key-space search, and the defender's authentication.
//!
//! ```sh
//! cargo run --release --example counterfeit_hunt
//! ```

use obfuscade::{
    search_sphere_scheme, Authenticity, EmbeddedSphereScheme, ProcessPlan, QualityThresholds,
};

use am_mesh::Resolution;
use am_slicer::Orientation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheme = EmbeddedSphereScheme::default();

    // The adversary exhaustively prints the key space.
    println!("counterfeiter searching the process-key space:");
    let outcome = search_sphere_scheme(&scheme, &QualityThresholds::default(), 42)?;
    for attempt in &outcome.attempts {
        println!("  print {:<55} → {}", attempt.key.to_string(), attempt.verdict);
    }
    println!(
        "success rate: {:.0}% — {} physical prints before the first good part\n",
        outcome.success_rate() * 100.0,
        outcome.prints_to_success.map(|n| n.to_string()).unwrap_or_else(|| "∞".into())
    );

    // Meanwhile, the defender authenticates seized parts by CT scan.
    println!("defender authenticating seized parts:");
    for recipe in obfuscade::CadRecipe::ALL {
        let part = scheme.part_for_recipe(recipe)?;
        let output =
            obfuscade::run_pipeline(&part, &ProcessPlan::fdm(Resolution::Fine, Orientation::Xy))?;
        let verdict = scheme.authenticate(&output.scan);
        let marker = match verdict {
            Authenticity::Genuine => "✓ genuine",
            Authenticity::Counterfeit => "✗ counterfeit",
            Authenticity::Inconclusive => "? inconclusive",
        };
        println!("  part made via {:<40} → {marker}", recipe.to_string());
    }
    Ok(())
}
