//! The §3.2 embedded-sphere experiment: four CAD recipes, four very
//! different parts — from identical-looking files.
//!
//! ```sh
//! cargo run --release --example embedded_sphere
//! ```

use am_cad::cad_file_size;
use am_mesh::Resolution;
use am_printer::Material;
use am_slicer::Orientation;
use obfuscade::{run_pipeline, CadRecipe, EmbeddedSphereScheme, ProcessPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheme = EmbeddedSphereScheme::default();
    let center = scheme.dims().size * 0.5;
    println!("the four recipes of Table 3 (sphere centre material after support dissolution):\n");
    for recipe in CadRecipe::ALL {
        let part = scheme.part_for_recipe(recipe)?;
        let plan = ProcessPlan::fdm(Resolution::Fine, Orientation::Xy);
        let output = run_pipeline(&part, &plan)?;
        let material = output.printed.material_at_model(center);
        println!(
            "{:<40} CAD {:>7} B  STL {:>7} B  centre: {}",
            recipe.to_string(),
            cad_file_size(&part),
            output.stl_bytes,
            match material {
                Material::Model => "solid model material ← the keyed recipe",
                Material::Empty => "hollow (dissolved support)",
                Material::Support => "support material",
            }
        );
    }
    println!(
        "\nthe owner shares only the model; without knowing the removal+solid recipe,\n\
         every manufactured unit hides a {:.0} mm³ cavity a CT scan will expose.",
        4.0 / 3.0 * std::f64::consts::PI * scheme.dims().sphere_radius.powi(3)
    );
    Ok(())
}
