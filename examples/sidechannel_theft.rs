//! IP theft by acoustic side channel — and why ObfusCADe still wins.
//!
//! A smartphone near the printer records stepper-motor emissions and
//! reconstructs the tool path (paper §2, refs [4, 16]). The punchline: the
//! stolen tool path carries the planted seam with it.
//!
//! ```sh
//! cargo run --release --example sidechannel_theft
//! ```

use am_cad::parts::{tensile_bar_with_spline, TensileBarDims};
use am_mesh::{tessellate_shells, Resolution};
use am_sidechannel::{compare_toolpaths, record_emissions, reconstruct_toolpath, CaptureQuality};
use am_slicer::{generate_toolpath, orient_shells, slice_shells, Orientation, SlicerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The victim prints a protected part.
    let part = tensile_bar_with_spline(&TensileBarDims::default())?.resolve()?;
    let shells = tessellate_shells(&part, &Resolution::Coarse.params());
    let oriented = orient_shells(&shells, Orientation::Xy);
    let sliced = slice_shells(&oriented, 0.1778);
    let toolpath = generate_toolpath(&sliced, &SlicerConfig::default());
    println!("victim prints {} roads over {} layers", toolpath.roads.len(), toolpath.layer_count());

    // The attacker records and reconstructs.
    let trace = record_emissions(&toolpath, 30.0, CaptureQuality::smartphone(), 7);
    println!("attacker captured {} emission frames", trace.len());
    let rebuilt = reconstruct_toolpath(&trace);
    let report = compare_toolpaths(&toolpath, &rebuilt);
    println!(
        "reconstruction: {:.2} mm mean per-layer error, {:.4}% length error",
        report.per_layer_error_mm,
        report.length_error_ratio * 100.0
    );

    // The stolen design still carries the seam: ObfusCADe's roads stop at
    // the body boundary, and so do the reconstructed ones.
    let seam_breaks = toolpath
        .roads
        .windows(2)
        .filter(|w| {
            w[0].z == w[1].z
                && w[0].body.is_some()
                && w[1].body.is_some()
                && w[0].body != w[1].body
        })
        .count();
    println!(
        "the tool path contains {seam_breaks} seam-adjacent road pairs — the planted defect \
         survives side-channel theft"
    );
    Ok(())
}
